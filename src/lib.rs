//! # htvm — Hierarchical Threaded Virtual Machine (umbrella crate)
//!
//! A production-quality Rust reproduction of *"Hierarchical Multithreading:
//! Programming Model and System Software"* (Gao, Sterling, Stevens, Hereld,
//! Zhu — IPDPS 2006). This crate re-exports the whole suite:
//!
//! * [`sim`] — function-accurate simulator of a Cyclops-64-class machine
//!   (thread units, hardware thread slots, SPM/SRAM/DRAM hierarchy, mesh
//!   network, global address space).
//! * [`core`] — the HTVM execution model: LGT/SGT/TGT thread hierarchy,
//!   memory model, dataflow synchronization model, plus a native
//!   work-stealing runtime and a simulated runtime.
//! * [`litlx`] — the LITL-X programming constructs (futures, parcels,
//!   percolation, atomic blocks) and the LITL-X mini-language.
//! * [`ssp`] — single-dimension software pipelining and modulo scheduling.
//! * [`adapt`] — the four runtime adaptations (loop parallelism, load,
//!   locality, latency), the performance monitor, structured hints and the
//!   continuous-compilation driver.
//! * [`apps`] — the paper's two driver applications: neocortex neural
//!   simulation and fine-grain molecular dynamics.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use htvm_adapt as adapt;
pub use htvm_apps as apps;
pub use htvm_core as core;
pub use htvm_sim as sim;
pub use htvm_ssp as ssp;
pub use litlx;
