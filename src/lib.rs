//! # htvm — Hierarchical Threaded Virtual Machine (umbrella crate)
//!
//! A production-quality Rust reproduction of *"Hierarchical Multithreading:
//! Programming Model and System Software"* (Gao, Sterling, Stevens, Hereld,
//! Zhu — IPDPS 2006). This crate re-exports the whole suite:
//!
//! * [`sim`] — function-accurate simulator of a Cyclops-64-class machine
//!   (thread units, hardware thread slots, SPM/SRAM/DRAM hierarchy, mesh
//!   network, global address space).
//! * [`core`] — the HTVM execution model: LGT/SGT/TGT thread hierarchy,
//!   memory model, dataflow synchronization model, plus a native
//!   work-stealing runtime (with locality-domain topologies and
//!   proximity-ordered stealing) and a simulated runtime.
//! * [`litlx`] — the LITL-X programming constructs (futures, parcels,
//!   percolation, atomic blocks) and the LITL-X mini-language.
//! * [`ssp`] — single-dimension software pipelining and modulo scheduling.
//! * [`adapt`] — the four runtime adaptations (loop parallelism, load,
//!   locality, latency), the performance monitor, structured hints and the
//!   continuous-compilation driver.
//! * [`apps`] — the paper's two driver applications: neocortex neural
//!   simulation and fine-grain molecular dynamics.
//! * [`serve`] — the multi-tenant serving front-end: long-lived tenant
//!   subtrees with weights, bounded admission queues, weighted
//!   deficit-round-robin dispatch, overload shedding and
//!   cancellation/deadline tokens over the native pool.
//!
//! See `README.md` for the workspace layout, the tier-1 verify command,
//! and the experiment index; `ARCHITECTURE.md` maps the paper's sections
//! onto the crates.
//!
//! # Example
//!
//! Spawn a small LGT/SGT hierarchy on the native work-stealing runtime:
//!
//! ```
//! use htvm::core::{Htvm, HtvmConfig};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let htvm = Htvm::new(HtvmConfig::with_workers(2));
//! let sum = Arc::new(AtomicU64::new(0));
//! let handle = htvm.lgt({
//!     let sum = sum.clone();
//!     move |lgt| {
//!         for i in 1..=10u64 {
//!             let sum = sum.clone();
//!             lgt.spawn_sgt(move |_| {
//!                 sum.fetch_add(i, Ordering::Relaxed);
//!             });
//!         }
//!     }
//! });
//! handle.join();
//! assert_eq!(sum.load(Ordering::Relaxed), 55);
//! ```

pub use htvm_adapt as adapt;
pub use htvm_apps as apps;
pub use htvm_core as core;
pub use htvm_serve as serve;
pub use htvm_sim as sim;
pub use htvm_ssp as ssp;
pub use litlx;
