//! Offline shim for the `rand` 0.8 subset this workspace uses.
//!
//! The build environment has no crates.io access, so this vendors a
//! deterministic `StdRng` (xoshiro256++ seeded through splitmix64) and the
//! `Rng::{gen_range, gen_bool}` / `SeedableRng::seed_from_u64` surface the
//! sources call. Streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, but every use site seeds explicitly and only needs
//! reproducibility, not a specific stream.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ — small, fast, deterministic, good-enough equidistribution
/// for workload generation and randomized tests.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::StdRng;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                start + (end - start) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like upstream rand.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
