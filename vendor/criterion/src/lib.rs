//! Offline shim for the `criterion` subset this workspace uses.
//!
//! The build environment has no crates.io access, so bench targets link
//! against this minimal harness: same macro + builder surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::default()`,
//! benchmark groups, `Bencher::iter`), wall-clock mean/min per benchmark
//! printed to stdout. No statistics, plots, or baselines — those return
//! when the real crate is swappable in.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// `function_name/parameter` identifier, matching criterion's display form.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    deadline: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
        }
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if run_start.elapsed() > self.deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: c.sample_size,
        warm_up: c.warm_up_time,
        deadline: c.measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<50} mean {mean:>12?}   min {min:>12?}   ({} samples)",
        b.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("p", 4), &4, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
