//! Offline shim for the `parking_lot` subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors API-compatible stand-ins for its external dependencies (see
//! `vendor/` in the repo root). This crate wraps `std::sync` primitives
//! behind `parking_lot`'s poison-free signatures: `lock()` returns the
//! guard directly, and `Condvar::wait` takes `&mut MutexGuard`. Poisoned
//! locks are recovered transparently — panics are contained per job by the
//! runtime, so a poisoned mutex only means "a panic happened while held",
//! which parking_lot itself never tracks.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's wait consumes and returns it) while the caller keeps holding
    // the parking_lot-style `&mut MutexGuard`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
