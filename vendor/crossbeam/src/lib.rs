//! Offline shim for the `crossbeam::deque` subset this workspace uses.
//!
//! The build environment has no crates.io access, so this vendors the
//! `Worker`/`Stealer`/`Injector`/`Steal` surface of `crossbeam-deque`
//! backed by `std::sync::Mutex<VecDeque>`. Semantics match (LIFO owner
//! pops, FIFO steals from the opposite end); lock-free performance does
//! not — acceptable for a functional substrate, and swappable for the real
//! crate without source changes once the registry is reachable.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, matching crossbeam's three-way enum.
    pub enum Steal<T> {
        Success(T),
        Empty,
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Lifo,
        Fifo,
    }

    struct Buffer<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// The owner end of a worker deque.
    pub struct Worker<T> {
        buf: Arc<Buffer<T>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Self {
                buf: Arc::new(Buffer {
                    queue: Mutex::new(VecDeque::new()),
                }),
                flavor: Flavor::Lifo,
            }
        }

        pub fn new_fifo() -> Self {
            Self {
                buf: Arc::new(Buffer {
                    queue: Mutex::new(VecDeque::new()),
                }),
                flavor: Flavor::Fifo,
            }
        }

        /// Push onto the owner end (back).
        pub fn push(&self, value: T) {
            self.buf.queue.lock().unwrap().push_back(value);
        }

        /// Pop from the owner end: back for LIFO, front for FIFO.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.buf.queue.lock().unwrap();
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.buf.queue.lock().unwrap().is_empty()
        }

        pub fn len(&self) -> usize {
            self.buf.queue.lock().unwrap().len()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                buf: self.buf.clone(),
            }
        }
    }

    /// The thief end of a worker deque; steals FIFO (front).
    pub struct Stealer<T> {
        buf: Arc<Buffer<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                buf: self.buf.clone(),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.buf.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.buf.queue.lock().unwrap().is_empty()
        }
    }

    /// A global FIFO injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.queue.lock().unwrap().push_back(value);
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Pop one task and move up to half of the rest into `dest`,
        /// mirroring crossbeam's batched steal.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            let batch = q.len() / 2;
            if batch > 0 {
                let mut d = dest.buf.queue.lock().unwrap();
                for _ in 0..batch {
                    match q.pop_front() {
                        Some(v) => d.push_back(v),
                        None => break,
                    }
                }
            }
            Steal::Success(first)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lifo_owner_fifo_thief() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3), "owner pops newest");
            assert!(matches!(s.steal(), Steal::Success(1)), "thief steals oldest");
        }

        #[test]
        fn injector_batch_moves_half() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::<i32>::new_lifo();
            let got = inj.steal_batch_and_pop(&w);
            assert!(matches!(got, Steal::Success(0)));
            assert!(!w.is_empty(), "batch landed in the worker deque");
        }
    }
}
