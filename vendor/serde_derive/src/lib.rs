//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace never serializes anything (no serde_json or similar), so
//! the derives only need to make `#[derive(Serialize, Deserialize)]`
//! attributes compile. They accept `#[serde(...)]` helper attributes and
//! emit no code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
