//! Offline shim for the `proptest` subset this workspace uses.
//!
//! The build environment has no crates.io access, so this vendors a
//! deterministic property-test runner: strategies generate values from a
//! per-(test, case) seeded [`rand::StdRng`], the [`proptest!`] macro runs
//! `PROPTEST_CASES` (or the config's) cases, and failures report every
//! generated argument. No shrinking — failing cases print their full
//! inputs instead, which the deterministic seeding makes reproducible.

use rand::{RngCore, SeedableRng, StdRng};

pub mod test_runner {
    /// Runner configuration (the `cases` subset).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Effective case count: the `PROPTEST_CASES` env var overrides the
        /// configured value (used to keep CI under the tier-1 time budget).
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// A generator of values of one type. Unlike upstream proptest there is no
/// value tree / shrinking; `new_value` draws directly from the RNG.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rand::SampleRange::sample_single(self.clone(), rng)
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rand::SampleRange::sample_single(self.clone(), rng)
    }
}

/// A `&str` strategy is a regex in upstream proptest. This shim honours
/// only the shape the repo uses — `"\PC{lo,hi}"`-style "any printable
/// characters, length in range" patterns — by generating a string of
/// random printable chars whose length is drawn from the `{lo,hi}` suffix
/// (default 0..=32 when absent). That covers fuzz-style "never panics"
/// properties, which only need breadth, not the exact regex language.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_len_suffix(self).unwrap_or((0, 32));
        let span = (hi - lo + 1) as u64;
        let len = lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| printable_char(rng)).collect()
    }
}

fn parse_len_suffix(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let mut parts = body[brace + 1..].splitn(2, ',');
    let lo: usize = parts.next()?.trim().parse().ok()?;
    let hi: usize = match parts.next() {
        Some(s) if s.trim().is_empty() => lo + 32,
        Some(s) => s.trim().parse().ok()?,
        None => lo,
    };
    (lo <= hi).then_some((lo, hi))
}

fn printable_char(rng: &mut StdRng) -> char {
    // Mostly ASCII (token-shaped inputs exercise parsers best), with a
    // sprinkling of multi-byte codepoints for UTF-8 handling.
    match rng.next_u64() % 10 {
        0..=7 => (0x20 + (rng.next_u64() % 0x5f) as u32) as u8 as char,
        8 => char::from_u32(0xA1 + (rng.next_u64() % 0xFF) as u32).unwrap_or('¿'),
        _ => char::from_u32(0x0390 + (rng.next_u64() % 0x60) as u32).unwrap_or('λ'),
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{RngCore, Strategy};

    /// Inclusive-exclusive length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut super::StdRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{RngCore, Strategy};

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut super::StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    use super::{RngCore, Strategy};

    /// Uniformly pick one of the given items (`proptest::sample::select`).
    pub struct Select<T> {
        items: Vec<T>,
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select on empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut super::StdRng) -> T {
            self.items[(rng.next_u64() % self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod strategy {
    pub use super::{Map, Strategy};
}

pub mod prelude {
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{Map, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-(test, case) seed; no ambient entropy so failures
/// reproduce bit-for-bit across runs and machines.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(case_seed(test_name, case))
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let max_rejects = cases.saturating_mul(32).max(1024);
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while passed < cases {
                    let mut rng = $crate::rng_for(stringify!($name), case);
                    case += 1;
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let mut described = String::new();
                    $(
                        described.push_str(&format!(
                            "    {} = {:?}\n", stringify!($arg), &$arg
                        ));
                    )+
                    let outcome = (|| -> Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > max_rejects {
                                panic!(
                                    "proptest '{}': too many prop_assume rejections \
                                     ({rejected} rejects for {passed}/{cases} cases)",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case #{} (seed {}):\n{}\n  inputs:\n{}",
                                stringify!($name),
                                case - 1,
                                $crate::case_seed(stringify!($name), case - 1),
                                msg,
                                described
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u64..100, 0.0f64..1.0);
        let mut a = crate::rng_for("t", 3);
        let mut b = crate::rng_for("t", 3);
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let s = crate::collection::vec(0u64..10, 2..6);
        for case in 0..200 {
            let v = s.new_value(&mut crate::rng_for("len", case));
            assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn string_strategy_honours_len_suffix() {
        let s = "\\PC{0,200}";
        for case in 0..50 {
            let v = Strategy::new_value(&s, &mut crate::rng_for("s", case));
            assert!(v.chars().count() <= 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn runner_executes_and_assumes(x in 0u32..100, flip in crate::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x, x);
            }
        }
    }
}
