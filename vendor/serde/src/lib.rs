//! Offline shim for `serde`.
//!
//! The build environment has no crates.io access; the sources only *derive*
//! `Serialize`/`Deserialize` (no serializer crate is used anywhere), so the
//! traits are markers and the derives expand to nothing. Swapping in real
//! serde later requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias, mirroring serde's `de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
