//! Fine-grain molecular dynamics: a synthetic protein in water with ions,
//! force pass parallelized cell-per-SGT on HTVM.
//!
//! Run with: `cargo run --release --example molecular_dynamics`

use htvm::apps::md::integrate::{run_md, Thermostat};
use htvm::apps::md::parallel::{run_md_parallel, MdGrain};
use htvm::apps::md::system::{MdSystem, SystemSpec};
use htvm::apps::md::ForceParams;

fn main() {
    let spec = SystemSpec {
        box_len: 14.0,
        waters: 600,
        ion_pairs: 12,
        protein_beads: 40,
        ..Default::default()
    };
    let params = ForceParams::default();
    let steps = 50;
    let sys = MdSystem::build(&spec);
    println!(
        "system: {} particles ({} water, {} ion pairs, {} protein beads), box {}³",
        sys.len(),
        spec.waters,
        spec.ion_pairs,
        spec.protein_beads,
        spec.box_len
    );
    println!(
        "initial T = {:.3}, net momentum = {:.2e}, net charge = {}",
        sys.temperature(),
        sys.net_momentum(),
        sys.net_charge()
    );

    // Sequential NVE.
    let mut seq = sys.clone();
    let t0 = std::time::Instant::now();
    let (pot, drift) = run_md(&mut seq, &params, 0.001, steps, Thermostat::None);
    let seq_t = t0.elapsed();
    println!(
        "sequential: {steps} steps in {seq_t:?}, potential {pot:.2}, energy drift {drift:.2e}"
    );

    // Parallel (fine grain).
    let workers = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8);
    let r = run_md_parallel(
        sys,
        &params,
        0.001,
        steps,
        workers,
        MdGrain::PerCell,
        Thermostat::None,
    );
    println!(
        "parallel ({workers} workers, per-cell SGTs): {steps} steps in {:?} — speedup {:.2}x, {} SGTs",
        r.elapsed,
        seq_t.as_secs_f64() / r.elapsed.as_secs_f64(),
        r.sgt_count
    );
    assert_eq!(r.system, seq, "parallel trajectory must be bit-identical");
    println!("trajectories bit-identical: ok");
}
