//! Loop-parallelism adaptation: static vs dynamic scheduling with and
//! without structured hints (paper §3.3 + §4.1).
//!
//! Run with: `cargo run --release --example loop_scheduling`

use htvm::adapt::continuous::{ContinuousCompiler, PartialSchedule};
use htvm::adapt::hints::{HintCategory, HintTarget, StructuredHint};
use htvm::adapt::loop_sched::{evaluate_schedule, CostModel, IterationCosts, ScheduleKind};

fn main() {
    let workers = 16;
    let model = CostModel::default();

    println!("policy comparison on 2000 iterations, 16 workers\n");
    for dist in IterationCosts::ALL {
        let costs = dist.generate(2_000, 100, 42);
        println!("-- {} iteration costs --", dist.name());
        for kind in ScheduleKind::PORTFOLIO {
            let out = evaluate_schedule(kind, &costs, workers, &model);
            println!(
                "  {:<16} makespan {:>8}  imbalance {:.3}  chunks {:>5}",
                kind.name(),
                out.makespan,
                out.imbalance,
                out.chunks
            );
        }
    }

    // Continuous compilation: hints prune the search.
    println!("\ncontinuous compilation on decreasing costs:");
    let costs = IterationCosts::Decreasing.generate(2_000, 100, 42);
    let mut blind = ContinuousCompiler::new();
    let b = blind.complete(&PartialSchedule::full("loop"), &costs, workers, &model);
    println!(
        "  exhaustive: {} trials, search cost {}, winner {} ({} cycles)",
        b.trials,
        b.search_cost,
        b.policy.name(),
        b.makespan
    );
    let mut hinted = ContinuousCompiler::new();
    hinted.kb.add_hint(
        "loop",
        StructuredHint::new(
            HintCategory::ComputationPattern,
            HintTarget::AdaptiveCompiler,
            10,
            [("cost_trend".to_string(), "monotonic".to_string())],
        ),
    );
    let h = hinted.complete(&PartialSchedule::full("loop"), &costs, workers, &model);
    println!(
        "  hinted:     {} trials, search cost {}, winner {} ({} cycles)",
        h.trials,
        h.search_cost,
        h.policy.name(),
        h.makespan
    );
    println!(
        "  → hints cut search cost {:.1}x at {:.1}% quality loss",
        b.search_cost as f64 / h.search_cost.max(1) as f64,
        100.0 * (h.makespan as f64 / b.makespan as f64 - 1.0)
    );
}
