//! Figure 2, spelled out: all three thread grains on one page.
//!
//! The paper's case study maps a multi-level brain simulation onto the
//! HTVM hierarchy:
//!
//! * **LGT** — one large-grain thread per *region group* (its private
//!   memory holds the group's accumulators);
//! * **SGT** — one small-grain thread per *neuron* (its frame holds the
//!   neuron's transient state);
//! * **TGT** — one tiny-grain fiber per *compartment*, wired into a
//!   dataflow graph that follows the dendritic cable: each compartment's
//!   update depends on its parent compartment, and the soma depends on all
//!   dendrite branches — fibers communicate through the enclosing SGT's
//!   frame, exactly as §3.1.1 prescribes ("the TGTs within an SGT will
//!   share the frame storage of the enclosing SGT invocation").
//!
//! The numbers here are toy biophysics (a single relaxation step); the
//! point is the *shape* of the mapping. Run with:
//! `cargo run --release --example fig2_hierarchy`

use htvm::core::{Htvm, HtvmConfig};

/// Compartments per neuron: slot 0 is the soma, 1..N a dendrite chain.
const COMPARTMENTS: usize = 6;
/// Neurons per region.
const NEURONS: usize = 32;
/// Regions (one LGT each).
const REGIONS: usize = 4;

fn main() {
    let htvm = Htvm::new(HtvmConfig::with_workers(4));
    println!(
        "mapping: {REGIONS} regions (LGTs) × {NEURONS} neurons (SGTs) × \
         {COMPARTMENTS} compartments (TGT fibers)"
    );

    let mut handles = Vec::new();
    for region in 0..REGIONS {
        // ---- LGT level: one coarse thread per region group. -------------
        let h = htvm.lgt(move |lgt| {
            let region_mem = lgt.memory().clone();
            for neuron in 0..NEURONS {
                let region_mem = region_mem.clone();
                // ---- SGT level: one threaded call per neuron. -----------
                lgt.spawn_sgt(move |sgt| {
                    // ---- TGT level: a fiber per compartment, dataflow-
                    // ordered along the cable, sharing the SGT frame.
                    let mut g = sgt.tgt_graph(COMPARTMENTS + 1);
                    // Distal-to-proximal: compartment i relaxes toward its
                    // input plus what compartment i+1 left in the frame.
                    let mut prev = None;
                    for comp in (1..COMPARTMENTS).rev() {
                        let f = g.fiber(move |c| {
                            let distal = c.frame.get_f64(comp + 1);
                            let drive = (neuron * 31 + comp * 7) as f64 * 0.01;
                            c.frame.set_f64(comp, 0.5 * distal + drive);
                        });
                        if let Some(p) = prev {
                            g.depends(f, p);
                        }
                        prev = Some(f);
                    }
                    // The soma fires last: integrates compartment 1.
                    let soma = g.fiber(move |c| {
                        let dendrite = c.frame.get_f64(1);
                        c.frame.set_f64(0, dendrite.tanh());
                    });
                    if let Some(p) = prev {
                        g.depends(soma, p);
                    }
                    let frame = g.run();
                    // Neuron's soma potential accumulates into the region's
                    // LGT-private memory (fixed-point, atomically).
                    let soma_v = frame.get_f64(0);
                    region_mem.fetch_add(0, (soma_v * 1e6) as u64);
                    region_mem.fetch_add(1, 1); // neurons finished
                });
            }
        });
        handles.push((region, h));
    }

    // Join all LGTs; print per-region summaries from their private memory.
    let mut grand_total = 0.0;
    for (region, h) in handles {
        h.join();
        let mem = h.memory();
        let sum_v = mem.read(0) as f64 / 1e6;
        let done = mem.read(1);
        assert_eq!(done, NEURONS as u64, "every neuron SGT must retire");
        println!("region {region}: {done} neurons, Σ soma potential = {sum_v:.4}");
        grand_total += sum_v;
    }
    println!("total Σ soma potential = {grand_total:.4}");

    // Determinism: the dataflow graph fixes the order of every frame
    // access, so a second run agrees exactly.
    assert!(grand_total > 0.0);
    println!("fig2 hierarchy OK");
}
