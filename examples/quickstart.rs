//! Quickstart: the HTVM thread hierarchy in one page.
//!
//! Spawns an LGT (large-grain thread) whose private memory is shared by a
//! group of SGTs (small-grain threads); one SGT runs a TGT (tiny-grain
//! fiber) dataflow graph; a LITL-X future carries a value produced eagerly
//! by another SGT.
//!
//! Run with: `cargo run --example quickstart`

use htvm::core::{Htvm, HtvmConfig};
use htvm::litlx::future::future_on;

fn main() {
    let htvm = Htvm::new(HtvmConfig::default());
    println!("HTVM native runtime with {} workers", htvm.workers());

    let lgt = htvm.lgt(|lgt| {
        // 1. SGTs see the LGT's private memory (§3.1.1 of the paper).
        let mem = lgt.memory().clone();
        for i in 0..16u64 {
            let mem = mem.clone();
            lgt.spawn_sgt(move |_sgt| {
                mem.fetch_add(0, i); // shared word 0: a reduction cell
            });
        }

        // 2. A TGT graph: fibers sharing one frame, run in dataflow order.
        let mem2 = lgt.memory().clone();
        lgt.spawn_sgt(move |sgt| {
            let mut g = sgt.tgt_graph(3);
            let a = g.fiber(|c| c.frame.set(0, 20));
            let b = g.fiber(|c| c.frame.set(1, c.frame.get(0) + 1));
            let j = g.fiber(|c| c.frame.set(2, c.frame.get(0) + c.frame.get(1)));
            g.depends(b, a);
            g.depends(j, a);
            g.depends(j, b);
            let frame = g.run();
            mem2.write(1, frame.get(2));
        });

        // 3. A LITL-X future: eager producer, buffered consumers.
        let fut = future_on(lgt, |_| 6 * 7);
        let mem3 = lgt.memory().clone();
        fut.and_then(move |v| mem3.write(2, *v as u64));
    });
    lgt.join();

    let mem = lgt.memory();
    println!("SGT reduction  (0+1+...+15) = {}", mem.read(0));
    println!("TGT dataflow   (20+21)      = {}", mem.read(1));
    println!("LITL-X future  (6*7)        = {}", mem.read(2));
    assert_eq!(mem.read(0), 120);
    assert_eq!(mem.read(1), 41);
    assert_eq!(mem.read(2), 42);
    println!("ok");
}
