//! Parcels on the simulated HEC machine: move the work to the data.
//!
//! Reduces a block that lives in node 1's DRAM from node 0, three ways:
//! per-element remote loads, one bulk fetch, and a parcel that ships the
//! reduction to the data's home node (paper §3.2, "parcel-driven
//! split-transaction computation").
//!
//! Run with: `cargo run --release --example parcels`

use htvm::litlx::parcel::compare_strategies;
use htvm::sim::{Engine, MachineConfig};

fn main() {
    println!("remote reduce from node 0 of a block homed on node 1\n");
    println!(
        "{:>8}  {:>14}  {:>12}  {:>10}  winner",
        "elems", "remote_loads", "bulk_fetch", "parcel"
    );
    for elems in [4u64, 16, 64, 256, 1024, 4096] {
        let (loads, bulk, parcel) = compare_strategies(
            || {
                let mut cfg = MachineConfig::small();
                cfg.nodes = 2;
                Engine::new(cfg)
            },
            elems,
            2,
        );
        let winner = if parcel <= loads && parcel <= bulk {
            "parcel"
        } else if bulk <= loads {
            "bulk"
        } else {
            "loads"
        };
        println!("{elems:>8}  {loads:>14}  {bulk:>12}  {parcel:>10}  {winner}");
    }
    println!("\ncycles; the parcel ships ~100 bytes regardless of block size.");
}
