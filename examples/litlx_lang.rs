//! LITL-X, the paper's prototype language (§3.2), end to end: parse a
//! script with `forall`, `future`, `atomic` and `@hint` pragmas, extract
//! the structured hints, and execute on the HTVM runtime.
//!
//! Run with: `cargo run --example litlx_lang`

use htvm::litlx::lang::{parse, Interp};

const PROGRAM: &str = r#"
// A domain-expert "script" (paper §4.1): the pragma is a structured hint
// that the runtime uses to pick the loop schedule.
fn kinetic(v, m) {
    return 0.5 * m * v * v;
}

fn main() {
    let n = 512;
    let vel = array(n);
    let energy = array(1);

    forall i in 0..n {
        vel[i] = sin(i * 0.01) * 10;
    }

    @hint(schedule = "guided", chunk = 8)
    forall i in 0..n {
        energy[0] += kinetic(vel[i], 2);
    }

    future checksum = sum(vel);

    print(energy[0]);
    print(force(checksum));
}
"#;

fn main() {
    let prog = parse(PROGRAM).expect("LITL-X parses");
    println!("parsed {} function(s)", prog.fns.len());
    for (scope, hint) in prog.hints() {
        println!(
            "structured hint in `{scope}`: {:?} {:?}",
            hint.name, hint.kv
        );
    }
    let out = Interp::new(4).run(&prog).expect("LITL-X runs");
    println!("program output:");
    for line in &out.printed {
        println!("  {line}");
    }
    println!("({} SGTs spawned by the interpreter)", out.sgt_spawns);
}
