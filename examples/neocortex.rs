//! The Fig. 2 case study: a neocortex-style neuron network simulated on
//! the HTVM hierarchy, hierarchical vs flat mapping.
//!
//! Run with: `cargo run --release --example neocortex`

use htvm::apps::neuro::htvm_map::{run_parallel, Mapping};
use htvm::apps::neuro::network::{Network, NetworkSpec};
use htvm::apps::neuro::sim::NetworkSim;

fn main() {
    let spec = NetworkSpec {
        regions: 4,
        neurons_per_region: 96,
        compartments: 5,
        fanout: 20,
        ..Default::default()
    };
    let steps = 200;
    println!(
        "network: {} regions × {} neurons × {} compartments, {} synapses",
        spec.regions,
        spec.neurons_per_region,
        spec.compartments,
        spec.total_neurons() * spec.fanout
    );

    // Sequential reference.
    let mut sim = NetworkSim::new(Network::build(spec.clone()));
    let t0 = std::time::Instant::now();
    sim.run(steps);
    let seq = t0.elapsed();
    println!(
        "sequential: {steps} steps in {seq:?} — {} spikes (rate {:.4}/neuron/step)",
        sim.total_spikes,
        sim.mean_rate()
    );

    // Parallel, both mappings.
    let workers = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8);
    for mapping in [Mapping::Hierarchical, Mapping::Flat] {
        let r = run_parallel(Network::build(spec.clone()), steps, workers, mapping);
        assert_eq!(r.total_spikes, sim.total_spikes, "parallel must match");
        println!(
            "{mapping:?} ({workers} workers): {steps} steps in {:?} — speedup {:.2}x, {} SGTs, {} steals, imbalance {:.3}",
            r.elapsed,
            seq.as_secs_f64() / r.elapsed.as_secs_f64(),
            r.sgt_count,
            r.steals(),
            r.imbalance(),
        );
    }
    println!("spike counts identical across all runs: ok");
}
