//! The Fig. 1 feedback loop, end to end, from LITL-X source:
//!
//! 1. a LITL-X program with a skewed `forall` (triangular work) is
//!    *profiled* — the runtime monitor (§4.2) measures per-iteration costs;
//! 2. the measured cost vector is classified into the structured-hint
//!    vocabulary (§4.1) and recorded in the knowledge base;
//! 3. the continuous compiler (§3.3) completes the partial schedule: with
//!    the hint it trials only the consistent policies; without it, the
//!    whole portfolio;
//! 4. the chosen policy is compared against default static scheduling.
//!
//! Run with: `cargo run --release --example adaptive_litlx`

use htvm::adapt::continuous::{ContinuousCompiler, PartialSchedule};
use htvm::adapt::hints::{HintCategory, HintTarget, StructuredHint};
use htvm::adapt::loop_sched::{evaluate_schedule, CostModel, ScheduleKind};
use htvm::litlx::lang::{parse, suggest_hint, Interp};

const PROGRAM: &str = r#"
    fn main() {
        let n = 256;
        let a = array(n);
        forall i in 0..n {
            let s = 0;
            for k in 0..(n - i) {
                s = s + k;
            }
            a[i] = s;
        }
        print(sum(a));
    }
"#;

fn main() {
    // -- 1. Profile the program (sequential, metered run).
    let prog = parse(PROGRAM).expect("program parses");
    let interp = Interp::new(4);
    let (out, profiles) = interp.profile(&prog).expect("profiled run succeeds");
    println!("program output: {:?}", out.printed);
    let profile = &profiles[0];
    println!(
        "profiled forall `{}`: {} iterations, total {} ops, cv {:.3}",
        profile.var,
        profile.costs.len(),
        profile.total(),
        profile.cv()
    );

    // -- 2. Classify the measurement into a structured hint.
    let (key, value) = suggest_hint(&profile.costs).expect("loop is long enough to classify");
    println!("monitor-suggested hint: {key} = {value:?}");

    // -- 3. Continuous compilation with and without the hint.
    let workers = 16;
    let model = CostModel::default();
    let point = "main/forall0";

    let mut blind = ContinuousCompiler::new();
    let b = blind.complete(
        &PartialSchedule::full(point),
        &profile.costs,
        workers,
        &model,
    );

    let mut hinted = ContinuousCompiler::new();
    hinted.kb.add_hint(
        point,
        StructuredHint::new(
            HintCategory::ComputationPattern,
            HintTarget::AdaptiveCompiler,
            10,
            [(key.to_string(), value.to_string())],
        ),
    );
    let h = hinted.complete(
        &PartialSchedule::full(point),
        &profile.costs,
        workers,
        &model,
    );

    let stat = evaluate_schedule(ScheduleKind::StaticBlock, &profile.costs, workers, &model);

    println!();
    println!("continuous compilation ({workers} workers):");
    println!(
        "  exhaustive search: {} trials, cost {:>8}, picked {:<14} makespan {}",
        b.trials,
        b.search_cost,
        b.policy.name(),
        b.makespan
    );
    println!(
        "  hinted search:     {} trials, cost {:>8}, picked {:<14} makespan {}",
        h.trials,
        h.search_cost,
        h.policy.name(),
        h.makespan
    );
    println!(
        "  default static:    0 trials, cost {:>8}, picked {:<14} makespan {}",
        0, "static-block", stat.makespan
    );

    // -- 4. Re-running consults the knowledge base: zero further search.
    let again = hinted.complete(
        &PartialSchedule::full(point),
        &profile.costs,
        workers,
        &model,
    );
    println!(
        "  re-run (knowledge base hit): {} trials, picked {}",
        again.trials,
        again.policy.name()
    );

    assert!(h.trials < b.trials, "hints must prune the search");
    assert!(
        h.makespan <= stat.makespan,
        "adaptation must not lose to static"
    );
    assert_eq!(again.trials, 0, "feedback short-circuits re-runs");
    println!("\nadaptive pipeline OK");
}
