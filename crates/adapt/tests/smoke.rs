//! Public-API smoke test: run the whole loop-scheduling policy portfolio
//! on a skewed iteration-cost vector and pick the best policy, the way the
//! continuous-compilation driver does. Keeps `cargo test -p htvm-adapt`
//! meaningful from outside the crate.

use htvm_adapt::{evaluate_schedule, CostModel, ScheduleKind};

#[test]
fn policy_pick_beats_static_block_on_decreasing_costs() {
    // Strongly decreasing costs: the classic case where static blocking
    // front-loads one worker and dynamic policies win.
    let costs: Vec<u64> = (0..256u64).map(|i| 1 + (256 - i) * 4).collect();
    let workers = 8;
    let model = CostModel::default();

    let outcomes: Vec<(ScheduleKind, u64)> = ScheduleKind::PORTFOLIO
        .into_iter()
        .map(|kind| {
            (
                kind,
                evaluate_schedule(kind, &costs, workers, &model).makespan,
            )
        })
        .collect();
    let &(best_kind, best_makespan) = outcomes
        .iter()
        .min_by_key(|(_, makespan)| *makespan)
        .expect("portfolio is non-empty");

    let static_block = outcomes
        .iter()
        .find(|(k, _)| k.name() == "static-block")
        .expect("portfolio contains static-block")
        .1;
    assert!(
        best_makespan < static_block,
        "picked {} ({best_makespan}) must beat static-block ({static_block})",
        best_kind.name()
    );

    // Whatever wins, no policy may lose or duplicate iterations.
    let total: u64 = costs.iter().sum();
    for kind in ScheduleKind::PORTFOLIO {
        let out = evaluate_schedule(
            kind,
            &costs,
            workers,
            &CostModel {
                dispatch_overhead: 0,
                steal_overhead: 0,
            },
        );
        assert_eq!(
            out.busy.iter().sum::<u64>(),
            total,
            "{} lost or duplicated work",
            kind.name()
        );
    }
}
