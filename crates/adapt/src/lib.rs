//! # htvm-adapt — runtime adaptation for HTVM
//!
//! §2 of Gao et al. (IPDPS 2006) identifies "four classes of adaptivity
//! critical to the performance of the system"; §4 adds the structured-hint
//! knowledge base and execution monitoring that steer them. One module per
//! mechanism:
//!
//! | Paper mechanism | Module |
//! |---|---|
//! | Loop parallelism adaptation (static vs dynamic loop scheduling) | [`loop_sched`] |
//! | Dynamic load adaptation (thread migration) | [`load`] |
//! | Locality adaptation (data migration, replication, copy consistency) | [`locality`] |
//! | Latency adaptation (react to drifting memory latency) | [`latency`] |
//! | Runtime performance monitoring (§4.2) | [`monitor`] |
//! | Structured hints + Program/Execution Knowledge Database (§4.1) | [`hints`] |
//! | Continuous compilation (static partial schedules completed at run time, §3.3) | [`continuous`] |
//!
//! The modules are runtime-agnostic where possible: schedulers and policies
//! are plain data structures evaluated either analytically, on recorded
//! traces, or on the `htvm-sim` machine; the native runtime uses the same
//! types through `htvm-core`.

pub mod continuous;
pub mod hints;
pub mod latency;
pub mod load;
pub mod locality;
pub mod loop_sched;
pub mod monitor;

pub use continuous::{ContinuousCompiler, PartialSchedule, PolicyOutcome};
pub use hints::{HintCategory, HintTarget, KnowledgeBase, StructuredHint};
pub use latency::{AdaptiveConcurrency, EwmaLatency};
pub use load::{LoadPolicy, LoadSimConfig, LoadSimResult};
pub use locality::{ConsistencyKind, Directory, LocalityCosts, LocalityPolicy};
pub use loop_sched::{
    evaluate_schedule, CostModel, IterationCosts, ScheduleKind, ScheduleOutcome,
};
pub use monitor::{Metric, Monitor, MonitorConfig};
