//! # htvm-adapt — runtime adaptation for HTVM
//!
//! §2 of Gao et al. (IPDPS 2006) identifies "four classes of adaptivity
//! critical to the performance of the system"; §4 adds the structured-hint
//! knowledge base and execution monitoring that steer them. One module per
//! mechanism:
//!
//! | Paper mechanism | Module |
//! |---|---|
//! | Loop parallelism adaptation (static vs dynamic loop scheduling) | [`loop_sched`] |
//! | Dynamic load adaptation (thread migration) | [`load`] |
//! | Locality adaptation (data migration, replication, copy consistency) | [`locality`] |
//! | Latency adaptation (react to drifting memory latency) | [`latency`] |
//! | Runtime performance monitoring (§4.2) | [`monitor`] |
//! | Structured hints + Program/Execution Knowledge Database (§4.1) | [`hints`] |
//! | Continuous compilation (static partial schedules completed at run time, §3.3) | [`continuous`] |
//! | Naive vs SSP-pipelined loop-path selection (§3.3 ∘ §4.1) | [`pipeline`] |
//! | BubbleSched-style dynamic placement + elastic worker advice | [`bubble`] |
//!
//! The modules are runtime-agnostic where possible: schedulers and policies
//! are plain data structures evaluated either analytically, on recorded
//! traces, or on the `htvm-sim` machine; the native runtime uses the same
//! types through `htvm-core`.
//!
//! # Example
//!
//! The feedback loop in miniature: observed steal traffic becomes a
//! structured hint, the knowledge base stores it, and the next run reads
//! the placement decision back out:
//!
//! ```
//! use htvm_adapt::locality::{affinity_hints, AffinityThresholds, DomainTraffic};
//! use htvm_adapt::KnowledgeBase;
//!
//! // A run on a 2-domain pool: domain 0 did the work, and most steals
//! // crossed a domain boundary.
//! let traffic = DomainTraffic::new(vec![900, 40], vec![3, 1], vec![30, 10]);
//! let mut kb = KnowledgeBase::new();
//! for hint in affinity_hints(&traffic, &AffinityThresholds::default()) {
//!     kb.add_hint("main_loop", hint);
//! }
//! // Next run (same 2-domain topology): pin the subtree to the busiest
//! // domain (Htvm::lgt_in). A run under a different topology would get
//! // None — stale placement hints degrade, never misfire.
//! assert_eq!(kb.home_domain("main_loop", 2), Some(0));
//! assert_eq!(kb.home_domain("main_loop", 4), None);
//! ```

#![warn(missing_docs)]

pub mod bubble;
pub mod continuous;
pub mod hints;
pub mod latency;
pub mod load;
pub mod locality;
pub mod loop_sched;
pub mod monitor;
pub mod pipeline;

pub use bubble::{
    BubbleDecision, BubbleLoad, BubblePlacement, BubblePolicy, BubblePolicyCfg, BubbleSignals,
};
pub use continuous::{ContinuousCompiler, PartialSchedule, PolicyOutcome};
pub use hints::{HintCategory, HintTarget, KnowledgeBase, StructuredHint};
pub use latency::{AdaptiveConcurrency, EwmaLatency};
pub use load::{LoadPolicy, LoadSimConfig, LoadSimResult};
pub use locality::{
    affinity_hints, AffinityThresholds, ConsistencyKind, Directory, DomainTraffic, LocalityCosts,
    LocalityPolicy,
};
pub use loop_sched::{evaluate_schedule, CostModel, IterationCosts, ScheduleKind, ScheduleOutcome};
pub use monitor::{Metric, Monitor, MonitorConfig};
pub use pipeline::{
    decide_loop_path, record_loop_outcome, DecisionReason, LoopPath, LoopPathDecision, LoopShape,
};
