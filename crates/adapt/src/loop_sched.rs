//! Loop-parallelism adaptation: the scheduling algorithms of §3.3.
//!
//! "Loop scheduling on a parallel distributed system can be broadly divided
//! into two classes: static and dynamic scheduling. Static scheduling tends
//! to cause load imbalance … consequently, dynamic scheduling has been
//! developed and shown promising performance improvement."
//!
//! Implemented policies (the classic literature the paper leans on):
//!
//! * **StaticBlock** — `⌈n/p⌉` contiguous iterations per worker;
//! * **StaticCyclic** — iteration `i` to worker `i mod p`;
//! * **SelfSched(k)** — dynamic chunks of fixed size `k` (SS: k = 1);
//! * **Guided** — GSS (Polychronopoulos & Kuck): chunk = remaining/p;
//! * **Trapezoid** — TSS (Tzen & Ni): chunk decreases linearly first→last;
//! * **Factoring** — FSS (Hummel et al.): batches of p chunks, each batch
//!   half the remaining work;
//! * **Affinity** — per-worker local block, steal half-blocks when idle.
//!
//! [`evaluate_schedule`] replays a policy against a vector of per-iteration
//! costs with a per-chunk dispatch overhead and per-worker availability —
//! the deterministic machine model used by experiment E6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-iteration cost vectors used by E6 (cost distributions from the
/// classic loop-scheduling papers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterationCosts {
    /// All iterations equal.
    Uniform,
    /// Cost grows linearly with the index (triangular work).
    Increasing,
    /// Cost shrinks linearly (adversarial for plain static block).
    Decreasing,
    /// Uniform random in `[lo, hi]`.
    Random,
    /// 90% cheap, 10% expensive (tail-heavy).
    Bimodal,
}

impl IterationCosts {
    /// Materialize `n` costs with mean ≈ `mean` (deterministic from seed).
    pub fn generate(self, n: usize, mean: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = mean.max(1);
        match self {
            IterationCosts::Uniform => vec![mean; n],
            IterationCosts::Increasing => (0..n)
                .map(|i| 1 + (2 * mean - 1) * i as u64 / n.max(1) as u64)
                .collect(),
            IterationCosts::Decreasing => (0..n)
                .map(|i| 1 + (2 * mean - 1) * (n - 1 - i) as u64 / n.max(1) as u64)
                .collect(),
            IterationCosts::Random => (0..n).map(|_| rng.gen_range(1..=2 * mean)).collect(),
            IterationCosts::Bimodal => (0..n)
                .map(|_| {
                    if rng.gen_bool(0.1) {
                        mean * 5
                    } else {
                        mean / 2 + 1
                    }
                })
                .collect(),
        }
    }

    /// All distributions.
    pub const ALL: [IterationCosts; 5] = [
        IterationCosts::Uniform,
        IterationCosts::Increasing,
        IterationCosts::Decreasing,
        IterationCosts::Random,
        IterationCosts::Bimodal,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IterationCosts::Uniform => "uniform",
            IterationCosts::Increasing => "increasing",
            IterationCosts::Decreasing => "decreasing",
            IterationCosts::Random => "random",
            IterationCosts::Bimodal => "bimodal",
        }
    }
}

/// A loop-scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Contiguous `⌈n/p⌉` blocks.
    StaticBlock,
    /// Round-robin single iterations.
    StaticCyclic,
    /// Dynamic fixed-size chunks.
    SelfSched(u64),
    /// Guided self-scheduling.
    Guided,
    /// Trapezoid self-scheduling.
    Trapezoid,
    /// Factoring.
    Factoring,
    /// Affinity scheduling (local blocks + half-block stealing).
    Affinity,
}

impl ScheduleKind {
    /// A reasonable policy portfolio for the experiments.
    pub const PORTFOLIO: [ScheduleKind; 7] = [
        ScheduleKind::StaticBlock,
        ScheduleKind::StaticCyclic,
        ScheduleKind::SelfSched(1),
        ScheduleKind::SelfSched(8),
        ScheduleKind::Guided,
        ScheduleKind::Trapezoid,
        ScheduleKind::Factoring,
    ];

    /// Display name.
    pub fn name(self) -> String {
        match self {
            ScheduleKind::StaticBlock => "static-block".to_string(),
            ScheduleKind::StaticCyclic => "static-cyclic".to_string(),
            ScheduleKind::SelfSched(k) => format!("self-sched({k})"),
            ScheduleKind::Guided => "guided".to_string(),
            ScheduleKind::Trapezoid => "trapezoid".to_string(),
            ScheduleKind::Factoring => "factoring".to_string(),
            ScheduleKind::Affinity => "affinity".to_string(),
        }
    }
}

/// Machine parameters of the replay model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cycles to dispatch one chunk (queue access / synchronization). The
    /// reason chunk size trades imbalance against overhead.
    pub dispatch_overhead: u64,
    /// Extra cycles for *stealing* a chunk (affinity only).
    pub steal_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            dispatch_overhead: 50,
            steal_overhead: 200,
        }
    }
}

/// Result of replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Wall-clock cycles until the last worker finishes.
    pub makespan: u64,
    /// Per-worker busy time.
    pub busy: Vec<u64>,
    /// Number of dispatched chunks (overhead events).
    pub chunks: u64,
    /// Coefficient of variation of per-worker busy time.
    pub imbalance: f64,
}

impl ScheduleOutcome {
    fn from_busy(busy: Vec<u64>, makespan: u64, chunks: u64) -> Self {
        let n = busy.len() as f64;
        let mean = busy.iter().sum::<u64>() as f64 / n;
        let var = busy.iter().map(|&b| (b as f64 - mean).powi(2)).sum::<f64>() / n;
        let imbalance = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        Self {
            makespan,
            busy,
            chunks,
            imbalance,
        }
    }
}

/// Deterministically replay `kind` over `costs` on `workers` workers.
///
/// The model is a list-scheduling simulation: the next chunk goes to the
/// earliest-available worker; each dispatch costs `dispatch_overhead`
/// (charged to the receiving worker); static policies precompute their
/// assignment and pay a single dispatch per worker.
pub fn evaluate_schedule(
    kind: ScheduleKind,
    costs: &[u64],
    workers: usize,
    model: &CostModel,
) -> ScheduleOutcome {
    let p = workers.max(1);
    let n = costs.len();
    match kind {
        ScheduleKind::StaticBlock => {
            let block = n.div_ceil(p).max(1);
            let mut busy = vec![0u64; p];
            for (w, slot) in busy.iter_mut().enumerate() {
                let lo = (w * block).min(n);
                let hi = ((w + 1) * block).min(n);
                if lo < hi {
                    *slot = model.dispatch_overhead + costs[lo..hi].iter().sum::<u64>();
                }
            }
            let makespan = *busy.iter().max().unwrap();
            ScheduleOutcome::from_busy(busy, makespan, p as u64)
        }
        ScheduleKind::StaticCyclic => {
            let mut busy = vec![0u64; p];
            for (i, &c) in costs.iter().enumerate() {
                busy[i % p] += c;
            }
            for b in busy.iter_mut() {
                if *b > 0 {
                    *b += model.dispatch_overhead;
                }
            }
            let makespan = *busy.iter().max().unwrap();
            ScheduleOutcome::from_busy(busy, makespan, p as u64)
        }
        ScheduleKind::Affinity => evaluate_affinity(costs, p, model),
        dynamic => {
            // Central-queue dynamic scheduling: chunk sizes by policy.
            let mut avail = vec![0u64; p]; // next free time per worker
            let mut busy = vec![0u64; p];
            let mut next = 0usize;
            let mut chunks = 0u64;
            // Trapezoid parameters (Tzen & Ni defaults): first = n/(2p),
            // last = 1, decrement δ = (first-last)/(steps-1).
            let first = (n as u64).div_ceil(2 * p as u64).max(1);
            let steps = (2 * n as u64).div_ceil(first + 1).max(1);
            let delta = if steps > 1 {
                (first - 1) as f64 / (steps - 1) as f64
            } else {
                0.0
            };
            let mut trapezoid_chunk = first as f64;
            // Factoring state: iterations left in the current batch.
            let mut batch_left = 0usize;
            let mut batch_chunk = 0usize;
            while next < n {
                let remaining = n - next;
                let size = match dynamic {
                    ScheduleKind::SelfSched(k) => (k.max(1) as usize).min(remaining),
                    ScheduleKind::Guided => remaining.div_ceil(p).max(1),
                    ScheduleKind::Trapezoid => {
                        let c = trapezoid_chunk.max(1.0) as usize;
                        trapezoid_chunk = (trapezoid_chunk - delta).max(1.0);
                        c.min(remaining)
                    }
                    ScheduleKind::Factoring => {
                        if batch_left == 0 {
                            batch_chunk = (remaining.div_ceil(2 * p)).max(1);
                            batch_left = p;
                        }
                        batch_left -= 1;
                        batch_chunk.min(remaining)
                    }
                    _ => unreachable!("static handled above"),
                };
                // Earliest-available worker takes the chunk.
                let w = (0..p).min_by_key(|&w| avail[w]).unwrap();
                let work: u64 = costs[next..next + size].iter().sum();
                let t = model.dispatch_overhead + work;
                avail[w] += t;
                busy[w] += t;
                next += size;
                chunks += 1;
            }
            let makespan = *avail.iter().max().unwrap();
            ScheduleOutcome::from_busy(busy, makespan, chunks)
        }
    }
}

/// Affinity scheduling: each worker owns block `w`, processes it in
/// sub-chunks of 1/p of the block, and steals half the richest victim's
/// remaining block when its own is exhausted.
fn evaluate_affinity(costs: &[u64], p: usize, model: &CostModel) -> ScheduleOutcome {
    let n = costs.len();
    let block = n.div_ceil(p).max(1);
    // Remaining range per worker.
    let mut range: Vec<(usize, usize)> = (0..p)
        .map(|w| ((w * block).min(n), ((w + 1) * block).min(n)))
        .collect();
    let mut avail = vec![0u64; p];
    let mut busy = vec![0u64; p];
    let mut chunks = 0u64;
    loop {
        // Pick the earliest-available worker; give it work.
        let w = (0..p).min_by_key(|&w| avail[w]).unwrap();
        let (lo, hi) = range[w];
        if lo < hi {
            // Process 1/p of own remaining block.
            let step = ((hi - lo).div_ceil(p)).max(1);
            let take = step.min(hi - lo);
            let work: u64 = costs[lo..lo + take].iter().sum();
            let t = model.dispatch_overhead + work;
            avail[w] += t;
            busy[w] += t;
            range[w].0 += take;
            chunks += 1;
            continue;
        }
        // Steal half of the richest victim's remaining block. The thief
        // executes the first sub-chunk of its loot *as part of the steal*
        // (Markatos–LeBlanc affinity scheduling): without that guaranteed
        // progress, a final single iteration can bounce between idle
        // workers forever — each steal raises the thief's availability, so
        // another idle worker would always re-steal before anyone runs it.
        let victim = (0..p)
            .filter(|&v| range[v].1 > range[v].0)
            .max_by_key(|&v| range[v].1 - range[v].0);
        match victim {
            Some(v) => {
                let (vlo, vhi) = range[v];
                let half = (vhi - vlo).div_ceil(2);
                let steal_lo = vhi - half;
                range[v].1 = steal_lo;
                range[w] = (steal_lo, vhi);
                avail[w] += model.steal_overhead;
                busy[w] += model.steal_overhead;
                chunks += 1;
                let (lo, hi) = range[w];
                let take = ((hi - lo).div_ceil(p)).max(1).min(hi - lo);
                let work: u64 = costs[lo..lo + take].iter().sum();
                let t = model.dispatch_overhead + work;
                avail[w] += t;
                busy[w] += t;
                range[w].0 += take;
                chunks += 1;
            }
            None => break,
        }
    }
    let makespan = *avail.iter().max().unwrap();
    ScheduleOutcome::from_busy(busy, makespan, chunks)
}

/// Total work (for bound checks in tests).
pub fn total_work(costs: &[u64]) -> u64 {
    costs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 8;

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn all_policies_complete_all_iterations() {
        // Busy time must account for every iteration's cost exactly once.
        for dist in IterationCosts::ALL {
            let costs = dist.generate(500, 100, 7);
            let work = total_work(&costs);
            for kind in ScheduleKind::PORTFOLIO {
                let out = evaluate_schedule(kind, &costs, P, &model());
                let busy_work: u64 = out.busy.iter().sum::<u64>()
                    - out.chunks * model().dispatch_overhead.min(out.busy.iter().sum());
                // Overhead accounting differs per policy; check bounds.
                assert!(
                    busy_work <= out.busy.iter().sum::<u64>(),
                    "sanity for {kind:?}/{dist:?}"
                );
                assert!(
                    out.makespan >= work / P as u64,
                    "makespan below theoretical bound for {kind:?}"
                );
                assert!(
                    out.makespan <= work + out.chunks * 1000,
                    "makespan absurd for {kind:?}"
                );
            }
        }
    }

    #[test]
    fn static_block_is_perfect_on_uniform() {
        let costs = IterationCosts::Uniform.generate(800, 100, 1);
        let out = evaluate_schedule(ScheduleKind::StaticBlock, &costs, P, &model());
        assert!(out.imbalance < 0.01, "uniform static: {}", out.imbalance);
    }

    #[test]
    fn guided_beats_static_on_increasing() {
        // GSS's shrinking chunks spread the expensive tail of an increasing
        // cost vector; static block hands the whole tail to the last worker.
        let costs = IterationCosts::Increasing.generate(800, 100, 1);
        let stat = evaluate_schedule(ScheduleKind::StaticBlock, &costs, P, &model());
        let guided = evaluate_schedule(ScheduleKind::Guided, &costs, P, &model());
        assert!(
            guided.makespan < stat.makespan,
            "guided {} must beat static {} on increasing costs",
            guided.makespan,
            stat.makespan
        );
        assert!(guided.imbalance < stat.imbalance);
    }

    #[test]
    fn trapezoid_beats_static_on_decreasing() {
        // On decreasing costs GSS's first chunk (n/p) equals static block's
        // first block, so guided only ties; TSS starts at n/(2p) and wins —
        // the classical motivation for trapezoid/factoring.
        let costs = IterationCosts::Decreasing.generate(800, 100, 1);
        let stat = evaluate_schedule(ScheduleKind::StaticBlock, &costs, P, &model());
        let guided = evaluate_schedule(ScheduleKind::Guided, &costs, P, &model());
        let tss = evaluate_schedule(ScheduleKind::Trapezoid, &costs, P, &model());
        assert!(
            guided.makespan <= stat.makespan,
            "guided may tie, never lose"
        );
        assert!(
            tss.makespan < stat.makespan,
            "trapezoid {} must beat static {} on decreasing costs",
            tss.makespan,
            stat.makespan
        );
    }

    #[test]
    fn self_sched_one_balances_but_pays_overhead() {
        let costs = IterationCosts::Random.generate(800, 100, 3);
        let ss1 = evaluate_schedule(ScheduleKind::SelfSched(1), &costs, P, &model());
        let ss64 = evaluate_schedule(ScheduleKind::SelfSched(64), &costs, P, &model());
        // SS(1) dispatches one chunk per iteration.
        assert_eq!(ss1.chunks, 800);
        assert!(ss1.imbalance < 0.05);
        // Bigger chunks mean far fewer dispatches.
        assert!(ss64.chunks <= 13);
    }

    #[test]
    fn guided_uses_fewer_chunks_than_ss1() {
        let costs = IterationCosts::Random.generate(1000, 100, 9);
        let g = evaluate_schedule(ScheduleKind::Guided, &costs, P, &model());
        let s = evaluate_schedule(ScheduleKind::SelfSched(1), &costs, P, &model());
        assert!(g.chunks * 5 < s.chunks);
    }

    #[test]
    fn factoring_handles_bimodal_tail() {
        let costs = IterationCosts::Bimodal.generate(1000, 100, 11);
        let f = evaluate_schedule(ScheduleKind::Factoring, &costs, P, &model());
        let stat = evaluate_schedule(ScheduleKind::StaticBlock, &costs, P, &model());
        assert!(f.makespan <= stat.makespan);
    }

    #[test]
    fn trapezoid_chunks_decrease() {
        let costs = IterationCosts::Uniform.generate(1000, 50, 2);
        let t = evaluate_schedule(ScheduleKind::Trapezoid, &costs, P, &model());
        assert!(t.chunks > P as u64, "trapezoid must adapt chunk sizes");
        assert!(t.imbalance < 0.2);
    }

    #[test]
    fn affinity_steals_only_under_imbalance() {
        let uniform = IterationCosts::Uniform.generate(800, 100, 1);
        let a = evaluate_schedule(ScheduleKind::Affinity, &uniform, P, &model());
        // With uniform costs the blocks match and stealing is minimal;
        // makespan close to ideal.
        let ideal = total_work(&uniform) / P as u64;
        assert!(a.makespan < ideal * 2);
        let dec = IterationCosts::Decreasing.generate(800, 100, 1);
        let a2 = evaluate_schedule(ScheduleKind::Affinity, &dec, P, &model());
        let stat = evaluate_schedule(ScheduleKind::StaticBlock, &dec, P, &model());
        assert!(
            a2.makespan < stat.makespan,
            "affinity {} must beat static {} under skew",
            a2.makespan,
            stat.makespan
        );
    }

    #[test]
    fn distributions_have_requested_mean() {
        for dist in IterationCosts::ALL {
            let costs = dist.generate(10_000, 100, 5);
            let mean = total_work(&costs) as f64 / costs.len() as f64;
            assert!((mean - 100.0).abs() < 30.0, "{}: mean {mean}", dist.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = IterationCosts::Random.generate(100, 50, 42);
        let b = IterationCosts::Random.generate(100, 50, 42);
        assert_eq!(a, b);
        let c = IterationCosts::Random.generate(100, 50, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let costs = IterationCosts::Random.generate(200, 100, 4);
        let out = evaluate_schedule(ScheduleKind::Guided, &costs, 1, &model());
        assert!(out.makespan >= total_work(&costs));
        assert!(out.imbalance < 1e-9);
    }

    #[test]
    fn empty_loop_is_fine() {
        let out = evaluate_schedule(ScheduleKind::Guided, &[], P, &model());
        assert_eq!(out.makespan, 0);
        assert_eq!(out.chunks, 0);
    }
}
