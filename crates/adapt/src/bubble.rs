//! BubbleSched-style dynamic placement: pinned subtrees as **bubbles**,
//! plus elastic worker-count advice — the policy loop that finally
//! *consumes* the steal/imbalance signals the pool has been collecting.
//!
//! Thibault et al.'s BubbleSched line models an application's thread
//! groups as *bubbles* laid onto a hierarchical machine: the scheduler
//! may **migrate** a bubble to another level node, **burst** it (dissolve
//! the grouping and let members spread), or **gang** a burst bubble back
//! together when locality would pay again. Here a bubble stands for a
//! pinned LGT subtree (or a serving tenant's home): its placement is one
//! of
//!
//! * [`BubblePlacement::Pinned`]`(d)` — members spawn with domain-`d`
//!   affinity (the `Htvm::lgt_in` / tenant-home path);
//! * [`BubblePlacement::Burst`] — members spawn unpinned and the work
//!   spreads by ordinary stealing.
//!
//! [`BubblePolicy`] is a *plain-data* controller in the htvm-adapt
//! tradition: it never touches a pool. Each control period the driver
//! (e.g. `htvm_serve`'s autopilot, or the e20 experiment) snapshots the
//! pool — per-domain traffic deltas ([`DomainTraffic`]), queue depths,
//! active/vacant worker counts — into a [`BubbleSignals`], calls
//! [`BubblePolicy::step`], and applies the returned
//! [`BubbleDecision`]s: re-homing bubbles and growing/retiring workers.
//! The policy owns the placement state and hysteresis (cooldowns, idle
//! streaks), so drivers stay stateless.
//!
//! The decision rules, in priority order per step:
//!
//! 1. **Grow** when queued work per active worker exceeds
//!    [`BubblePolicyCfg::grow_queue_per_worker`] and a vacant slot
//!    exists — aimed at the deepest-queued domain with vacancy.
//! 2. **Retire** after [`BubblePolicyCfg::retire_idle_steps`] consecutive
//!    fully-idle observations (no queue anywhere, every worker parked),
//!    aimed at the domain with the most active workers — the serving
//!    layer shrinks when idle.
//! 3. **Burst** a pinned bubble whose home domain is the congestion
//!    source: remote steal ratio above
//!    [`BubblePolicyCfg::burst_remote_ratio`] means other domains are
//!    feeding on the home's backlog anyway, so stop paying for the pin.
//! 4. **Gang** a burst bubble back onto the least-loaded domain once the
//!    remote ratio falls below [`BubblePolicyCfg::gang_remote_ratio`].
//! 5. **Migrate** the heaviest bubble off the busiest domain when the
//!    per-domain load imbalance exceeds
//!    [`BubblePolicyCfg::imbalance_threshold`] — the BubbleSched move
//!    proper, re-pinning onto the lightest domain.
//!
//! Every placement change starts a per-bubble cooldown
//! ([`BubblePolicyCfg::cooldown_steps`]) so the loop converges instead of
//! flapping between two homes.

use crate::locality::DomainTraffic;

/// Where a bubble's members are spawned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubblePlacement {
    /// Members carry affinity for one locality domain.
    Pinned(usize),
    /// The bubble is dissolved: members spawn unpinned and spread.
    Burst,
}

/// One control-period snapshot of the pool, as plain data. All
/// per-domain vectors are indexed by domain and must agree with
/// `traffic.num_domains()`.
#[derive(Debug, Clone)]
pub struct BubbleSignals {
    /// Steal/execution traffic since the previous step (a delta, not a
    /// cumulative total — feed `PoolStats::since` through
    /// `DomainTraffic::new`).
    pub traffic: DomainTraffic,
    /// Approximate queued (not yet running) jobs homed per domain:
    /// domain injector depth plus member deque depths.
    pub queued_by_domain: Vec<u64>,
    /// Approximate queued jobs with no domain affinity.
    pub queued_global: u64,
    /// Active (threaded) workers per domain.
    pub active_by_domain: Vec<usize>,
    /// Vacant growable slots per domain.
    pub vacant_by_domain: Vec<usize>,
    /// Workers currently parked in the sleeper registry.
    pub parked_workers: usize,
}

impl BubbleSignals {
    /// Total queued jobs across every queue.
    pub fn total_queued(&self) -> u64 {
        self.queued_global + self.queued_by_domain.iter().sum::<u64>()
    }

    /// Total active workers.
    pub fn total_active(&self) -> usize {
        self.active_by_domain.iter().sum()
    }

    /// Per-domain executed counts normalized by active workers — the
    /// policy's load measure (a domain with twice the workers is allowed
    /// twice the jobs before it reads as "busier").
    fn load_per_worker(&self) -> Vec<f64> {
        self.traffic
            .executed
            .iter()
            .zip(&self.active_by_domain)
            .map(|(&e, &a)| e as f64 / a.max(1) as f64)
            .collect()
    }

    /// Coefficient of variation of per-worker domain loads (0 = balanced;
    /// the plain-data mirror of `PoolStats::imbalance_by_domain`).
    pub fn domain_imbalance(&self) -> f64 {
        let loads = self.load_per_worker();
        let n = loads.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = loads.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
        var.sqrt() / mean
    }
}

/// Per-bubble share of one control period, as plain data.
#[derive(Debug, Clone, Copy)]
pub struct BubbleLoad {
    /// The bubble id ([`BubblePolicy::register_bubble`]).
    pub bubble: usize,
    /// Jobs this bubble executed since the previous step (e.g. a
    /// `TagStats::executed` delta).
    pub executed: u64,
}

/// One placement or elasticity action for the driver to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubbleDecision {
    /// Re-pin a bubble to another domain (BubbleSched migrate).
    Migrate {
        /// The bubble to move.
        bubble: usize,
        /// Its new home domain.
        to: usize,
    },
    /// Dissolve a bubble: spawn its members unpinned (BubbleSched burst).
    Burst {
        /// The bubble to dissolve.
        bubble: usize,
    },
    /// Re-form a burst bubble on a domain (BubbleSched gang).
    Gang {
        /// The bubble to re-form.
        bubble: usize,
        /// The domain it gangs onto.
        domain: usize,
    },
    /// Activate a vacant worker slot in a domain (`Pool::grow_in`).
    Grow {
        /// The domain to grow in.
        domain: usize,
    },
    /// Retire one worker from a domain (`Pool::retire_in`).
    Retire {
        /// The domain to shrink.
        domain: usize,
    },
}

/// Thresholds and hysteresis of the policy loop (see the module header
/// for the rule each knob gates).
#[derive(Debug, Clone)]
pub struct BubblePolicyCfg {
    /// Per-domain load imbalance (CV) above which the heaviest bubble
    /// migrates off the busiest domain.
    pub imbalance_threshold: f64,
    /// Remote steal ratio above which a pinned bubble on the busiest
    /// domain bursts.
    pub burst_remote_ratio: f64,
    /// Remote steal ratio below which burst bubbles gang back together.
    pub gang_remote_ratio: f64,
    /// Queued jobs per active worker that trigger a grow.
    pub grow_queue_per_worker: u64,
    /// Consecutive fully-idle steps before a retire is advised.
    pub retire_idle_steps: u32,
    /// Never advise retiring below this many active workers.
    pub min_workers: usize,
    /// Steps a bubble sits out after any placement change.
    pub cooldown_steps: u32,
    /// Ignore placement rules on steps with fewer total steals than this
    /// (too little signal to steer).
    pub min_steals: u64,
}

impl Default for BubblePolicyCfg {
    fn default() -> Self {
        Self {
            imbalance_threshold: 0.5,
            burst_remote_ratio: 0.6,
            gang_remote_ratio: 0.15,
            grow_queue_per_worker: 4,
            retire_idle_steps: 3,
            min_workers: 1,
            cooldown_steps: 2,
            min_steals: 16,
        }
    }
}

struct BubbleState {
    placement: BubblePlacement,
    cooldown: u32,
}

/// The stepped placement/elasticity controller (see the module header).
pub struct BubblePolicy {
    cfg: BubblePolicyCfg,
    bubbles: Vec<BubbleState>,
    idle_streak: u32,
}

impl BubblePolicy {
    /// A policy with the given thresholds and no bubbles yet.
    pub fn new(cfg: BubblePolicyCfg) -> Self {
        Self {
            cfg,
            bubbles: Vec::new(),
            idle_streak: 0,
        }
    }

    /// Register a bubble pinned to `home`; returns its id (dense, stable,
    /// usable as the [`BubbleLoad::bubble`] index).
    pub fn register_bubble(&mut self, home: usize) -> usize {
        self.bubbles.push(BubbleState {
            placement: BubblePlacement::Pinned(home),
            cooldown: 0,
        });
        self.bubbles.len() - 1
    }

    /// The policy's current placement for a bubble.
    ///
    /// # Panics
    /// Panics if `bubble` was never registered.
    pub fn placement(&self, bubble: usize) -> BubblePlacement {
        self.bubbles[bubble].placement
    }

    /// Number of registered bubbles.
    pub fn num_bubbles(&self) -> usize {
        self.bubbles.len()
    }

    /// Advance one control period: digest the snapshot, update internal
    /// placement state, and return the actions for the driver to apply
    /// (at most one elastic action and at most one placement action per
    /// step — small steps keep the loop observable and reversible).
    pub fn step(&mut self, signals: &BubbleSignals, loads: &[BubbleLoad]) -> Vec<BubbleDecision> {
        for b in &mut self.bubbles {
            b.cooldown = b.cooldown.saturating_sub(1);
        }
        let mut out = Vec::new();
        if let Some(d) = self.elastic_step(signals) {
            out.push(d);
        }
        if let Some(d) = self.placement_step(signals, loads) {
            out.push(d);
        }
        out
    }

    /// Rules 1–2: grow under queue pressure, retire after an idle streak.
    fn elastic_step(&mut self, s: &BubbleSignals) -> Option<BubbleDecision> {
        let active = s.total_active();
        let queued = s.total_queued();
        if queued > self.cfg.grow_queue_per_worker * active.max(1) as u64 {
            self.idle_streak = 0;
            // Deepest-queued domain that still has a vacant slot; an
            // unaffine backlog (queued_global) grows wherever room is.
            let target = (0..s.vacant_by_domain.len())
                .filter(|&d| s.vacant_by_domain[d] > 0)
                .max_by_key(|&d| s.queued_by_domain[d])?;
            return Some(BubbleDecision::Grow { domain: target });
        }
        if queued == 0 && s.parked_workers >= active && active > self.cfg.min_workers {
            self.idle_streak += 1;
            if self.idle_streak >= self.cfg.retire_idle_steps {
                self.idle_streak = 0;
                let target =
                    (0..s.active_by_domain.len()).max_by_key(|&d| s.active_by_domain[d])?;
                return Some(BubbleDecision::Retire { domain: target });
            }
        } else {
            self.idle_streak = 0;
        }
        None
    }

    /// Rules 3–5: burst, gang, migrate — one action per step, first rule
    /// that fires wins.
    fn placement_step(
        &mut self,
        s: &BubbleSignals,
        loads: &[BubbleLoad],
    ) -> Option<BubbleDecision> {
        if s.traffic.total_steals() < self.cfg.min_steals {
            return None;
        }
        let remote = s.traffic.remote_ratio();
        let imbalance = s.domain_imbalance();
        let busiest = s.traffic.busiest_domain()?;
        let lightest = {
            let loads = s.load_per_worker();
            (0..loads.len()).min_by(|&a, &b| {
                loads[a]
                    .partial_cmp(&loads[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })?
        };
        // Heaviest bubble per placement, by executed delta.
        let heaviest_on = |domain: usize, policy: &Self| -> Option<usize> {
            loads
                .iter()
                .filter(|l| {
                    policy.bubbles.get(l.bubble).is_some_and(|b| {
                        b.cooldown == 0 && b.placement == BubblePlacement::Pinned(domain)
                    })
                })
                .max_by_key(|l| l.executed)
                .map(|l| l.bubble)
        };
        if remote > self.cfg.burst_remote_ratio {
            // Rule 3: the home domain is a congestion source — thieves
            // cross into it anyway, so the pin only serializes dispatch.
            if let Some(bubble) = heaviest_on(busiest, self) {
                self.bubbles[bubble].placement = BubblePlacement::Burst;
                self.bubbles[bubble].cooldown = self.cfg.cooldown_steps;
                return Some(BubbleDecision::Burst { bubble });
            }
        }
        if remote < self.cfg.gang_remote_ratio {
            // Rule 4: locality is cheap again — re-form one burst bubble
            // on the lightest domain.
            if let Some(bubble) = self
                .bubbles
                .iter()
                .position(|b| b.cooldown == 0 && b.placement == BubblePlacement::Burst)
            {
                self.bubbles[bubble].placement = BubblePlacement::Pinned(lightest);
                self.bubbles[bubble].cooldown = self.cfg.cooldown_steps;
                return Some(BubbleDecision::Gang {
                    bubble,
                    domain: lightest,
                });
            }
        }
        if imbalance > self.cfg.imbalance_threshold && busiest != lightest {
            // Rule 5: migrate the heaviest bubble off the busiest domain.
            if let Some(bubble) = heaviest_on(busiest, self) {
                self.bubbles[bubble].placement = BubblePlacement::Pinned(lightest);
                self.bubbles[bubble].cooldown = self.cfg.cooldown_steps;
                return Some(BubbleDecision::Migrate {
                    bubble,
                    to: lightest,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(
        executed: Vec<u64>,
        local_steals: Vec<u64>,
        remote_steals: Vec<u64>,
        queued: Vec<u64>,
        active: Vec<usize>,
        vacant: Vec<usize>,
        parked: usize,
    ) -> BubbleSignals {
        BubbleSignals {
            traffic: DomainTraffic::new(executed, local_steals, remote_steals),
            queued_by_domain: queued,
            queued_global: 0,
            active_by_domain: active,
            vacant_by_domain: vacant,
            parked_workers: parked,
        }
    }

    #[test]
    fn migrates_heaviest_bubble_off_busiest_domain() {
        let mut p = BubblePolicy::new(BubblePolicyCfg::default());
        let light = p.register_bubble(0);
        let heavy = p.register_bubble(0);
        // Domain 0 does all the work; steals are mostly local (remote ratio
        // well below the burst threshold), and the imbalance is extreme.
        let s = signals(
            vec![900, 10],
            vec![20, 0],
            vec![5, 15],
            vec![4, 0],
            vec![2, 2],
            vec![0, 0],
            0,
        );
        let loads = [
            BubbleLoad {
                bubble: light,
                executed: 100,
            },
            BubbleLoad {
                bubble: heavy,
                executed: 800,
            },
        ];
        let d = p.step(&s, &loads);
        assert_eq!(
            d,
            vec![BubbleDecision::Migrate {
                bubble: heavy,
                to: 1
            }]
        );
        assert_eq!(p.placement(heavy), BubblePlacement::Pinned(1));
        assert_eq!(p.placement(light), BubblePlacement::Pinned(0));
        // Cooldown: the same snapshot fed straight back moves nothing
        // (the migrated bubble sits out; the light one is not heaviest…
        // it is now the only candidate, but its home no longer matches a
        // fresh imbalance read in steady state — feed an idle snapshot).
        let idle = signals(
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![2, 2],
            vec![0, 0],
            0,
        );
        assert!(p.step(&idle, &loads).is_empty());
    }

    #[test]
    fn bursts_under_heavy_remote_traffic_then_gangs_back() {
        let mut p = BubblePolicy::new(BubblePolicyCfg {
            cooldown_steps: 1,
            ..BubblePolicyCfg::default()
        });
        let b = p.register_bubble(0);
        let congested = signals(
            vec![500, 100],
            vec![5, 0],
            vec![10, 90],
            vec![8, 0],
            vec![2, 2],
            vec![0, 0],
            0,
        );
        let loads = [BubbleLoad {
            bubble: b,
            executed: 500,
        }];
        let d = p.step(&congested, &loads);
        assert_eq!(d, vec![BubbleDecision::Burst { bubble: b }]);
        assert_eq!(p.placement(b), BubblePlacement::Burst);
        // Once remote traffic subsides, the bubble gangs back onto the
        // lightest domain.
        let calm = signals(
            vec![300, 320],
            vec![20, 20],
            vec![2, 1],
            vec![0, 0],
            vec![2, 2],
            vec![0, 0],
            0,
        );
        let mut ganged = Vec::new();
        for _ in 0..3 {
            ganged.extend(p.step(&calm, &loads));
        }
        assert!(
            ganged
                .iter()
                .any(|d| matches!(d, BubbleDecision::Gang { bubble, .. } if *bubble == b)),
            "{ganged:?}"
        );
        assert!(matches!(p.placement(b), BubblePlacement::Pinned(_)));
    }

    #[test]
    fn grows_under_queue_pressure_into_a_vacant_domain() {
        let mut p = BubblePolicy::new(BubblePolicyCfg::default());
        let s = signals(
            vec![10, 10],
            vec![0, 0],
            vec![0, 0],
            vec![40, 2],
            vec![1, 1],
            vec![0, 2],
            0,
        );
        // Domain 0 is the deepest queue but has no vacancy; the grow goes
        // to the deepest *growable* domain.
        assert_eq!(p.step(&s, &[]), vec![BubbleDecision::Grow { domain: 1 }]);
        // No vacancy anywhere → no grow, however deep the queues.
        let full = signals(
            vec![10, 10],
            vec![0, 0],
            vec![0, 0],
            vec![40, 2],
            vec![1, 1],
            vec![0, 0],
            0,
        );
        assert!(p.step(&full, &[]).is_empty());
    }

    #[test]
    fn retires_only_after_a_sustained_idle_streak() {
        let mut p = BubblePolicy::new(BubblePolicyCfg::default());
        let idle = signals(
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![0, 0],
            vec![2, 1],
            vec![0, 1],
            3,
        );
        assert!(p.step(&idle, &[]).is_empty());
        assert!(p.step(&idle, &[]).is_empty());
        assert_eq!(
            p.step(&idle, &[]),
            vec![BubbleDecision::Retire { domain: 0 }],
            "third consecutive idle step retires from the biggest domain"
        );
        // A busy step in between resets the streak.
        assert!(p.step(&idle, &[]).is_empty());
        let busy = signals(
            vec![50, 50],
            vec![0, 0],
            vec![0, 0],
            vec![1, 1],
            vec![2, 1],
            vec![0, 1],
            0,
        );
        assert!(p.step(&busy, &[]).is_empty());
        assert!(p.step(&idle, &[]).is_empty());
    }

    #[test]
    fn respects_the_min_worker_floor_and_signal_floor() {
        let mut p = BubblePolicy::new(BubblePolicyCfg {
            min_workers: 2,
            ..BubblePolicyCfg::default()
        });
        let idle = signals(vec![0], vec![0], vec![0], vec![0], vec![2], vec![1], 2);
        for _ in 0..10 {
            assert!(p.step(&idle, &[]).is_empty(), "at the floor, never retire");
        }
        // Below min_steals the placement rules stay quiet even under
        // pathological ratios.
        let b = p.register_bubble(0);
        let noisy = signals(
            vec![9, 0],
            vec![0, 0],
            vec![1, 2],
            vec![0, 0],
            vec![1, 1],
            vec![0, 0],
            0,
        );
        let loads = [BubbleLoad {
            bubble: b,
            executed: 9,
        }];
        assert!(p.step(&noisy, &loads).is_empty());
        assert_eq!(p.placement(b), BubblePlacement::Pinned(0));
    }
}
