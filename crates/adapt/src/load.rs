//! Dynamic load adaptation: thread migration policies (§2).
//!
//! "The computation load may become unbalanced and a large number of
//! threads may need to migrate to balance the load of the machine."
//!
//! The model: `nodes` ready queues of threads with known costs; work
//! arrives skewed (and optionally in a second *phase* that re-skews toward
//! other nodes mid-run). Policies:
//!
//! * **None** — threads run where they were spawned;
//! * **SenderInitiated** — an overloaded node pushes a thread to the
//!   least-loaded node when its queue exceeds a threshold;
//! * **ReceiverInitiated** — an idle node asks the most-loaded node for
//!   work;
//! * **WorkStealing** — an idle node steals half the richest queue
//!   (receiver-initiated with batch transfer).
//!
//! Each migration costs `migrate_cost` cycles on the receiving node (state
//! transfer). Replay is an event-driven list simulation — deterministic,
//! like `loop_sched`.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Migration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadPolicy {
    /// No migration.
    None,
    /// Push from overloaded nodes above `threshold` queued threads.
    SenderInitiated {
        /// Queue length that triggers a push.
        threshold: usize,
    },
    /// Idle nodes pull one thread from the most loaded node.
    ReceiverInitiated,
    /// Idle nodes steal half the richest queue.
    WorkStealing,
}

impl LoadPolicy {
    /// Portfolio for E9.
    pub const PORTFOLIO: [LoadPolicy; 4] = [
        LoadPolicy::None,
        LoadPolicy::SenderInitiated { threshold: 8 },
        LoadPolicy::ReceiverInitiated,
        LoadPolicy::WorkStealing,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LoadPolicy::None => "none",
            LoadPolicy::SenderInitiated { .. } => "sender-initiated",
            LoadPolicy::ReceiverInitiated => "receiver-initiated",
            LoadPolicy::WorkStealing => "work-stealing",
        }
    }
}

/// Workload and machine parameters.
#[derive(Debug, Clone)]
pub struct LoadSimConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Total threads in the first phase.
    pub threads: usize,
    /// Mean thread cost (cycles).
    pub mean_cost: u64,
    /// Fraction (0..=1) of phase-1 threads born on node 0 (skew).
    pub skew: f64,
    /// Optional second phase: after the first `threads` retire a new batch
    /// of equal size arrives, skewed to the *last* node.
    pub phase_change: bool,
    /// Cost charged to the destination for each migrated thread.
    pub migrate_cost: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LoadSimConfig {
    fn default() -> Self {
        Self {
            nodes: 8,
            threads: 512,
            mean_cost: 1_000,
            skew: 0.8,
            phase_change: false,
            migrate_cost: 400,
            seed: 1,
        }
    }
}

/// Replay outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSimResult {
    /// Cycles until the last node drains.
    pub makespan: u64,
    /// Threads migrated.
    pub migrations: u64,
    /// Coefficient of variation of per-node busy time.
    pub imbalance: f64,
    /// Per-node busy cycles.
    pub busy: Vec<u64>,
}

/// Run the load-adaptation simulation.
pub fn simulate_load(policy: LoadPolicy, cfg: &LoadSimConfig) -> LoadSimResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes.max(1);
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
    let spawn_batch = |queues: &mut Vec<VecDeque<u64>>, rng: &mut StdRng, hot: usize| {
        for _ in 0..cfg.threads {
            let cost = rng.gen_range(1..=2 * cfg.mean_cost.max(1));
            let node = if rng.gen_bool(cfg.skew.clamp(0.0, 1.0)) {
                hot
            } else {
                rng.gen_range(0..n)
            };
            queues[node].push_back(cost);
        }
    };
    spawn_batch(&mut queues, &mut rng, 0);

    let mut clock = vec![0u64; n]; // per-node local time
    let mut busy = vec![0u64; n];
    let mut migrations = 0u64;
    let mut second_phase_pending = cfg.phase_change;
    let mut retired = 0usize;

    loop {
        // Balance step (policy), then the globally-earliest node runs one
        // thread. This interleaving approximates periodic balancing.
        match policy {
            LoadPolicy::None => {}
            LoadPolicy::SenderInitiated { threshold } => {
                for src in 0..n {
                    while queues[src].len() > threshold {
                        let dst = (0..n).min_by_key(|&d| queues[d].len()).unwrap();
                        if queues[dst].len() + 1 >= queues[src].len() {
                            break;
                        }
                        let t = queues[src].pop_back().unwrap();
                        queues[dst].push_back(t);
                        busy[dst] += cfg.migrate_cost;
                        clock[dst] += cfg.migrate_cost;
                        migrations += 1;
                    }
                }
            }
            LoadPolicy::ReceiverInitiated => {
                for dst in 0..n {
                    if queues[dst].is_empty() {
                        let src = (0..n).max_by_key(|&s| queues[s].len()).unwrap();
                        if queues[src].len() > 1 {
                            let t = queues[src].pop_back().unwrap();
                            queues[dst].push_back(t);
                            busy[dst] += cfg.migrate_cost;
                            clock[dst] += cfg.migrate_cost;
                            migrations += 1;
                        }
                    }
                }
            }
            LoadPolicy::WorkStealing => {
                for dst in 0..n {
                    if queues[dst].is_empty() {
                        let src = (0..n).max_by_key(|&s| queues[s].len()).unwrap();
                        let half = queues[src].len() / 2;
                        if half == 0 {
                            continue;
                        }
                        for _ in 0..half {
                            let t = queues[src].pop_back().unwrap();
                            queues[dst].push_back(t);
                            migrations += 1;
                        }
                        // Batch transfer amortizes: one migrate cost per
                        // steal event, not per thread.
                        busy[dst] += cfg.migrate_cost;
                        clock[dst] += cfg.migrate_cost;
                    }
                }
            }
        }

        // Earliest node with work runs one thread.
        let runnable: Vec<usize> = (0..n).filter(|&i| !queues[i].is_empty()).collect();
        if runnable.is_empty() {
            if second_phase_pending {
                second_phase_pending = false;
                // Re-skew toward the last node; nodes keep their clocks.
                spawn_batch(&mut queues, &mut rng, n - 1);
                continue;
            }
            break;
        }
        let w = *runnable.iter().min_by_key(|&&i| clock[i]).unwrap();
        let cost = queues[w].pop_front().unwrap();
        clock[w] += cost;
        busy[w] += cost;
        retired += 1;
        let _ = retired;
    }

    let makespan = *clock.iter().max().unwrap_or(&0);
    let mean = busy.iter().sum::<u64>() as f64 / n as f64;
    let var = busy.iter().map(|&b| (b as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    LoadSimResult {
        makespan,
        migrations,
        imbalance: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LoadSimConfig {
        LoadSimConfig::default()
    }

    #[test]
    fn no_migration_suffers_under_skew() {
        let none = simulate_load(LoadPolicy::None, &cfg());
        let steal = simulate_load(LoadPolicy::WorkStealing, &cfg());
        assert!(
            steal.makespan * 2 < none.makespan,
            "stealing {} must far outrun no-migration {} at 80% skew",
            steal.makespan,
            none.makespan
        );
        assert_eq!(none.migrations, 0);
        assert!(steal.migrations > 0);
    }

    #[test]
    fn all_policies_do_all_work() {
        // Total busy time ≥ total thread cost (plus migration overheads).
        let base: u64 = {
            let r = simulate_load(LoadPolicy::None, &cfg());
            r.busy.iter().sum()
        };
        for p in LoadPolicy::PORTFOLIO {
            let r = simulate_load(p, &cfg());
            let total: u64 = r.busy.iter().sum();
            assert!(total >= base, "{}: busy {total} < work {base}", p.name());
        }
    }

    #[test]
    fn receiver_initiated_reduces_imbalance() {
        let none = simulate_load(LoadPolicy::None, &cfg());
        let recv = simulate_load(LoadPolicy::ReceiverInitiated, &cfg());
        assert!(recv.imbalance < none.imbalance);
    }

    #[test]
    fn sender_initiated_reduces_makespan() {
        let none = simulate_load(LoadPolicy::None, &cfg());
        let send = simulate_load(LoadPolicy::SenderInitiated { threshold: 8 }, &cfg());
        assert!(send.makespan < none.makespan);
        assert!(send.migrations > 0);
    }

    #[test]
    fn stealing_adapts_to_phase_change() {
        let mut c = cfg();
        c.phase_change = true;
        let none = simulate_load(LoadPolicy::None, &c);
        let steal = simulate_load(LoadPolicy::WorkStealing, &c);
        assert!(
            steal.makespan * 2 < none.makespan,
            "stealing {} vs none {} across a phase shift",
            steal.makespan,
            none.makespan
        );
    }

    #[test]
    fn no_skew_no_gain() {
        let mut c = cfg();
        c.skew = 0.0;
        let none = simulate_load(LoadPolicy::None, &c);
        let steal = simulate_load(LoadPolicy::WorkStealing, &c);
        // Without skew migration buys little; allow small wins either way.
        let ratio = none.makespan as f64 / steal.makespan as f64;
        assert!(
            (0.8..1.6).contains(&ratio),
            "balanced load: expected parity, got {ratio:.2}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_load(LoadPolicy::WorkStealing, &cfg());
        let b = simulate_load(LoadPolicy::WorkStealing, &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn migration_cost_is_charged() {
        let cheap = simulate_load(
            LoadPolicy::ReceiverInitiated,
            &LoadSimConfig {
                migrate_cost: 0,
                ..cfg()
            },
        );
        let costly = simulate_load(
            LoadPolicy::ReceiverInitiated,
            &LoadSimConfig {
                migrate_cost: 100_000,
                ..cfg()
            },
        );
        assert!(costly.makespan > cheap.makespan);
    }
}
