//! Locality adaptation: data migration and replication with copy
//! consistency (§2), plus locality-domain affinity hints derived from
//! observed steal traffic.
//!
//! "Data objects may need to migrate, and copies be generated and moved in
//! the memory hierarchy to achieve high locality, while copy consistency
//! needs to be preserved."
//!
//! [`Directory`] is a directory-based coherence engine over logical blocks:
//! every block has a home node, an optional set of read replicas, and at
//! most one writable copy. Policies layer on top:
//!
//! * **FixedHome** — blocks never move; remote accesses pay the remote cost
//!   forever (the no-adaptation baseline);
//! * **Migrate** — after `k` consecutive accesses from the same non-home
//!   node, the block's home migrates there;
//! * **Replicate** — reads install replicas (local thereafter); writes
//!   invalidate all replicas (MSI-style), preserving single-writer /
//!   multi-reader consistency;
//! * **MigrateAndReplicate** — both.
//!
//! The second half of the module closes the loop between the native pool's
//! locality domains and the §4.1 hint system: [`DomainTraffic`] holds the
//! per-domain executed/local-steal/remote-steal counters a run observed
//! (`htvm_core::PoolStats` aggregated by domain), and [`affinity_hints`]
//! turns them into [`StructuredHint`]s — a `DataLocality` hint naming the
//! busiest domain as the subtree's home when too many steals crossed
//! domain boundaries, and a `MonitoringPriority` hint asking the monitor
//! to keep watching the remote-steal counter.

use std::collections::{BTreeMap, BTreeSet};

use crate::hints::{HintCategory, HintTarget, StructuredHint};

/// Consistency/placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalityPolicy {
    /// Blocks stay home; no replicas.
    FixedHome,
    /// Home migration after `k` consecutive remote accesses from one node.
    Migrate {
        /// Consecutive-access threshold.
        threshold: u32,
    },
    /// Read replication with write invalidation.
    Replicate,
    /// Migration + replication.
    MigrateAndReplicate {
        /// Consecutive-access threshold for migration.
        threshold: u32,
    },
}

impl LocalityPolicy {
    /// Portfolio for E10.
    pub const PORTFOLIO: [LocalityPolicy; 4] = [
        LocalityPolicy::FixedHome,
        LocalityPolicy::Migrate { threshold: 4 },
        LocalityPolicy::Replicate,
        LocalityPolicy::MigrateAndReplicate { threshold: 4 },
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LocalityPolicy::FixedHome => "fixed-home",
            LocalityPolicy::Migrate { .. } => "migrate",
            LocalityPolicy::Replicate => "replicate",
            LocalityPolicy::MigrateAndReplicate { .. } => "migrate+replicate",
        }
    }
}

/// Access cost parameters (cycles).
#[derive(Debug, Clone)]
pub struct LocalityCosts {
    /// A node touching a block it holds locally (home or replica).
    pub local: u64,
    /// A node touching a remote block.
    pub remote: u64,
    /// Moving a block's home (state + directory update).
    pub migrate: u64,
    /// Installing a replica. The data itself rides the remote read that
    /// triggered the replication (already paid under `remote`), so this is
    /// only the directory update + local copy installation.
    pub replicate: u64,
    /// Invalidating one replica.
    pub invalidate: u64,
}

impl Default for LocalityCosts {
    fn default() -> Self {
        Self {
            local: 10,
            remote: 400,
            migrate: 2_000,
            replicate: 100,
            invalidate: 150,
        }
    }
}

/// What kind of consistency action an access triggered (for tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyKind {
    /// Served locally.
    LocalHit,
    /// Served from the (remote) home.
    RemoteAccess,
    /// The block's home moved to the accessor.
    Migrated,
    /// A replica was installed at the accessor.
    Replicated,
    /// Replicas were invalidated (count attached).
    Invalidated(u32),
}

#[derive(Debug, Clone)]
struct BlockState {
    home: u16,
    replicas: BTreeSet<u16>,
    /// (node, run-length) of consecutive remote accesses.
    streak: (u16, u32),
}

/// Directory-based block manager.
#[derive(Debug, Clone)]
pub struct Directory {
    policy: LocalityPolicy,
    costs: LocalityCosts,
    blocks: BTreeMap<u64, BlockState>,
    /// Total cycles charged.
    pub cycles: u64,
    /// Accesses served locally.
    pub local_hits: u64,
    /// Accesses served remotely.
    pub remote_accesses: u64,
    /// Home migrations performed.
    pub migrations: u64,
    /// Replicas installed.
    pub replications: u64,
    /// Replica invalidations performed.
    pub invalidations: u64,
}

impl Directory {
    /// A directory where every block initially lives on node 0 unless
    /// `place` is called.
    pub fn new(policy: LocalityPolicy, costs: LocalityCosts) -> Self {
        Self {
            policy,
            costs,
            blocks: BTreeMap::new(),
            cycles: 0,
            local_hits: 0,
            remote_accesses: 0,
            migrations: 0,
            replications: 0,
            invalidations: 0,
        }
    }

    /// Set a block's home explicitly (initial data distribution).
    pub fn place(&mut self, block: u64, home: u16) {
        self.blocks.insert(
            block,
            BlockState {
                home,
                replicas: BTreeSet::new(),
                streak: (home, 0),
            },
        );
    }

    fn state(&mut self, block: u64) -> &mut BlockState {
        self.blocks.entry(block).or_insert(BlockState {
            home: 0,
            replicas: BTreeSet::new(),
            streak: (0, 0),
        })
    }

    /// Current home of a block.
    pub fn home_of(&self, block: u64) -> Option<u16> {
        self.blocks.get(&block).map(|b| b.home)
    }

    /// Replica holders of a block.
    pub fn replicas_of(&self, block: u64) -> Vec<u16> {
        self.blocks
            .get(&block)
            .map(|b| b.replicas.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Invariant: a block's home never appears in its own replica set
    /// (single authoritative copy), checked by tests after random traces.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (id, b) in &self.blocks {
            if b.replicas.contains(&b.home) {
                return Err(format!("block {id}: home {} is also a replica", b.home));
            }
        }
        Ok(())
    }

    /// Process a read by `node`; returns what happened.
    pub fn read(&mut self, node: u16, block: u64) -> ConsistencyKind {
        let policy = self.policy;
        let costs = self.costs.clone();
        let local = {
            let st = self.state(block);
            st.home == node || st.replicas.contains(&node)
        };
        if local {
            self.cycles += costs.local;
            self.local_hits += 1;
            return ConsistencyKind::LocalHit;
        }
        // Remote read.
        self.remote_accesses += 1;
        self.cycles += costs.remote;
        let kind = match policy {
            LocalityPolicy::Replicate | LocalityPolicy::MigrateAndReplicate { .. } => {
                self.state(block).replicas.insert(node);
                self.replications += 1;
                self.cycles += costs.replicate;
                ConsistencyKind::Replicated
            }
            _ => ConsistencyKind::RemoteAccess,
        };
        self.maybe_migrate(node, block)
            .map(|_| ConsistencyKind::Migrated)
            .unwrap_or(kind)
    }

    /// Process a write by `node`; invalidates replicas as required.
    pub fn write(&mut self, node: u16, block: u64) -> ConsistencyKind {
        let costs = self.costs.clone();
        let st = self.state(block);
        // Writes must invalidate every replica other than the writer's own
        // copy-to-be: single-writer rule.
        let stale: Vec<u16> = st.replicas.iter().copied().filter(|&r| r != node).collect();
        let n_inv = stale.len() as u32;
        for r in stale {
            st.replicas.remove(&r);
        }
        if n_inv > 0 {
            self.invalidations += n_inv as u64;
            self.cycles += costs.invalidate * n_inv as u64;
        }
        let st = self.state(block);
        let local = st.home == node;
        // A writer with a replica must still reach the home for ownership;
        // drop its replica (the home copy is authoritative).
        st.replicas.remove(&node);
        if local {
            self.cycles += costs.local;
            self.local_hits += 1;
            if n_inv > 0 {
                return ConsistencyKind::Invalidated(n_inv);
            }
            return ConsistencyKind::LocalHit;
        }
        self.remote_accesses += 1;
        self.cycles += costs.remote;
        if self.maybe_migrate(node, block).is_some() {
            return ConsistencyKind::Migrated;
        }
        if n_inv > 0 {
            return ConsistencyKind::Invalidated(n_inv);
        }
        ConsistencyKind::RemoteAccess
    }

    /// Track consecutive remote accesses and migrate the home if the policy
    /// allows and the threshold fires.
    fn maybe_migrate(&mut self, node: u16, block: u64) -> Option<()> {
        let threshold = match self.policy {
            LocalityPolicy::Migrate { threshold }
            | LocalityPolicy::MigrateAndReplicate { threshold } => threshold,
            _ => {
                let st = self.state(block);
                st.streak = (node, 1);
                return None;
            }
        };
        let costs = self.costs.clone();
        let st = self.state(block);
        if st.streak.0 == node {
            st.streak.1 += 1;
        } else {
            st.streak = (node, 1);
        }
        if st.streak.1 >= threshold.max(1) {
            st.home = node;
            st.replicas.remove(&node);
            st.streak = (node, 0);
            self.migrations += 1;
            self.cycles += costs.migrate;
            return Some(());
        }
        None
    }
}

/// Replay a `(node, block, is_write)` trace; returns the directory with its
/// counters.
pub fn replay(
    policy: LocalityPolicy,
    costs: LocalityCosts,
    trace: &[(u16, u64, bool)],
) -> Directory {
    let mut d = Directory::new(policy, costs);
    for &(node, block, is_write) in trace {
        if is_write {
            d.write(node, block);
        } else {
            d.read(node, block);
        }
    }
    d
}

/// Generate the E10 trace: `blocks` blocks homed on node 0; each block is
/// then accessed in long runs by a "consumer" node (producer-migrates
/// pattern), with `write_fraction` of accesses being writes.
pub fn producer_consumer_trace(
    nodes: u16,
    blocks: u64,
    run_len: usize,
    write_fraction: f64,
    seed: u64,
) -> Vec<(u16, u64, bool)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for b in 0..blocks {
        let consumer = 1 + (rng.gen_range(0..nodes.max(2) - 1));
        for _ in 0..run_len {
            let w = rng.gen_bool(write_fraction.clamp(0.0, 1.0));
            out.push((consumer, b, w));
        }
    }
    out
}

/// Generate a read-mostly sharing trace: every node reads every block
/// round-robin; rare writes from node 0.
pub fn read_mostly_trace(
    nodes: u16,
    blocks: u64,
    rounds: usize,
    seed: u64,
) -> Vec<(u16, u64, bool)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..rounds {
        for b in 0..blocks {
            for node in 0..nodes {
                out.push((node, b, false));
            }
        }
        if rng.gen_bool(0.2) {
            for b in 0..blocks {
                out.push((0, b, true));
            }
        }
    }
    out
}

/// Steal traffic of one run, aggregated per locality domain (the
/// runtime-agnostic mirror of `htvm_core::PoolStats::*_by_domain()`).
///
/// All three vectors are indexed by domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainTraffic {
    /// Jobs executed per domain.
    pub executed: Vec<u64>,
    /// Steals satisfied inside a domain (cheap migrations).
    pub local_steals: Vec<u64>,
    /// Steals that crossed a domain boundary, attributed to the thief's
    /// domain (the migrations locality adaptation tries to eliminate).
    pub remote_steals: Vec<u64>,
}

impl DomainTraffic {
    /// Build from per-domain counter vectors.
    ///
    /// # Panics
    /// Panics if the vectors disagree on the domain count.
    pub fn new(executed: Vec<u64>, local_steals: Vec<u64>, remote_steals: Vec<u64>) -> Self {
        assert!(
            executed.len() == local_steals.len() && executed.len() == remote_steals.len(),
            "per-domain counter vectors must agree on the domain count"
        );
        Self {
            executed,
            local_steals,
            remote_steals,
        }
    }

    /// Number of domains observed.
    pub fn num_domains(&self) -> usize {
        self.executed.len()
    }

    /// Total steals of either kind.
    pub fn total_steals(&self) -> u64 {
        self.local_steals.iter().sum::<u64>() + self.remote_steals.iter().sum::<u64>()
    }

    /// Fraction of steals that crossed a domain boundary (0 when nothing
    /// was stolen).
    pub fn remote_ratio(&self) -> f64 {
        let total = self.total_steals();
        if total == 0 {
            0.0
        } else {
            self.remote_steals.iter().sum::<u64>() as f64 / total as f64
        }
    }

    /// The domain that executed the most jobs — the natural home for the
    /// workload's subtree. `None` when nothing ran.
    pub fn busiest_domain(&self) -> Option<usize> {
        let (d, &n) = self.executed.iter().enumerate().max_by_key(|&(_, &n)| n)?;
        (n > 0).then_some(d)
    }
}

/// When [`affinity_hints`] speaks up.
#[derive(Debug, Clone)]
pub struct AffinityThresholds {
    /// Emit the `home_domain` hint when the remote fraction of steals
    /// exceeds this.
    pub remote_ratio: f64,
    /// Ignore runs with fewer total steals than this (too little signal
    /// to steer placement).
    pub min_steals: u64,
}

impl Default for AffinityThresholds {
    fn default() -> Self {
        Self {
            remote_ratio: 0.25,
            min_steals: 16,
        }
    }
}

/// The §4.1 feedback edge from the runtime to the knowledge base: convert
/// one run's observed per-domain steal traffic into structured hints.
///
/// * Too many cross-domain steals → a `DataLocality` hint targeted at the
///   runtime: `home_domain = <busiest domain>`, `keep_subtree_home = true`
///   (apply it by invoking the next run's LGT with `Htvm::lgt_in`).
/// * Any observed stealing → a `MonitoringPriority` hint targeted at the
///   monitor: `watch = remote_steals`, so the decision is revisited.
///
/// Returns an empty vector when the run produced too little steal traffic
/// to steer anything. Attach the result to a program point with
/// [`crate::KnowledgeBase::add_hint`].
pub fn affinity_hints(traffic: &DomainTraffic, th: &AffinityThresholds) -> Vec<StructuredHint> {
    if traffic.total_steals() < th.min_steals.max(1) {
        return Vec::new();
    }
    let mut out = vec![StructuredHint::new(
        HintCategory::MonitoringPriority,
        HintTarget::Monitor,
        5,
        [("watch".to_string(), "remote_steals".to_string())],
    )];
    if traffic.remote_ratio() > th.remote_ratio {
        if let Some(home) = traffic.busiest_domain() {
            out.insert(
                0,
                StructuredHint::new(
                    HintCategory::DataLocality,
                    HintTarget::Runtime,
                    10,
                    [
                        ("home_domain".to_string(), home.to_string()),
                        // Fingerprint of the topology the hint was
                        // observed under: a persisted hint must not be
                        // applied to a pool with a different domain
                        // structure (the index would be meaningless).
                        ("num_domains".to_string(), traffic.num_domains().to_string()),
                        ("keep_subtree_home".to_string(), "true".to_string()),
                        (
                            "observed_remote_ratio".to_string(),
                            format!("{:.3}", traffic.remote_ratio()),
                        ),
                    ],
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> LocalityCosts {
        LocalityCosts::default()
    }

    #[test]
    fn migration_pays_off_for_producer_consumer() {
        let trace = producer_consumer_trace(8, 64, 50, 0.3, 3);
        let fixed = replay(LocalityPolicy::FixedHome, costs(), &trace);
        let mig = replay(LocalityPolicy::Migrate { threshold: 4 }, costs(), &trace);
        assert!(
            mig.cycles * 2 < fixed.cycles,
            "migration {} must beat fixed {} on producer-consumer runs",
            mig.cycles,
            fixed.cycles
        );
        assert!(mig.migrations >= 32, "most blocks should migrate");
        mig.check_invariants().unwrap();
    }

    #[test]
    fn replication_pays_off_for_read_mostly() {
        let trace = read_mostly_trace(8, 32, 10, 3);
        let fixed = replay(LocalityPolicy::FixedHome, costs(), &trace);
        let repl = replay(LocalityPolicy::Replicate, costs(), &trace);
        assert!(
            repl.cycles < fixed.cycles,
            "replication {} must beat fixed {} on read-mostly sharing",
            repl.cycles,
            fixed.cycles
        );
        assert!(repl.replications > 0);
        repl.check_invariants().unwrap();
    }

    #[test]
    fn writes_invalidate_replicas() {
        let mut d = Directory::new(LocalityPolicy::Replicate, costs());
        d.place(7, 0);
        assert_eq!(d.read(1, 7), ConsistencyKind::Replicated);
        assert_eq!(d.read(2, 7), ConsistencyKind::Replicated);
        assert_eq!(d.replicas_of(7).len(), 2);
        match d.write(0, 7) {
            ConsistencyKind::Invalidated(n) => assert_eq!(n, 2),
            other => panic!("expected invalidation, got {other:?}"),
        }
        assert!(d.replicas_of(7).is_empty());
        d.check_invariants().unwrap();
    }

    #[test]
    fn reader_after_invalidation_misses_again() {
        let mut d = Directory::new(LocalityPolicy::Replicate, costs());
        d.place(1, 0);
        d.read(1, 1);
        d.write(0, 1);
        // Node 1's replica is gone: the next read is remote again.
        let k = d.read(1, 1);
        assert_eq!(k, ConsistencyKind::Replicated);
        assert_eq!(d.remote_accesses, 2);
    }

    #[test]
    fn migration_threshold_respected() {
        let mut d = Directory::new(LocalityPolicy::Migrate { threshold: 3 }, costs());
        d.place(9, 0);
        assert_eq!(d.read(2, 9), ConsistencyKind::RemoteAccess);
        assert_eq!(d.read(2, 9), ConsistencyKind::RemoteAccess);
        assert_eq!(d.read(2, 9), ConsistencyKind::Migrated);
        assert_eq!(d.home_of(9), Some(2));
        // Now local.
        assert_eq!(d.read(2, 9), ConsistencyKind::LocalHit);
    }

    #[test]
    fn alternating_accessors_never_migrate() {
        let mut d = Directory::new(LocalityPolicy::Migrate { threshold: 3 }, costs());
        d.place(4, 0);
        for _ in 0..10 {
            d.read(1, 4);
            d.read(2, 4);
        }
        assert_eq!(d.home_of(4), Some(0), "streaks never reach the threshold");
        assert_eq!(d.migrations, 0);
    }

    #[test]
    fn single_writer_invariant_under_random_trace() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for policy in LocalityPolicy::PORTFOLIO {
            let mut d = Directory::new(policy, costs());
            for _ in 0..5_000 {
                let node = rng.gen_range(0..8u16);
                let block = rng.gen_range(0..32u64);
                if rng.gen_bool(0.3) {
                    d.write(node, block);
                } else {
                    d.read(node, block);
                }
                d.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn combined_policy_dominates_on_mixed_workload() {
        let mut trace = producer_consumer_trace(8, 32, 40, 0.2, 5);
        trace.extend(read_mostly_trace(8, 16, 5, 6));
        let fixed = replay(LocalityPolicy::FixedHome, costs(), &trace);
        let both = replay(
            LocalityPolicy::MigrateAndReplicate { threshold: 4 },
            costs(),
            &trace,
        );
        assert!(both.cycles < fixed.cycles);
        both.check_invariants().unwrap();
    }

    #[test]
    fn remote_fraction_drops_with_adaptation() {
        let trace = producer_consumer_trace(8, 64, 50, 0.1, 7);
        let fixed = replay(LocalityPolicy::FixedHome, costs(), &trace);
        let mig = replay(LocalityPolicy::Migrate { threshold: 4 }, costs(), &trace);
        let f_frac = fixed.remote_accesses as f64 / trace.len() as f64;
        let m_frac = mig.remote_accesses as f64 / trace.len() as f64;
        assert!(
            m_frac < f_frac / 3.0,
            "remote fraction {m_frac} vs {f_frac}"
        );
    }

    #[test]
    fn steal_heavy_traffic_emits_home_domain_hint() {
        // Domain 1 did most of the work, and most steals were remote.
        let t = DomainTraffic::new(vec![10, 500], vec![5, 5], vec![40, 10]);
        assert!((t.remote_ratio() - 50.0 / 60.0).abs() < 1e-12);
        assert_eq!(t.busiest_domain(), Some(1));
        let hints = affinity_hints(&t, &AffinityThresholds::default());
        assert_eq!(hints.len(), 2);
        let home = &hints[0];
        assert_eq!(home.category, HintCategory::DataLocality);
        assert_eq!(home.target, HintTarget::Runtime);
        assert_eq!(home.get("home_domain"), Some("1"));
        assert_eq!(home.get("num_domains"), Some("2"));
        assert_eq!(home.get("keep_subtree_home"), Some("true"));
        let watch = &hints[1];
        assert_eq!(watch.category, HintCategory::MonitoringPriority);
        assert_eq!(watch.get("watch"), Some("remote_steals"));
    }

    #[test]
    fn local_steal_traffic_only_asks_for_monitoring() {
        // Plenty of steals, but nearly all were satisfied in-domain: no
        // placement change is warranted, just keep watching.
        let t = DomainTraffic::new(vec![200, 210], vec![50, 45], vec![2, 1]);
        let hints = affinity_hints(&t, &AffinityThresholds::default());
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].category, HintCategory::MonitoringPriority);
    }

    #[test]
    fn quiet_runs_emit_nothing() {
        let t = DomainTraffic::new(vec![100, 100], vec![1, 0], vec![1, 0]);
        assert!(affinity_hints(&t, &AffinityThresholds::default()).is_empty());
        let idle = DomainTraffic::new(vec![0, 0], vec![0, 0], vec![0, 0]);
        assert_eq!(idle.remote_ratio(), 0.0);
        assert_eq!(idle.busiest_domain(), None);
        assert!(affinity_hints(&idle, &AffinityThresholds::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "domain count")]
    fn mismatched_traffic_vectors_panic() {
        DomainTraffic::new(vec![1, 2], vec![0], vec![0, 0]);
    }
}
