//! Naive vs software-pipelined loop execution — the adaptation policy that
//! closes §3.3's loop with §4.1's knowledge base.
//!
//! A LITL-X `forall` nest can execute two ways: the naive flat SGT fan-out
//! (one chunked SGT per worker) or the SSP path (lower to a loop nest,
//! pick a level, partition it into domain-placed groups —
//! `htvm_ssp::exec`). [`decide_loop_path`] picks, in priority order:
//!
//! 1. an explicit `pipeline` hint at the program point (from a LITL-X
//!    `@hint(pipeline)` pragma or a domain expert's database entry) —
//!    forced, no questions asked;
//! 2. recorded outcomes: whichever of the two policies measured faster at
//!    this point in a previous run ("an integrated part of our
//!    Program/Execution Knowledge Database");
//! 3. a static heuristic: pipeline multi-level nests with enough points to
//!    amortize group spawns; leave small or flat loops on the naive path.
//!
//! After every execution the runtime calls [`record_loop_outcome`] so the
//! next run (or the next execution of the same loop) decides from data.

use crate::hints::{HintCategory, HintTarget, KnowledgeBase, StructuredHint};

/// Policy names under which loop-path outcomes are recorded.
pub const NAIVE_POLICY: &str = "naive";
/// Recorded-outcome name of the SSP-partitioned path.
pub const PIPELINED_POLICY: &str = "pipelined";
/// Fine-grained policy name: the SSP path running the interpreted
/// point-at-a-time kernel tape.
pub const SSP_INTERP_POLICY: &str = "ssp-interp";
/// Fine-grained policy name: the SSP path running the compiled
/// run-at-a-time kernel.
pub const SSP_COMPILED_POLICY: &str = "ssp-compiled";

/// The two ways a `forall` nest can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopPath {
    /// Flat SGT fan-out with a chunked dynamic schedule.
    Naive,
    /// Lower to a loop nest, software-pipeline a level, partition into
    /// thread groups on the native pool.
    Pipelined,
}

/// A decision plus its optional tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopPathDecision {
    /// Which path to take.
    pub path: LoopPath,
    /// Forced pipelined level (`level = k` in the hint), if any.
    pub level: Option<usize>,
    /// Forced group size in iterations (`chunk = k` in the hint), if any.
    pub chunk: Option<u64>,
    /// Why the decision fell where it did (for reports and tests).
    pub reason: DecisionReason,
}

/// Provenance of a loop-path decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// A `pipeline` hint forced the choice.
    Hint,
    /// Recorded outcomes at this point decided.
    Recorded,
    /// The static heuristic decided (no hint, no history).
    Heuristic,
}

/// Shape of the loop nest, as far as the policy needs to know it.
#[derive(Debug, Clone, Copy)]
pub struct LoopShape {
    /// Nest depth (1 = a flat `forall`).
    pub depth: usize,
    /// Total iteration points.
    pub points: u64,
    /// Pool workers available.
    pub workers: usize,
}

/// Translate a LITL-X `@hint(pipeline, …)` pragma's key/value view into a
/// structured hint for the knowledge base. `pipeline` maps to a
/// computation-pattern hint targeted at the adaptive compiler, carrying
/// the `pipeline`/`level`/`chunk` keys.
pub fn pipeline_hint(
    kv: impl IntoIterator<Item = (String, String)>,
    priority: u32,
) -> StructuredHint {
    StructuredHint::new(
        HintCategory::ComputationPattern,
        HintTarget::AdaptiveCompiler,
        priority,
        kv,
    )
}

/// Decide how a `forall` nest at `point` should execute. See the module
/// docs for the priority order.
pub fn decide_loop_path(kb: &KnowledgeBase, point: &str, shape: LoopShape) -> LoopPathDecision {
    // 1. Expert/pragma override.
    for h in kb.hints_at(point) {
        if let Some(v) = h.get("pipeline") {
            let on = !matches!(v, "0" | "false" | "off" | "no");
            return LoopPathDecision {
                path: if on {
                    LoopPath::Pipelined
                } else {
                    LoopPath::Naive
                },
                level: h.get("level").and_then(|s| s.parse().ok()),
                chunk: h.get("chunk").and_then(|s| s.parse().ok()),
                reason: DecisionReason::Hint,
            };
        }
    }
    // 2. Measured history: both policies recorded → the faster one wins;
    // one policy recorded → keep exploring the other only while it has no
    // number at all (the continuous compiler's try-everything-once rule).
    let naive = kb.recorded(point, NAIVE_POLICY);
    let piped = kb.recorded(point, PIPELINED_POLICY);
    match (naive, piped) {
        (Some(n), Some(p)) => {
            return LoopPathDecision {
                path: if p <= n {
                    LoopPath::Pipelined
                } else {
                    LoopPath::Naive
                },
                level: None,
                chunk: None,
                reason: DecisionReason::Recorded,
            };
        }
        (Some(_), None) => {
            return LoopPathDecision {
                path: LoopPath::Pipelined,
                level: None,
                chunk: None,
                reason: DecisionReason::Recorded,
            };
        }
        (None, Some(_)) => {
            return LoopPathDecision {
                path: LoopPath::Naive,
                level: None,
                chunk: None,
                reason: DecisionReason::Recorded,
            };
        }
        (None, None) => {}
    }
    // 3. Static heuristic: multi-level nests with enough work per worker
    // amortize group spawns and benefit from level choice; flat or tiny
    // loops stay naive.
    let enough = shape.points >= (shape.workers as u64).saturating_mul(32);
    LoopPathDecision {
        path: if shape.depth >= 2 && enough {
            LoopPath::Pipelined
        } else {
            LoopPath::Naive
        },
        level: None,
        chunk: None,
        reason: DecisionReason::Heuristic,
    }
}

/// Record an observed loop execution (wall time in nanoseconds) under the
/// path's policy name, feeding future [`decide_loop_path`] calls.
pub fn record_loop_outcome(kb: &mut KnowledgeBase, point: &str, path: LoopPath, nanos: u64) {
    let policy = match path {
        LoopPath::Naive => NAIVE_POLICY,
        LoopPath::Pipelined => PIPELINED_POLICY,
    };
    kb.record_outcome(point, policy, nanos);
}

/// What a `forall` actually executed as, one grain finer than
/// [`LoopPath`]: the SSP path may run the interpreted per-point tape or
/// a compiled run-at-a-time kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPathTaken {
    /// The naive flat fan-out (including SSP bail-outs).
    Naive,
    /// SSP-partitioned, interpreted kernel tape.
    SspInterp,
    /// SSP-partitioned, compiled run-at-a-time kernel.
    SspCompiled,
}

impl ExecPathTaken {
    /// Fine-grained knowledge-base policy name.
    pub fn policy(self) -> &'static str {
        match self {
            ExecPathTaken::Naive => NAIVE_POLICY,
            ExecPathTaken::SspInterp => SSP_INTERP_POLICY,
            ExecPathTaken::SspCompiled => SSP_COMPILED_POLICY,
        }
    }

    /// The coarse path this refines.
    pub fn loop_path(self) -> LoopPath {
        match self {
            ExecPathTaken::Naive => LoopPath::Naive,
            ExecPathTaken::SspInterp | ExecPathTaken::SspCompiled => LoopPath::Pipelined,
        }
    }
}

/// Record a fine-grained execution outcome: the wall time lands under
/// both the fine policy name (so reports can compare interpreted vs
/// compiled directly) and the coarse [`LoopPath`] policy that
/// [`decide_loop_path`] reads — a fast compiled run therefore makes the
/// Adaptive strategy prefer the pipelined path at this point from the
/// first observation.
pub fn record_exec_outcome(kb: &mut KnowledgeBase, point: &str, taken: ExecPathTaken, nanos: u64) {
    kb.record_outcome(point, taken.policy(), nanos);
    if taken != ExecPathTaken::Naive {
        // `Naive` already records under NAIVE_POLICY via its fine name.
        record_loop_outcome(kb, point, taken.loop_path(), nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(depth: usize, points: u64, workers: usize) -> LoopShape {
        LoopShape {
            depth,
            points,
            workers,
        }
    }

    #[test]
    fn hint_forces_the_choice_with_knobs() {
        let mut kb = KnowledgeBase::new();
        kb.add_hint(
            "main:i",
            pipeline_hint(
                [
                    ("pipeline".to_string(), "1".to_string()),
                    ("level".to_string(), "1".to_string()),
                    ("chunk".to_string(), "8".to_string()),
                ],
                10,
            ),
        );
        let d = decide_loop_path(&kb, "main:i", shape(1, 4, 2));
        assert_eq!(d.path, LoopPath::Pipelined);
        assert_eq!(d.level, Some(1));
        assert_eq!(d.chunk, Some(8));
        assert_eq!(d.reason, DecisionReason::Hint);
    }

    #[test]
    fn hint_can_force_naive() {
        let mut kb = KnowledgeBase::new();
        kb.add_hint(
            "p",
            pipeline_hint([("pipeline".to_string(), "off".to_string())], 1),
        );
        let d = decide_loop_path(&kb, "p", shape(3, 1 << 20, 4));
        assert_eq!(d.path, LoopPath::Naive);
        assert_eq!(d.reason, DecisionReason::Hint);
    }

    #[test]
    fn recorded_outcomes_beat_the_heuristic() {
        let mut kb = KnowledgeBase::new();
        record_loop_outcome(&mut kb, "p", LoopPath::Naive, 5_000);
        record_loop_outcome(&mut kb, "p", LoopPath::Pipelined, 9_000);
        let d = decide_loop_path(&kb, "p", shape(3, 1 << 20, 4));
        assert_eq!(d.path, LoopPath::Naive, "measured naive was faster");
        assert_eq!(d.reason, DecisionReason::Recorded);
        // Flip the measurements: the decision flips.
        record_loop_outcome(&mut kb, "p", LoopPath::Pipelined, 1_000);
        let d = decide_loop_path(&kb, "p", shape(3, 1 << 20, 4));
        assert_eq!(d.path, LoopPath::Pipelined);
    }

    #[test]
    fn one_sided_history_explores_the_other_path() {
        let mut kb = KnowledgeBase::new();
        record_loop_outcome(&mut kb, "p", LoopPath::Naive, 5_000);
        let d = decide_loop_path(&kb, "p", shape(1, 8, 4));
        assert_eq!(d.path, LoopPath::Pipelined, "pipelined not yet measured");
        record_loop_outcome(&mut kb, "p", LoopPath::Pipelined, 9_999);
        let d = decide_loop_path(&kb, "p", shape(1, 8, 4));
        assert_eq!(d.path, LoopPath::Naive, "now both measured: naive wins");
    }

    #[test]
    fn heuristic_pipelines_deep_big_nests_only() {
        let kb = KnowledgeBase::new();
        assert_eq!(
            decide_loop_path(&kb, "p", shape(3, 64 * 64, 4)).path,
            LoopPath::Pipelined
        );
        assert_eq!(
            decide_loop_path(&kb, "p", shape(1, 64 * 64, 4)).path,
            LoopPath::Naive,
            "flat loops stay naive"
        );
        assert_eq!(
            decide_loop_path(&kb, "p", shape(3, 16, 4)).path,
            LoopPath::Naive,
            "tiny nests stay naive"
        );
    }

    #[test]
    fn compiled_outcome_feeds_the_coarse_decision() {
        let mut kb = KnowledgeBase::new();
        record_exec_outcome(&mut kb, "p", ExecPathTaken::Naive, 9_000);
        record_exec_outcome(&mut kb, "p", ExecPathTaken::SspCompiled, 1_000);
        // Recorded under the fine name for reports…
        assert!(kb.recorded("p", SSP_COMPILED_POLICY).is_some());
        // …and under the coarse pair, so the decision prefers pipelined.
        let d = decide_loop_path(&kb, "p", shape(1, 8, 4));
        assert_eq!(d.path, LoopPath::Pipelined);
        assert_eq!(d.reason, DecisionReason::Recorded);
    }

    #[test]
    fn exec_path_maps_to_policies_and_coarse_paths() {
        assert_eq!(ExecPathTaken::Naive.policy(), NAIVE_POLICY);
        assert_eq!(ExecPathTaken::SspInterp.policy(), SSP_INTERP_POLICY);
        assert_eq!(ExecPathTaken::SspCompiled.policy(), SSP_COMPILED_POLICY);
        assert_eq!(ExecPathTaken::SspInterp.loop_path(), LoopPath::Pipelined);
        assert_eq!(ExecPathTaken::Naive.loop_path(), LoopPath::Naive);
    }

    #[test]
    fn outcomes_persist_through_the_text_format() {
        let mut kb = KnowledgeBase::new();
        record_loop_outcome(&mut kb, "p", LoopPath::Pipelined, 123);
        record_loop_outcome(&mut kb, "p", LoopPath::Naive, 456);
        let back = KnowledgeBase::from_text(&kb.to_text().unwrap()).unwrap();
        let d = decide_loop_path(&back, "p", shape(1, 1, 1));
        assert_eq!(d.path, LoopPath::Pipelined);
        assert_eq!(d.reason, DecisionReason::Recorded);
    }
}
