//! Runtime performance monitoring (§4.2).
//!
//! "The adaptive compile and runtime system will require feedback derived
//! from the execution and resource allocation monitoring." The [`Monitor`]
//! is a registry of named [`Metric`]s fed by the runtime (or by the
//! simulator's `Stats`), sampled on a configurable period. Sampling is
//! deliberately cheap — counters are atomics — and its *cost is itself
//! accounted*, so experiment E13 can report monitoring overhead vs.
//! sampling period, and the hint schema can direct "monitoring priorities"
//! (§4.1) by enabling only the metrics a hint asks for.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A named monotonic counter with derived-rate support.
#[derive(Debug, Default)]
pub struct Metric {
    value: AtomicU64,
}

impl Metric {
    /// Add to the counter (called from hot paths — one atomic add).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Cycles (or any time unit) between samples.
    pub period: u64,
    /// Cost charged per sample taken (models the probe effect).
    pub sample_cost: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            period: 10_000,
            sample_cost: 200,
        }
    }
}

/// One sample row: time plus every enabled metric's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Sample timestamp.
    pub at: u64,
    /// Metric values at the timestamp.
    pub values: BTreeMap<String, u64>,
}

/// The monitor: metric registry + sampler + overhead accounting.
pub struct Monitor {
    cfg: MonitorConfig,
    metrics: Mutex<BTreeMap<String, Arc<Metric>>>,
    enabled: Mutex<Option<Vec<String>>>,
    samples: Mutex<Vec<Sample>>,
    last_sample_at: AtomicU64,
    overhead: AtomicU64,
}

impl Monitor {
    /// A monitor with the given sampling parameters.
    pub fn new(cfg: MonitorConfig) -> Self {
        Self {
            cfg,
            metrics: Mutex::new(BTreeMap::new()),
            enabled: Mutex::new(None),
            samples: Mutex::new(Vec::new()),
            last_sample_at: AtomicU64::new(0),
            overhead: AtomicU64::new(0),
        }
    }

    /// Register (or fetch) a metric by name.
    pub fn metric(&self, name: &str) -> Arc<Metric> {
        self.metrics
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Metric::default()))
            .clone()
    }

    /// Restrict sampling to the given metrics ("monitoring priorities" from
    /// structured hints). `None` = everything.
    pub fn set_priorities(&self, names: Option<Vec<String>>) {
        *self.enabled.lock() = names;
    }

    /// Called by the runtime at time `now`; takes a sample if the period
    /// elapsed. Returns the sample if one was taken.
    pub fn tick(&self, now: u64) -> Option<Sample> {
        let last = self.last_sample_at.load(Ordering::Relaxed);
        if now < last + self.cfg.period {
            return None;
        }
        if self
            .last_sample_at
            .compare_exchange(last, now, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return None; // another thread sampled concurrently
        }
        self.overhead
            .fetch_add(self.cfg.sample_cost, Ordering::Relaxed);
        let enabled = self.enabled.lock().clone();
        let metrics = self.metrics.lock();
        let values: BTreeMap<String, u64> = metrics
            .iter()
            .filter(|(name, _)| {
                enabled
                    .as_ref()
                    .is_none_or(|set| set.iter().any(|n| n == *name))
            })
            .map(|(name, m)| (name.clone(), m.get()))
            .collect();
        let s = Sample { at: now, values };
        self.samples.lock().push(s.clone());
        Some(s)
    }

    /// All samples so far.
    pub fn samples(&self) -> Vec<Sample> {
        self.samples.lock().clone()
    }

    /// Total probe-effect cycles charged.
    pub fn overhead(&self) -> u64 {
        self.overhead.load(Ordering::Relaxed)
    }

    /// Rate of a metric between the first and last sample (per time unit).
    pub fn rate(&self, name: &str) -> Option<f64> {
        let samples = self.samples.lock();
        let first = samples.iter().find(|s| s.values.contains_key(name))?;
        let last = samples.iter().rev().find(|s| s.values.contains_key(name))?;
        if last.at <= first.at {
            return None;
        }
        let dv = last.values[name].saturating_sub(first.values[name]) as f64;
        Some(dv / (last.at - first.at) as f64)
    }

    /// Overhead as a fraction of `elapsed` run time.
    pub fn overhead_fraction(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.overhead() as f64 / elapsed as f64
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("period", &self.cfg.period)
            .field("samples", &self.samples.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Monitor::new(MonitorConfig::default());
        let c = m.metric("loads");
        c.add(5);
        c.add(7);
        assert_eq!(m.metric("loads").get(), 12);
    }

    #[test]
    fn sampling_respects_period() {
        let m = Monitor::new(MonitorConfig {
            period: 100,
            sample_cost: 10,
        });
        m.metric("x").add(1);
        assert!(m.tick(100).is_some());
        assert!(m.tick(150).is_none(), "period not yet elapsed");
        assert!(m.tick(200).is_some());
        assert_eq!(m.samples().len(), 2);
        assert_eq!(m.overhead(), 20);
    }

    #[test]
    fn shorter_period_more_overhead() {
        let run = |period| {
            let m = Monitor::new(MonitorConfig {
                period,
                sample_cost: 10,
            });
            for t in (0..100_000).step_by(100) {
                m.tick(t);
            }
            m.overhead()
        };
        assert!(run(100) > run(1_000));
        assert!(run(1_000) > run(10_000));
    }

    #[test]
    fn priorities_filter_samples() {
        let m = Monitor::new(MonitorConfig {
            period: 1,
            sample_cost: 0,
        });
        m.metric("hot").add(1);
        m.metric("cold").add(1);
        m.set_priorities(Some(vec!["hot".to_string()]));
        let s = m.tick(10).unwrap();
        assert!(s.values.contains_key("hot"));
        assert!(!s.values.contains_key("cold"));
    }

    #[test]
    fn rate_computation() {
        let m = Monitor::new(MonitorConfig {
            period: 100,
            sample_cost: 0,
        });
        let c = m.metric("ops");
        c.add(100);
        m.tick(100);
        c.add(300);
        m.tick(200);
        let r = m.rate("ops").unwrap();
        assert!((r - 3.0).abs() < 1e-9, "300 ops over 100 units: {r}");
    }

    #[test]
    fn overhead_fraction_scales() {
        let m = Monitor::new(MonitorConfig {
            period: 10,
            sample_cost: 5,
        });
        for t in (0..1_000).step_by(10) {
            m.tick(t);
        }
        let f = m.overhead_fraction(1_000);
        assert!(f > 0.1 && f < 1.0, "fraction {f}");
    }
}
