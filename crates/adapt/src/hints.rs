//! Structured hints and the Program/Execution Knowledge Database (§4.1).
//!
//! "We plan to define and implement a system of structured hints to capture
//! and apply the combined expertise of the domain specialist and the
//! compiler. … the hints must address, in a general way, issues of:
//! 1) data locality, 2) monitoring priorities, 3) data access patterns, and
//! 4) computation patterns."
//!
//! A [`StructuredHint`] is data, not prose: a category (the four above), a
//! target component (adaptive compiler / runtime / monitor — "each hint can
//! be expressly targeted at some part of the execution model"), a priority,
//! and key/value payload. The [`KnowledgeBase`] maps program points
//! (function / loop names) to hint sets and answers the one question the
//! continuous compiler asks: *which candidate policies survive the hints?*

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::loop_sched::ScheduleKind;

/// The four hint categories mandated by §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HintCategory {
    /// Where data should live / move.
    DataLocality,
    /// What the monitor should watch.
    MonitoringPriority,
    /// How data is accessed (stride, reuse, sharing).
    AccessPattern,
    /// The shape of the computation (regular/irregular, cost variance).
    ComputationPattern,
}

/// The execution-model component a hint addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HintTarget {
    /// The adaptive (dynamic) compiler.
    AdaptiveCompiler,
    /// The runtime system.
    Runtime,
    /// The monitoring system.
    Monitor,
}

/// One structured hint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuredHint {
    /// Category (the four paper-mandated classes).
    pub category: HintCategory,
    /// Component the hint targets.
    pub target: HintTarget,
    /// Priority: higher wins on conflict.
    pub priority: u32,
    /// Free-form key/value payload (e.g. `cost_variance = "high"`,
    /// `schedule = "guided"`, `watch = "remote_accesses"`).
    pub kv: BTreeMap<String, String>,
}

impl StructuredHint {
    /// Construct from key/value pairs (e.g. lowered from a LITL-X
    /// `@hint(...)` pragma).
    pub fn new(
        category: HintCategory,
        target: HintTarget,
        priority: u32,
        kv: impl IntoIterator<Item = (String, String)>,
    ) -> Self {
        Self {
            category,
            target,
            priority,
            kv: kv.into_iter().collect(),
        }
    }

    /// Value of a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }
}

/// The knowledge base: program point → hints, plus recorded outcomes
/// ("an integrated part of our Program/Execution Knowledge Database").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    hints: BTreeMap<String, Vec<StructuredHint>>,
    /// Measured makespans per (point, policy-name) — the execution side of
    /// the database, fed back by the continuous compiler.
    outcomes: BTreeMap<(String, String), u64>,
}

impl KnowledgeBase {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a hint to a program point (loop/function name).
    pub fn add_hint(&mut self, point: &str, hint: StructuredHint) {
        self.hints.entry(point.to_string()).or_default().push(hint);
    }

    /// Hints at a point, highest priority first.
    pub fn hints_at(&self, point: &str) -> Vec<&StructuredHint> {
        let mut v: Vec<&StructuredHint> = self
            .hints
            .get(point)
            .map(|h| h.iter().collect())
            .unwrap_or_default();
        v.sort_by_key(|h| std::cmp::Reverse(h.priority));
        v
    }

    /// Record a measured outcome.
    pub fn record_outcome(&mut self, point: &str, policy: &str, makespan: u64) {
        self.outcomes
            .insert((point.to_string(), policy.to_string()), makespan);
    }

    /// Recorded makespan of one specific policy at a point.
    pub fn recorded(&self, point: &str, policy: &str) -> Option<u64> {
        self.outcomes
            .get(&(point.to_string(), policy.to_string()))
            .copied()
    }

    /// Best recorded policy at a point.
    pub fn best_recorded(&self, point: &str) -> Option<(&str, u64)> {
        self.outcomes
            .iter()
            .filter(|((p, _), _)| p == point)
            .min_by_key(|(_, &m)| m)
            .map(|((_, pol), &m)| (pol.as_str(), m))
    }

    /// The §4.1 pruning step: reduce a loop-scheduling policy portfolio to
    /// the candidates consistent with the hints at `point`.
    ///
    /// Interpretation of well-known keys (computation-pattern hints):
    /// * `cost_variance = "none"` → static policies suffice;
    /// * `cost_variance = "high"` → drop static policies; keep
    ///   fine-grained dynamic ones (self-sched small chunks, factoring);
    /// * `cost_trend = "monotonic"` → guided/trapezoid favoured (their
    ///   decreasing chunks match a decreasing tail);
    /// * `schedule = <name>` → exactly that policy (expert override).
    pub fn prune_schedules(&self, point: &str, portfolio: &[ScheduleKind]) -> Vec<ScheduleKind> {
        let hints = self.hints_at(point);
        let mut out: Vec<ScheduleKind> = portfolio.to_vec();
        for h in hints {
            if let Some(name) = h.get("schedule") {
                let exact: Vec<ScheduleKind> = portfolio
                    .iter()
                    .copied()
                    .filter(|k| k.name().starts_with(name))
                    .collect();
                if !exact.is_empty() {
                    return exact;
                }
            }
            match h.get("cost_variance") {
                Some("none") => {
                    out.retain(|k| {
                        matches!(k, ScheduleKind::StaticBlock | ScheduleKind::StaticCyclic)
                    });
                }
                Some("high") => {
                    out.retain(|k| {
                        matches!(
                            k,
                            ScheduleKind::SelfSched(_)
                                | ScheduleKind::Factoring
                                | ScheduleKind::Guided
                                | ScheduleKind::Trapezoid
                                | ScheduleKind::Affinity
                        )
                    });
                }
                _ => {}
            }
            if h.get("cost_trend") == Some("monotonic") {
                out.retain(|k| {
                    matches!(
                        k,
                        ScheduleKind::Guided | ScheduleKind::Trapezoid | ScheduleKind::Factoring
                    )
                });
            }
        }
        if out.is_empty() {
            // Hints must narrow, never wedge: fall back to the portfolio.
            portfolio.to_vec()
        } else {
            out
        }
    }

    /// Locality-domain affinity at a point: the `home_domain` carried by
    /// the highest-priority `DataLocality` hint aimed at the runtime
    /// (emitted by [`crate::locality::affinity_hints`] from observed steal
    /// traffic, or written by a domain expert). The runtime applies it by
    /// invoking the point's LGT with `Htvm::lgt_in(DomainId(d), …)`.
    ///
    /// `num_domains` is the *current* pool's domain count: hints recorded
    /// under a different topology (their `num_domains` fingerprint
    /// disagrees) or naming an out-of-range domain are skipped — a stale
    /// persisted hint must degrade to "no preference", never panic the
    /// spawn or pin the subtree somewhere semantically unrelated.
    pub fn home_domain(&self, point: &str, num_domains: usize) -> Option<u64> {
        self.hints_at(point)
            .iter()
            .filter(|h| h.category == HintCategory::DataLocality && h.target == HintTarget::Runtime)
            .filter(|h| match h.get("num_domains") {
                Some(n) => n.parse() == Ok(num_domains),
                None => true, // hand-written hints may omit the fingerprint
            })
            .find_map(|h| {
                h.get("home_domain")
                    .and_then(|v| v.parse().ok())
                    .filter(|&d: &u64| (d as usize) < num_domains)
            })
    }

    /// Monitoring priorities at a point (keys of `watch = …` hints aimed at
    /// the monitor).
    pub fn monitor_priorities(&self, point: &str) -> Vec<String> {
        self.hints_at(point)
            .iter()
            .filter(|h| h.target == HintTarget::Monitor)
            .filter_map(|h| h.get("watch").map(str::to_string))
            .collect()
    }

    /// Serialize to a line-oriented text format, so the knowledge database
    /// persists *across executions* — the paper's database is "an
    /// integrated part" of the system, not per-run scratch. The format is
    /// one record per line:
    ///
    /// ```text
    /// hint <TAB> point <TAB> category <TAB> target <TAB> priority <TAB> k=v;k=v
    /// outcome <TAB> point <TAB> policy <TAB> makespan
    /// ```
    ///
    /// Returns an error if any key/value contains a delimiter character
    /// (tab, newline, `;`, `=`), rather than producing ambiguous output.
    pub fn to_text(&self) -> Result<String, String> {
        let check = |s: &str| -> Result<(), String> {
            if s.contains(['\t', '\n', ';', '=']) {
                Err(format!("unserializable token `{s}` (contains a delimiter)"))
            } else {
                Ok(())
            }
        };
        let mut out = String::new();
        for (point, hints) in &self.hints {
            check(point)?;
            for h in hints {
                let kv =
                    h.kv.iter()
                        .map(|(k, v)| {
                            check(k)?;
                            check(v)?;
                            Ok(format!("{k}={v}"))
                        })
                        .collect::<Result<Vec<_>, String>>()?
                        .join(";");
                out.push_str(&format!(
                    "hint\t{point}\t{:?}\t{:?}\t{}\t{kv}\n",
                    h.category, h.target, h.priority
                ));
            }
        }
        for ((point, policy), makespan) in &self.outcomes {
            check(point)?;
            check(policy)?;
            out.push_str(&format!("outcome\t{point}\t{policy}\t{makespan}\n"));
        }
        Ok(out)
    }

    /// Parse the [`KnowledgeBase::to_text`] format. Unknown line kinds or
    /// malformed records are errors (a corrupt database must not be
    /// silently half-loaded).
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut kb = Self::new();
        for (no, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.as_slice() {
                ["hint", point, category, target, priority, kv] => {
                    let category = match *category {
                        "DataLocality" => HintCategory::DataLocality,
                        "MonitoringPriority" => HintCategory::MonitoringPriority,
                        "AccessPattern" => HintCategory::AccessPattern,
                        "ComputationPattern" => HintCategory::ComputationPattern,
                        other => return Err(format!("line {}: bad category `{other}`", no + 1)),
                    };
                    let target = match *target {
                        "AdaptiveCompiler" => HintTarget::AdaptiveCompiler,
                        "Runtime" => HintTarget::Runtime,
                        "Monitor" => HintTarget::Monitor,
                        other => return Err(format!("line {}: bad target `{other}`", no + 1)),
                    };
                    let priority: u32 = priority
                        .parse()
                        .map_err(|_| format!("line {}: bad priority `{priority}`", no + 1))?;
                    let kv = kv
                        .split(';')
                        .filter(|p| !p.is_empty())
                        .map(|pair| {
                            pair.split_once('=')
                                .map(|(k, v)| (k.to_string(), v.to_string()))
                                .ok_or_else(|| format!("line {}: bad pair `{pair}`", no + 1))
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    kb.add_hint(point, StructuredHint::new(category, target, priority, kv));
                }
                ["outcome", point, policy, makespan] => {
                    let m: u64 = makespan
                        .parse()
                        .map_err(|_| format!("line {}: bad makespan `{makespan}`", no + 1))?;
                    kb.record_outcome(point, policy, m);
                }
                _ => return Err(format!("line {}: unrecognized record", no + 1)),
            }
        }
        Ok(kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb_with(point: &str, kv: &[(&str, &str)], category: HintCategory) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.add_hint(
            point,
            StructuredHint::new(
                category,
                HintTarget::AdaptiveCompiler,
                10,
                kv.iter().map(|(k, v)| (k.to_string(), v.to_string())),
            ),
        );
        kb
    }

    #[test]
    fn no_hints_keeps_portfolio() {
        let kb = KnowledgeBase::new();
        let pruned = kb.prune_schedules("loop1", &ScheduleKind::PORTFOLIO);
        assert_eq!(pruned.len(), ScheduleKind::PORTFOLIO.len());
    }

    #[test]
    fn high_variance_drops_static() {
        let kb = kb_with(
            "loop1",
            &[("cost_variance", "high")],
            HintCategory::ComputationPattern,
        );
        let pruned = kb.prune_schedules("loop1", &ScheduleKind::PORTFOLIO);
        assert!(!pruned.contains(&ScheduleKind::StaticBlock));
        assert!(!pruned.contains(&ScheduleKind::StaticCyclic));
        assert!(!pruned.is_empty());
    }

    #[test]
    fn no_variance_keeps_only_static() {
        let kb = kb_with(
            "loop1",
            &[("cost_variance", "none")],
            HintCategory::ComputationPattern,
        );
        let pruned = kb.prune_schedules("loop1", &ScheduleKind::PORTFOLIO);
        assert_eq!(
            pruned,
            vec![ScheduleKind::StaticBlock, ScheduleKind::StaticCyclic]
        );
    }

    #[test]
    fn expert_override_selects_exactly() {
        let kb = kb_with(
            "loop1",
            &[("schedule", "guided")],
            HintCategory::ComputationPattern,
        );
        let pruned = kb.prune_schedules("loop1", &ScheduleKind::PORTFOLIO);
        assert_eq!(pruned, vec![ScheduleKind::Guided]);
    }

    #[test]
    fn contradictory_hints_fall_back_to_portfolio() {
        let mut kb = kb_with(
            "loop1",
            &[("cost_variance", "none")],
            HintCategory::ComputationPattern,
        );
        kb.add_hint(
            "loop1",
            StructuredHint::new(
                HintCategory::ComputationPattern,
                HintTarget::AdaptiveCompiler,
                5,
                [("cost_trend".to_string(), "monotonic".to_string())],
            ),
        );
        // none → static only; monotonic → guided/trapezoid/factoring only:
        // intersection empty → full portfolio (hints never wedge).
        let pruned = kb.prune_schedules("loop1", &ScheduleKind::PORTFOLIO);
        assert_eq!(pruned.len(), ScheduleKind::PORTFOLIO.len());
    }

    #[test]
    fn priority_orders_hints() {
        let mut kb = KnowledgeBase::new();
        kb.add_hint(
            "p",
            StructuredHint::new(HintCategory::DataLocality, HintTarget::Runtime, 1, []),
        );
        kb.add_hint(
            "p",
            StructuredHint::new(HintCategory::DataLocality, HintTarget::Runtime, 9, []),
        );
        let hs = kb.hints_at("p");
        assert_eq!(hs[0].priority, 9);
    }

    #[test]
    fn outcomes_feed_back() {
        let mut kb = KnowledgeBase::new();
        kb.record_outcome("loop1", "guided", 1_000);
        kb.record_outcome("loop1", "static-block", 1_500);
        let (best, m) = kb.best_recorded("loop1").unwrap();
        assert_eq!(best, "guided");
        assert_eq!(m, 1_000);
        assert!(kb.best_recorded("other").is_none());
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let mut kb = KnowledgeBase::new();
        kb.add_hint(
            "loop1",
            StructuredHint::new(
                HintCategory::ComputationPattern,
                HintTarget::AdaptiveCompiler,
                10,
                [("cost_trend".to_string(), "monotonic".to_string())],
            ),
        );
        kb.add_hint(
            "loop2",
            StructuredHint::new(HintCategory::DataLocality, HintTarget::Runtime, 3, []),
        );
        kb.record_outcome("loop1", "trapezoid", 12_802);
        kb.record_outcome("loop1", "static-block", 24_205);

        let text = kb.to_text().unwrap();
        let back = KnowledgeBase::from_text(&text).unwrap();
        assert_eq!(back.hints_at("loop1").len(), 1);
        assert_eq!(
            back.hints_at("loop1")[0].get("cost_trend"),
            Some("monotonic")
        );
        assert_eq!(back.hints_at("loop2")[0].priority, 3);
        assert_eq!(back.best_recorded("loop1"), Some(("trapezoid", 12_802)));
        // Round-tripping again is a fixed point.
        assert_eq!(back.to_text().unwrap(), text);
    }

    #[test]
    fn loaded_outcomes_short_circuit_search() {
        use crate::continuous::{ContinuousCompiler, PartialSchedule};
        use crate::loop_sched::{CostModel, IterationCosts};
        // First process: search and persist.
        let costs = IterationCosts::Decreasing.generate(400, 100, 3);
        let mut first = ContinuousCompiler::new();
        let out1 = first.complete(
            &PartialSchedule::full("k"),
            &costs,
            8,
            &CostModel::default(),
        );
        assert!(out1.trials > 0);
        let saved = first.kb.to_text().unwrap();
        // Second process: load the database; no trials needed.
        let mut second = ContinuousCompiler {
            kb: KnowledgeBase::from_text(&saved).unwrap(),
        };
        let out2 = second.complete(
            &PartialSchedule::full("k"),
            &costs,
            8,
            &CostModel::default(),
        );
        assert_eq!(out2.trials, 0, "persisted knowledge must be reused");
        assert_eq!(out2.policy, out1.policy);
    }

    #[test]
    fn corrupt_text_is_rejected() {
        assert!(KnowledgeBase::from_text("garbage\tline").is_err());
        assert!(KnowledgeBase::from_text("hint\tp\tNope\tRuntime\t1\t").is_err());
        assert!(KnowledgeBase::from_text("outcome\tp\tpolicy\tNaN").is_err());
        // Empty and blank-line input is fine.
        assert!(KnowledgeBase::from_text("\n\n").is_ok());
    }

    #[test]
    fn delimiters_in_keys_are_unserializable() {
        let mut kb = KnowledgeBase::new();
        kb.add_hint(
            "p",
            StructuredHint::new(
                HintCategory::AccessPattern,
                HintTarget::Runtime,
                1,
                [("bad;key".to_string(), "v".to_string())],
            ),
        );
        assert!(kb.to_text().is_err());
    }

    #[test]
    fn home_domain_reads_highest_priority_locality_hint() {
        let mut kb = KnowledgeBase::new();
        assert_eq!(kb.home_domain("main", 4), None);
        kb.add_hint(
            "main",
            StructuredHint::new(
                HintCategory::DataLocality,
                HintTarget::Runtime,
                3,
                [("home_domain".to_string(), "0".to_string())],
            ),
        );
        kb.add_hint(
            "main",
            StructuredHint::new(
                HintCategory::DataLocality,
                HintTarget::Runtime,
                9,
                [("home_domain".to_string(), "2".to_string())],
            ),
        );
        // A locality hint aimed elsewhere must not shadow the runtime one.
        kb.add_hint(
            "main",
            StructuredHint::new(
                HintCategory::DataLocality,
                HintTarget::Monitor,
                99,
                [("home_domain".to_string(), "7".to_string())],
            ),
        );
        assert_eq!(kb.home_domain("main", 4), Some(2));
        assert_eq!(kb.home_domain("other", 4), None);
        // An out-of-range index falls through to the next valid hint.
        assert_eq!(kb.home_domain("main", 2), Some(0));
        assert_eq!(kb.home_domain("main", 1), Some(0));
    }

    #[test]
    fn home_domain_rejects_stale_topology_fingerprints() {
        use crate::locality::{affinity_hints, AffinityThresholds, DomainTraffic};
        // Observed under a flat(8)-style topology: 8 singleton domains,
        // busiest is domain 7.
        let mut executed = vec![10u64; 8];
        executed[7] = 500;
        let traffic = DomainTraffic::new(executed, vec![0; 8], {
            let mut r = vec![0u64; 8];
            r[7] = 40;
            r
        });
        let mut kb = KnowledgeBase::new();
        for h in affinity_hints(&traffic, &AffinityThresholds::default()) {
            kb.add_hint("main", h);
        }
        // Same topology: the hint applies.
        assert_eq!(kb.home_domain("main", 8), Some(7));
        // Re-run under a 2-domain pool: dom7 is meaningless there — the
        // stale hint must degrade to "no preference", not panic lgt_in.
        assert_eq!(kb.home_domain("main", 2), None);
    }

    #[test]
    fn steal_traffic_round_trips_into_the_knowledge_base() {
        use crate::locality::{affinity_hints, AffinityThresholds, DomainTraffic};
        // A flat-topology run: every steal is remote → the hint system
        // proposes pinning the subtree to the busiest domain.
        let traffic = DomainTraffic::new(vec![30, 400, 20], vec![0, 0, 0], vec![25, 3, 12]);
        let mut kb = KnowledgeBase::new();
        for h in affinity_hints(&traffic, &AffinityThresholds::default()) {
            kb.add_hint("md_force_pass", h);
        }
        assert_eq!(kb.home_domain("md_force_pass", 3), Some(1));
        assert_eq!(
            kb.monitor_priorities("md_force_pass"),
            vec!["remote_steals"]
        );
        // And it survives persistence like every other hint.
        let back = KnowledgeBase::from_text(&kb.to_text().unwrap()).unwrap();
        assert_eq!(back.home_domain("md_force_pass", 3), Some(1));
    }

    #[test]
    fn monitor_priorities_extracted() {
        let mut kb = KnowledgeBase::new();
        kb.add_hint(
            "p",
            StructuredHint::new(
                HintCategory::MonitoringPriority,
                HintTarget::Monitor,
                5,
                [("watch".to_string(), "remote_accesses".to_string())],
            ),
        );
        kb.add_hint(
            "p",
            StructuredHint::new(
                HintCategory::AccessPattern,
                HintTarget::Runtime,
                5,
                [("watch".to_string(), "ignored".to_string())],
            ),
        );
        assert_eq!(kb.monitor_priorities("p"), vec!["remote_accesses"]);
    }
}
