//! Latency adaptation (§2): "the memory access latencies vary … depending
//! on the locality of references, the number of concurrent accesses, and
//! the available memory bandwidth. The system needs \[to\] dynamically adapt
//! to such variations."
//!
//! Two pieces:
//!
//! * [`EwmaLatency`] — the runtime's latency estimator (exponentially
//!   weighted moving average over observed access latencies, as reported by
//!   the monitor);
//! * [`AdaptiveConcurrency`] — a hill-climbing controller that adjusts the
//!   number of outstanding requests (hardware threads / percolation depth)
//!   toward the latency-bandwidth product: concurrency ≈ latency / service
//!   interval, clamped to the machine's slots. Experiment E11 drives it
//!   against the simulator while the DRAM latency drifts.

/// Exponentially weighted moving average latency estimator.
#[derive(Debug, Clone)]
pub struct EwmaLatency {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaLatency {
    /// `alpha` ∈ (0,1]: weight of each new observation.
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha: alpha.clamp(1e-6, 1.0),
            value: None,
        }
    }

    /// Record an observed latency.
    pub fn observe(&mut self, latency: f64) {
        self.value = Some(match self.value {
            None => latency,
            Some(v) => v + self.alpha * (latency - v),
        });
    }

    /// Current estimate (None before any observation).
    pub fn estimate(&self) -> Option<f64> {
        self.value
    }
}

/// Hill-climbing concurrency controller.
///
/// The control target follows Little's law: to keep a unit busy despite an
/// access latency `L` and per-request service interval `s`, about `L / s`
/// requests must be in flight. The controller recomputes that target from
/// the EWMA estimate each epoch and moves one step toward it (bounded
/// step so that noisy estimates don't thrash the runtime).
#[derive(Debug, Clone)]
pub struct AdaptiveConcurrency {
    ewma: EwmaLatency,
    /// Cycles of useful work issued between two consecutive long-latency
    /// requests of one thread (the "s" of Little's law).
    pub service_interval: f64,
    /// Current concurrency setting.
    pub concurrency: u32,
    /// Inclusive bounds (1 ..= machine slots).
    pub max_concurrency: u32,
}

impl AdaptiveConcurrency {
    /// Start at `initial` concurrency with bound `max`.
    pub fn new(initial: u32, max: u32, service_interval: f64, alpha: f64) -> Self {
        Self {
            ewma: EwmaLatency::new(alpha),
            service_interval: service_interval.max(1.0),
            concurrency: initial.clamp(1, max.max(1)),
            max_concurrency: max.max(1),
        }
    }

    /// Feed one epoch's mean observed latency; returns the (possibly
    /// updated) concurrency to use next epoch.
    pub fn epoch(&mut self, observed_latency: f64) -> u32 {
        self.ewma.observe(observed_latency);
        let est = self.ewma.estimate().unwrap_or(observed_latency);
        let target = (est / self.service_interval).ceil() as i64;
        let target = target.clamp(1, self.max_concurrency as i64) as u32;
        // One step per epoch toward the target.
        self.concurrency = match self.concurrency.cmp(&target) {
            std::cmp::Ordering::Less => self.concurrency + 1,
            std::cmp::Ordering::Greater => self.concurrency - 1,
            std::cmp::Ordering::Equal => self.concurrency,
        };
        self.concurrency
    }

    /// Current latency estimate.
    pub fn latency_estimate(&self) -> Option<f64> {
        self.ewma.estimate()
    }
}

/// Modelled throughput (fraction of peak) of a unit with `c`-way
/// multithreading under latency `l` and service interval `s`: the classic
/// saturation curve `min(1, c·s / (s + l))`.
///
/// The experiments use this closed form to cross-check simulator results.
pub fn expected_utilization(c: u32, latency: f64, service: f64) -> f64 {
    let c = c.max(1) as f64;
    (c * service / (service + latency.max(0.0))).min(1.0)
}

/// Contention-aware utilization model for E11.
///
/// [`expected_utilization`] is monotone in `c`: more threads never hurt, so
/// a fixed maximal setting would trivially dominate and there would be
/// nothing to adapt. On a real C64-class chip concurrent threads *compete*
/// — "depending on the locality of references, the number of concurrent
/// accesses, and the available memory bandwidth" (§2) — because they share
/// the on-chip SRAM: each extra resident context shrinks every thread's
/// effective cache share, lowering the hit rate, which both lengthens the
/// average access and burns more of the finite DRAM bandwidth. The result
/// is an *interior* optimum concurrency that moves with the DRAM latency,
/// which is exactly what latency adaptation must track.
#[derive(Debug, Clone)]
pub struct ContentionModel {
    /// Compute cycles a thread issues between two misses-or-hits.
    pub service: f64,
    /// Latency of an on-chip hit.
    pub hit_latency: f64,
    /// DRAM channel occupancy per miss (inverse bandwidth).
    pub miss_occupancy: f64,
    /// Hit rate of a single resident thread.
    pub base_hit_rate: f64,
    /// Hit-rate loss per additional resident thread (cache pressure).
    pub hit_decay: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        Self {
            service: 50.0,
            hit_latency: 20.0,
            miss_occupancy: 150.0,
            base_hit_rate: 0.95,
            hit_decay: 0.06,
        }
    }
}

impl ContentionModel {
    /// Effective hit rate with `c` resident threads.
    pub fn hit_rate(&self, c: u32) -> f64 {
        (self.base_hit_rate - self.hit_decay * (c.max(1) - 1) as f64).clamp(0.05, 1.0)
    }

    /// Fraction of peak issue rate achieved with `c`-way multithreading
    /// while a DRAM miss costs `dram_latency` cycles: the lesser of the
    /// pipeline-overlap bound (more threads hide more latency) and the
    /// bandwidth bound (more threads miss more, and misses serialize on the
    /// DRAM channels).
    pub fn utilization(&self, c: u32, dram_latency: f64) -> f64 {
        let cf = c.max(1) as f64;
        let h = self.hit_rate(c);
        let avg_latency = h * self.hit_latency + (1.0 - h) * dram_latency.max(0.0);
        let pipeline = cf * self.service / (self.service + avg_latency);
        let bandwidth = self.service / ((1.0 - h).max(1e-9) * self.miss_occupancy);
        pipeline.min(bandwidth).min(1.0)
    }

    /// Brute-force best fixed concurrency for a given latency (oracle used
    /// by tests and the experiment's "best fixed" reference).
    pub fn best_concurrency(&self, dram_latency: f64, max_c: u32) -> (u32, f64) {
        (1..=max_c.max(1))
            .map(|c| (c, self.utilization(c, dram_latency)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
    }
}

/// Measurement-driven concurrency controller: pure hill climbing on the
/// *observed* utilization, no model knowledge. Each epoch it moves one step
/// in its current direction; when utilization declines it reverses. This is
/// the runtime-adaptation half of E11 — contrast with the Little's-law
/// target controller ([`AdaptiveConcurrency`]), which over-subscribes badly
/// once bandwidth contention matters because it only sees latency.
#[derive(Debug, Clone)]
pub struct HillClimber {
    /// Current concurrency setting.
    pub concurrency: u32,
    /// Inclusive upper bound (machine slots).
    pub max_concurrency: u32,
    dir: i32,
    last_util: Option<f64>,
    /// Utilization change below this magnitude counts as "flat".
    tol: f64,
}

impl HillClimber {
    /// Start at `initial`, bounded by `max`.
    pub fn new(initial: u32, max: u32) -> Self {
        Self {
            concurrency: initial.clamp(1, max.max(1)),
            max_concurrency: max.max(1),
            dir: 1,
            last_util: None,
            tol: 1e-3,
        }
    }

    /// Feed the utilization observed at the *current* setting; returns the
    /// setting for the next epoch.
    pub fn epoch(&mut self, observed_util: f64) -> u32 {
        if let Some(prev) = self.last_util {
            if observed_util < prev - self.tol {
                self.dir = -self.dir;
            }
            // Improving or flat: keep drifting in the current direction —
            // drifting across a plateau is harmless and finds its edges.
        }
        self.last_util = Some(observed_util);
        let next = self.concurrency as i64 + self.dir as i64;
        if next < 1 || next > self.max_concurrency as i64 {
            self.dir = -self.dir;
            self.concurrency = (self.concurrency as i64 + self.dir as i64)
                .clamp(1, self.max_concurrency as i64) as u32;
        } else {
            self.concurrency = next as u32;
        }
        self.concurrency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = EwmaLatency::new(0.25);
        for _ in 0..64 {
            e.observe(200.0);
        }
        assert!((e.estimate().unwrap() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_tracks_drift_smoothly() {
        let mut e = EwmaLatency::new(0.25);
        e.observe(100.0);
        e.observe(400.0);
        let v = e.estimate().unwrap();
        assert!(v > 100.0 && v < 400.0, "one step must not jump fully: {v}");
    }

    #[test]
    fn controller_raises_concurrency_when_latency_grows() {
        let mut c = AdaptiveConcurrency::new(2, 16, 50.0, 0.5);
        for _ in 0..20 {
            c.epoch(600.0);
        }
        assert!(
            c.concurrency >= 10,
            "600-cycle latency at 50-cycle service wants ~12-way: {}",
            c.concurrency
        );
    }

    #[test]
    fn controller_lowers_concurrency_when_latency_drops() {
        let mut c = AdaptiveConcurrency::new(16, 16, 50.0, 0.5);
        for _ in 0..20 {
            c.epoch(60.0);
        }
        assert!(
            c.concurrency <= 3,
            "60-cycle latency wants ~2-way: {}",
            c.concurrency
        );
    }

    #[test]
    fn controller_moves_one_step_per_epoch() {
        let mut c = AdaptiveConcurrency::new(1, 32, 10.0, 1.0);
        let c1 = c.epoch(1_000.0);
        assert_eq!(c1, 2);
        let c2 = c.epoch(1_000.0);
        assert_eq!(c2, 3);
    }

    #[test]
    fn controller_respects_bounds() {
        let mut c = AdaptiveConcurrency::new(4, 4, 1.0, 1.0);
        for _ in 0..10 {
            c.epoch(1e9);
        }
        assert_eq!(c.concurrency, 4);
        let mut c = AdaptiveConcurrency::new(1, 8, 1e9, 1.0);
        for _ in 0..10 {
            c.epoch(0.0);
        }
        assert_eq!(c.concurrency, 1);
    }

    #[test]
    fn contention_model_has_interior_optimum() {
        let m = ContentionModel::default();
        // Over-subscription must eventually *hurt* (cache pressure).
        let (best_c, best_u) = m.best_concurrency(100.0, 16);
        assert!(best_c < 16, "optimum must be interior: {best_c}");
        assert!(m.utilization(16, 100.0) < best_u * 0.8);
        assert!(m.utilization(1, 100.0) < best_u);
    }

    #[test]
    fn contention_optimum_moves_with_latency() {
        let m = ContentionModel::default();
        let (c_calm, _) = m.best_concurrency(100.0, 16);
        let (c_congested, _) = m.best_concurrency(800.0, 16);
        assert!(
            c_congested > c_calm,
            "higher latency wants more threads: {c_calm} -> {c_congested}"
        );
    }

    #[test]
    fn contention_hit_rate_declines_and_clamps() {
        let m = ContentionModel::default();
        assert!(m.hit_rate(1) > m.hit_rate(8));
        assert!(m.hit_rate(64) >= 0.05);
        assert!(m.hit_rate(1) <= 1.0);
    }

    #[test]
    fn hill_climber_finds_the_optimum_neighbourhood() {
        let m = ContentionModel::default();
        let (best_c, best_u) = m.best_concurrency(800.0, 16);
        let mut hc = HillClimber::new(2, 16);
        let mut util = 0.0;
        for _ in 0..40 {
            util = m.utilization(hc.concurrency, 800.0);
            hc.epoch(util);
        }
        assert!(
            (hc.concurrency as i64 - best_c as i64).unsigned_abs() <= 2,
            "climber {} should hover near optimum {best_c}",
            hc.concurrency
        );
        assert!(util > best_u * 0.85);
    }

    #[test]
    fn hill_climber_respects_bounds() {
        let mut hc = HillClimber::new(1, 3);
        // Feed constantly-improving utilization: drifts up, bounces at max.
        let mut seen_max = false;
        for i in 0..10 {
            let c = hc.epoch(0.1 * i as f64);
            assert!((1..=3).contains(&c));
            seen_max |= c == 3;
        }
        assert!(seen_max);
    }

    #[test]
    fn hill_climber_reverses_on_decline() {
        let mut hc = HillClimber::new(4, 16);
        hc.epoch(0.9); // moves to 5
        assert_eq!(hc.concurrency, 5);
        hc.epoch(0.5); // decline → reverse → 4
        assert_eq!(hc.concurrency, 4);
    }

    #[test]
    fn utilization_curve_shape() {
        // More threads help until saturation.
        let u1 = expected_utilization(1, 400.0, 50.0);
        let u4 = expected_utilization(4, 400.0, 50.0);
        let u16 = expected_utilization(16, 400.0, 50.0);
        assert!(u1 < u4 && u4 < u16);
        assert!((u16 - 1.0).abs() < 1e-9, "16 threads saturate");
        // Shorter latency saturates earlier.
        assert!(expected_utilization(2, 50.0, 50.0) >= 1.0 - 1e-9);
    }
}
