//! Locality-domain topology of the native pool.
//!
//! The paper's HTVM runs on a machine whose thread units are grouped into a
//! hardware hierarchy (chip → thread-unit groups → thread units). The
//! native pool mirrors the first shared level of that hierarchy as
//! **locality domains**: a partition of the pool's workers into groups.
//! Workers inside one domain are "close" (they share the level — cache,
//! memory bank, socket) and steal from each other first; workers in other
//! domains are "remote" and are only raided when the whole home domain has
//! run dry.
//!
//! Two canonical shapes:
//!
//! * [`Topology::flat`] — no grouping: every worker is its own singleton
//!   domain, so every peer is equally remote. This is the classic uniform
//!   work-stealing baseline (and the pool's historical behaviour).
//! * [`Topology::domains`] — `d` domains of `k` workers each: the two-level
//!   tree that makes proximity-ordered stealing meaningful.
//!
//! Uneven machines (e.g. a big.LITTLE-style split) are described with
//! [`Topology::from_sizes`]. A topology no longer has to be caller-chosen,
//! though: [`Topology::detect`] projects the host's detected
//! [`MachineTree`](crate::machine::MachineTree) (one domain per physical
//! core, SMT siblings together), and the `HTVM_TOPOLOGY` environment
//! variable can force any shape without code changes (see
//! [`Topology::from_spec`]).

use crate::ids::{DomainId, WorkerId};

/// A partition of the pool's workers into locality domains.
///
/// Workers are numbered `0..workers()` in domain order: domain 0 holds
/// workers `0..sizes[0]`, domain 1 the next `sizes[1]`, and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Workers per domain; every entry is ≥ 1.
    sizes: Vec<usize>,
    /// Cumulative worker offsets; `starts[d]` is the first worker of
    /// domain `d`, `starts[sizes.len()]` the total worker count.
    starts: Vec<usize>,
    /// Precomputed worker → domain map; `lookup[w]` is the domain of
    /// worker `w`. Replaces the old linear scan over `starts` so
    /// `domain_of` is O(1) on the steal hot path.
    lookup: Vec<u32>,
    /// Optional worker → cpu pinning assignment (empty = unpinned).
    /// Populated by [`MachineTree::project`](crate::machine::MachineTree::project).
    cpus: Vec<usize>,
}

impl Topology {
    /// No locality grouping: `workers` singleton domains (at least 1).
    /// Every steal crosses a domain boundary, so this is the uniform
    /// work-stealing baseline against which grouped topologies are
    /// measured.
    pub fn flat(workers: usize) -> Self {
        Self::from_sizes(vec![1; workers.max(1)])
    }

    /// A two-level tree: `domains` domains of `workers_per_domain` workers
    /// each (both clamped to at least 1).
    pub fn domains(domains: usize, workers_per_domain: usize) -> Self {
        Self::from_sizes(vec![workers_per_domain.max(1); domains.max(1)])
    }

    /// An explicit, possibly uneven partition. Empty input or zero-sized
    /// domains are normalized away (a pool always has at least 1 worker).
    pub fn from_sizes(sizes: impl Into<Vec<usize>>) -> Self {
        let mut sizes: Vec<usize> = sizes.into();
        sizes.retain(|&s| s > 0);
        if sizes.is_empty() {
            sizes.push(1);
        }
        let mut starts = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0;
        for &s in &sizes {
            starts.push(acc);
            acc += s;
        }
        starts.push(acc);
        let mut lookup = Vec::with_capacity(acc);
        for (d, &s) in sizes.iter().enumerate() {
            lookup.extend(std::iter::repeat_n(d as u32, s));
        }
        Self {
            sizes,
            starts,
            lookup,
            cpus: Vec::new(),
        }
    }

    /// The host machine's topology: one domain per physical core with SMT
    /// siblings grouped, detected from sysfs / procfs / the cgroup quota,
    /// or the deterministic synthetic fallback when detection fails. The
    /// result carries per-worker cpu assignments, so pool workers built
    /// from it pin themselves.
    pub fn detect() -> Self {
        crate::machine::MachineTree::host().project(crate::machine::Level::Core)
    }

    /// Attach a worker → cpu pinning assignment (must cover every worker,
    /// or it is discarded). Used by
    /// [`MachineTree::project`](crate::machine::MachineTree::project).
    pub fn with_cpus(mut self, cpus: Vec<usize>) -> Self {
        if cpus.len() == self.workers() {
            self.cpus = cpus;
        }
        self
    }

    /// The cpu worker `w` should pin to, if this topology came from a
    /// machine tree. `None` for synthetic/caller-built topologies.
    pub fn cpu_of(&self, worker: usize) -> Option<usize> {
        self.cpus.get(worker).copied()
    }

    /// Parse an `HTVM_TOPOLOGY`-style spec:
    ///
    /// * `flat:4` — 4 singleton domains;
    /// * `2x3` — 2 domains × 3 workers;
    /// * `1,3,2` — explicit uneven sizes;
    /// * `detect` — [`Topology::detect`].
    ///
    /// Returns `None` for anything unparsable (callers fall back to their
    /// default shape rather than guessing).
    pub fn from_spec(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        if spec.eq_ignore_ascii_case("detect") {
            return Some(Self::detect());
        }
        if let Some(n) = spec.strip_prefix("flat:") {
            return n.trim().parse::<usize>().ok().map(Self::flat);
        }
        if let Some((d, k)) = spec.split_once(['x', 'X']) {
            if let (Ok(d), Ok(k)) = (d.trim().parse(), k.trim().parse()) {
                return Some(Self::domains(d, k));
            }
            return None;
        }
        let sizes: Option<Vec<usize>> = spec
            .split(',')
            .map(|s| s.trim().parse::<usize>().ok())
            .collect();
        sizes
            .filter(|v| !v.is_empty() && v.iter().any(|&s| s > 0))
            .map(Self::from_sizes)
    }

    /// Total worker count.
    pub fn workers(&self) -> usize {
        *self.starts.last().expect("starts is never empty")
    }

    /// Number of locality domains.
    pub fn num_domains(&self) -> usize {
        self.sizes.len()
    }

    /// Workers per domain.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The domain a worker belongs to.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn domain_of(&self, worker: usize) -> DomainId {
        assert!(worker < self.workers(), "worker {worker} out of range");
        DomainId(self.lookup[worker] as u64)
    }

    /// Non-panicking [`Topology::domain_of`], for stats paths that may
    /// race a worker index against a topology snapshot.
    pub fn try_domain_of(&self, worker: usize) -> Option<DomainId> {
        self.lookup.get(worker).map(|&d| DomainId(d as u64))
    }

    /// The workers of a domain, as an index range.
    ///
    /// # Panics
    /// Panics if `domain` is out of range.
    pub fn workers_of(&self, domain: DomainId) -> std::ops::Range<usize> {
        let d = domain.0 as usize;
        assert!(d < self.num_domains(), "domain {domain} out of range");
        self.starts[d]..self.starts[d + 1]
    }

    /// Whether two workers share a domain (are "close").
    pub fn same_domain(&self, a: WorkerId, b: WorkerId) -> bool {
        self.domain_of(a.0 as usize) == self.domain_of(b.0 as usize)
    }
}

impl Default for Topology {
    /// The shape named by `HTVM_TOPOLOGY` (see [`Topology::from_spec`])
    /// when the variable is set and parses; otherwise a flat topology over
    /// the available CPUs.
    fn default() -> Self {
        if let Ok(spec) = std::env::var("HTVM_TOPOLOGY") {
            if let Some(t) = Self::from_spec(&spec) {
                return t;
            }
        }
        Self::flat(std::thread::available_parallelism().map_or(4, |n| n.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_singleton_domains() {
        let t = Topology::flat(4);
        assert_eq!(t.workers(), 4);
        assert_eq!(t.num_domains(), 4);
        for w in 0..4 {
            assert_eq!(t.domain_of(w), DomainId(w as u64));
            assert_eq!(t.workers_of(DomainId(w as u64)), w..w + 1);
        }
    }

    #[test]
    fn grouped_domains_partition_workers() {
        let t = Topology::domains(2, 3);
        assert_eq!(t.workers(), 6);
        assert_eq!(t.num_domains(), 2);
        assert_eq!(t.workers_of(DomainId(0)), 0..3);
        assert_eq!(t.workers_of(DomainId(1)), 3..6);
        assert_eq!(t.domain_of(2), DomainId(0));
        assert_eq!(t.domain_of(3), DomainId(1));
        assert!(t.same_domain(WorkerId(0), WorkerId(2)));
        assert!(!t.same_domain(WorkerId(2), WorkerId(3)));
    }

    #[test]
    fn uneven_sizes_are_respected() {
        let t = Topology::from_sizes([1, 3]);
        assert_eq!(t.workers(), 4);
        assert_eq!(t.workers_of(DomainId(0)), 0..1);
        assert_eq!(t.workers_of(DomainId(1)), 1..4);
    }

    #[test]
    fn degenerate_inputs_normalize() {
        assert_eq!(Topology::flat(0).workers(), 1);
        assert_eq!(Topology::domains(0, 0).workers(), 1);
        assert_eq!(Topology::from_sizes([0, 2, 0]).sizes(), &[2]);
        assert_eq!(Topology::from_sizes(Vec::new()).workers(), 1);
    }

    #[test]
    fn lookup_table_matches_start_ranges() {
        let t = Topology::from_sizes([2, 1, 3]);
        for d in 0..t.num_domains() {
            for w in t.workers_of(DomainId(d as u64)) {
                assert_eq!(t.domain_of(w), DomainId(d as u64));
                assert_eq!(t.try_domain_of(w), Some(DomainId(d as u64)));
            }
        }
        assert_eq!(t.try_domain_of(t.workers()), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_worker_panics() {
        Topology::flat(2).domain_of(2);
    }

    #[test]
    fn spec_parses_all_forms() {
        assert_eq!(Topology::from_spec("flat:4"), Some(Topology::flat(4)));
        assert_eq!(Topology::from_spec("2x3"), Some(Topology::domains(2, 3)));
        assert_eq!(Topology::from_spec(" 2X3 "), Some(Topology::domains(2, 3)));
        assert_eq!(
            Topology::from_spec("1,3,2"),
            Some(Topology::from_sizes([1, 3, 2]))
        );
        assert!(Topology::from_spec("detect").is_some());
        assert_eq!(Topology::from_spec(""), None);
        assert_eq!(Topology::from_spec("flat:x"), None);
        assert_eq!(Topology::from_spec("2x"), None);
        assert_eq!(Topology::from_spec("banana"), None);
    }

    #[test]
    fn cpus_must_cover_every_worker() {
        let t = Topology::flat(2).with_cpus(vec![5, 9]);
        assert_eq!(t.cpu_of(0), Some(5));
        assert_eq!(t.cpu_of(1), Some(9));
        let t = Topology::flat(2).with_cpus(vec![5]);
        assert_eq!(t.cpu_of(0), None);
    }

    #[test]
    fn detect_produces_a_valid_partition() {
        let t = Topology::detect();
        assert!(t.workers() >= 1);
        assert_eq!(
            t.sizes().iter().sum::<usize>(),
            t.workers(),
            "sizes must partition the workers"
        );
    }
}
