//! The simulated HTVM runtime: hierarchy patterns over `htvm-sim`.
//!
//! Experiments that must control machine parameters (memory latency, unit
//! counts, spawn costs) run the thread hierarchy on the function-accurate
//! simulator instead of the native pool. This module provides the mapping:
//! spawn-with-class effects, completion signalling, and the fork/join and
//! fan-out shapes the workloads are built from.

use htvm_sim::{
    Cycle, Effect, Engine, NodeId, OnArrive, Placement, SignalId, SimThread, SpawnClass, Stats,
    TaskCtx,
};

/// Wraps a task so that a signal fires when it completes — the simulated
/// analogue of an SGT writing its completion into the parent's sync slot.
pub struct SignalOnDone<T> {
    inner: T,
    sig: SignalId,
    signalled: bool,
}

impl<T: SimThread> SignalOnDone<T> {
    /// Wrap `inner`, signalling `sig` once on completion.
    pub fn new(inner: T, sig: SignalId) -> Self {
        Self {
            inner,
            sig,
            signalled: false,
        }
    }
}

impl<T: SimThread> SimThread for SignalOnDone<T> {
    fn resume(&mut self, ctx: &mut TaskCtx) -> Effect {
        if self.signalled {
            return Effect::Done;
        }
        match self.inner.resume(ctx) {
            Effect::Done => {
                self.signalled = true;
                Effect::Signal(self.sig, 1)
            }
            other => other,
        }
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// A parent thread that spawns `n` children and waits for all of them —
/// the LGT-invokes-SGT-group shape of §3.1.1, with per-class costs charged
/// by the engine.
pub struct FanOut {
    factory: Box<dyn FnMut(usize) -> Box<dyn SimThread> + Send>,
    n: usize,
    class: SpawnClass,
    placement: Box<dyn FnMut(usize) -> Placement + Send>,
    sig: SignalId,
    spawned: usize,
    joined: usize,
    done_sig: Option<SignalId>,
    finished: bool,
}

impl FanOut {
    /// Fan out `n` children of `class`, produced by `factory(i)` and placed
    /// by `placement(i)`. `sig` must be unique to this fan-out.
    pub fn new(
        n: usize,
        class: SpawnClass,
        sig: SignalId,
        placement: impl FnMut(usize) -> Placement + Send + 'static,
        factory: impl FnMut(usize) -> Box<dyn SimThread> + Send + 'static,
    ) -> Self {
        Self {
            factory: Box::new(factory),
            n,
            class,
            placement: Box::new(placement),
            sig,
            spawned: 0,
            joined: 0,
            done_sig: None,
            finished: false,
        }
    }

    /// Also signal `sig` (e.g. a grand-parent's slot) when the join
    /// completes.
    pub fn signal_when_done(mut self, sig: SignalId) -> Self {
        self.done_sig = Some(sig);
        self
    }
}

impl SimThread for FanOut {
    fn resume(&mut self, _ctx: &mut TaskCtx) -> Effect {
        if self.spawned < self.n {
            let i = self.spawned;
            self.spawned += 1;
            let child = (self.factory)(i);
            return Effect::Spawn {
                task: Box::new(SignalOnDone {
                    inner: child,
                    sig: self.sig,
                    signalled: false,
                }),
                place: (self.placement)(i),
                class: self.class,
            };
        }
        if self.joined < self.n {
            self.joined += 1;
            return Effect::Wait(self.sig);
        }
        if let Some(sig) = self.done_sig.take() {
            return Effect::Signal(sig, 1);
        }
        if self.finished {
            return Effect::Done;
        }
        self.finished = true;
        Effect::Done
    }

    fn label(&self) -> &str {
        "fan-out"
    }
}

/// Unique signal ids for runtime-internal synchronization: user code should
/// allocate its own ids well below this range.
pub const RUNTIME_SIGNAL_BASE: u64 = 1 << 48;

/// Allocator for runtime-internal [`SignalId`]s.
#[derive(Debug, Default)]
pub struct SignalAlloc {
    next: u64,
}

impl SignalAlloc {
    /// Start allocating at [`RUNTIME_SIGNAL_BASE`].
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// A fresh signal id.
    pub fn fresh(&mut self) -> SignalId {
        let id = SignalId(RUNTIME_SIGNAL_BASE + self.next);
        self.next += 1;
        id
    }
}

/// Run a single LGT on `node` that fans out the given SGT kernels over the
/// node's units (round-robin) and joins them. Returns the run statistics.
///
/// This is the simulated analogue of [`crate::Htvm::run_lgt`] +
/// [`crate::LgtCtx::spawn_sgt`] and the primary shape used by E1/E5/E14.
pub fn run_lgt_fanout(
    engine: &mut Engine,
    node: NodeId,
    kernels: Vec<Box<dyn SimThread>>,
) -> Stats {
    let mut sigs = SignalAlloc::new();
    let sig = sigs.fresh();
    let units = engine.config().units_per_node;
    let mut kernels: Vec<Option<Box<dyn SimThread>>> = kernels.into_iter().map(Some).collect();
    let n = kernels.len();
    let lgt = FanOut::new(
        n,
        SpawnClass::Sgt,
        sig,
        move |i| Placement::Unit(node, (i % units as usize) as u16),
        move |i| kernels[i].take().expect("each kernel is used once"),
    );
    engine.spawn(Placement::Unit(node, 0), SpawnClass::Lgt, Box::new(lgt));
    engine.run()
}

/// Spawn a ping task that spawns one child of `class` and waits for it,
/// `reps` times; used by the spawn-cost microbenchmark (E5).
pub struct SpawnPing {
    class: SpawnClass,
    reps: usize,
    sig: SignalId,
    state: u8,
    i: usize,
}

impl SpawnPing {
    /// `reps` spawn+join round trips of `class`, joined through `sig`.
    pub fn new(class: SpawnClass, reps: usize, sig: SignalId) -> Self {
        Self {
            class,
            reps,
            sig,
            state: 0,
            i: 0,
        }
    }
}

impl SimThread for SpawnPing {
    fn resume(&mut self, _ctx: &mut TaskCtx) -> Effect {
        if self.i >= self.reps {
            return Effect::Done;
        }
        match self.state {
            0 => {
                self.state = 1;
                let sig = self.sig;
                let mut fired = false;
                Effect::Spawn {
                    task: Box::new(move |_: &mut TaskCtx| {
                        if fired {
                            Effect::Done
                        } else {
                            fired = true;
                            Effect::Signal(sig, 1)
                        }
                    }),
                    place: Placement::Local,
                    class: self.class,
                }
            }
            _ => {
                self.state = 0;
                self.i += 1;
                Effect::Wait(self.sig)
            }
        }
    }

    fn label(&self) -> &str {
        "spawn-ping"
    }
}

/// Parcel helper: send a task to `dst`, where it runs with SGT costs; the
/// caller can wait on `ack`.
pub fn parcel_effect(dst: NodeId, payload_bytes: u32, task: Box<dyn SimThread>) -> Effect {
    Effect::Send {
        dst,
        size: payload_bytes,
        action: OnArrive::Spawn(task, Placement::Node(dst), SpawnClass::Sgt),
    }
}

/// Makespan of running `kernels` fanned out over one node (convenience).
pub fn fanout_makespan(
    engine: &mut Engine,
    node: NodeId,
    kernels: Vec<Box<dyn SimThread>>,
) -> Cycle {
    run_lgt_fanout(engine, node, kernels).now
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm_sim::{compute_task, MachineConfig};

    #[test]
    fn fanout_joins_all_children() {
        let mut e = Engine::new(MachineConfig::small());
        let kernels: Vec<Box<dyn SimThread>> = (0..8)
            .map(|_| Box::new(compute_task(100)) as Box<dyn SimThread>)
            .collect();
        let stats = run_lgt_fanout(&mut e, 0, kernels);
        // 8 SGTs + 1 LGT.
        assert_eq!(stats.tasks_completed, 9);
        assert_eq!(stats.spawned(SpawnClass::Sgt), 8);
        assert_eq!(stats.spawned(SpawnClass::Lgt), 1);
    }

    #[test]
    fn fanout_parallelizes_over_units() {
        let mk = |n: usize| {
            let mut e = Engine::new(MachineConfig::small());
            let kernels: Vec<Box<dyn SimThread>> = (0..n)
                .map(|_| Box::new(compute_task(10_000)) as Box<dyn SimThread>)
                .collect();
            fanout_makespan(&mut e, 0, kernels)
        };
        let one = mk(1);
        let four = mk(4); // 4 units available: should run concurrently
        assert!(
            four < one * 2,
            "4 equal kernels on 4 units should not take 4x: one={one}, four={four}"
        );
    }

    #[test]
    fn spawn_ping_rounds_complete() {
        let mut e = Engine::new(MachineConfig::small());
        let mut sigs = SignalAlloc::new();
        let sig = sigs.fresh();
        e.spawn(
            Placement::Unit(0, 0),
            SpawnClass::Lgt,
            Box::new(SpawnPing::new(SpawnClass::Tgt, 10, sig)),
        );
        let s = e.run();
        assert_eq!(s.spawned(SpawnClass::Tgt), 10);
        assert_eq!(s.tasks_completed, 11);
    }

    #[test]
    fn spawn_ping_cost_ordering_matches_hierarchy() {
        let cost = |class: SpawnClass| {
            let mut e = Engine::new(MachineConfig::small());
            let mut sigs = SignalAlloc::new();
            let sig = sigs.fresh();
            e.spawn(
                Placement::Unit(0, 0),
                SpawnClass::Lgt,
                Box::new(SpawnPing::new(class, 20, sig)),
            );
            e.run().now
        };
        let lgt = cost(SpawnClass::Lgt);
        let sgt = cost(SpawnClass::Sgt);
        let tgt = cost(SpawnClass::Tgt);
        assert!(lgt > sgt && sgt > tgt, "lgt={lgt} sgt={sgt} tgt={tgt}");
    }

    #[test]
    fn parcel_effect_runs_at_destination() {
        let mut cfg = MachineConfig::small();
        cfg.nodes = 2;
        let mut e = Engine::new(cfg);
        let sig = SignalId(5);
        let mut step = 0;
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            step += 1;
            match step {
                1 => {
                    let mut fired = false;
                    parcel_effect(
                        1,
                        128,
                        Box::new(move |ctx: &mut TaskCtx| {
                            assert_eq!(ctx.node, 1);
                            if fired {
                                Effect::Done
                            } else {
                                fired = true;
                                Effect::Signal(sig, 1)
                            }
                        }),
                    )
                }
                2 => Effect::Wait(sig),
                _ => Effect::Done,
            }
        });
        let s = e.run();
        assert_eq!(s.parcels, 1);
        assert_eq!(s.tasks_completed, 2);
    }

    #[test]
    fn signal_alloc_is_unique_and_high() {
        let mut a = SignalAlloc::new();
        let s1 = a.fresh();
        let s2 = a.fresh();
        assert_ne!(s1, s2);
        assert!(s1.0 >= RUNTIME_SIGNAL_BASE);
    }
}
