//! Machine hierarchy detection: the multi-level tree behind [`Topology`].
//!
//! The paper's HTVM is specified against a hardware hierarchy — chip →
//! thread-unit groups → thread units — and PR after PR the pool has
//! approximated that with a caller-chosen two-level [`Topology`]. This
//! module closes the gap: a [`MachineTree`] describes the *host's* real
//! hierarchy (machine → package → physical core → SMT sibling), detected
//! at startup from the kernel's own description of the machine:
//!
//! * `/sys/devices/system/cpu/online` + per-cpu
//!   `topology/{physical_package_id,core_id}` — the authoritative source;
//! * `/proc/cpuinfo` (`processor` / `physical id` / `core id` stanzas) —
//!   fallback when sysfs topology files are absent (some containers);
//! * the cgroup cpu quota (`cpu.max` on v2, `cpu.cfs_quota_us` /
//!   `cpu.cfs_period_us` on v1) — caps the *worker budget* below the
//!   visible cpu count so a quota-limited container does not oversubscribe
//!   itself.
//!
//! When none of those sources are readable (non-Linux, sealed sandbox) a
//! deterministic **synthetic** tree stands in, so tests and 1-CPU CI see
//! the same shapes on every run.
//!
//! The existing two-level domain view is a *projection* of one tree level
//! ([`MachineTree::project`]): project at [`Level::Core`] and SMT siblings
//! share a domain (they share an L1/L2), project at [`Level::Package`] and
//! whole sockets do. The projected [`Topology`] carries the per-worker cpu
//! assignment so the pool can pin each worker to its slot
//! ([`pin_current_thread`]).

use crate::topology::Topology;

/// One logical CPU and its position in the hardware hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSlot {
    /// Kernel cpu number (the `N` in `cpuN`); the pinning target.
    pub cpu: usize,
    /// Package / socket id (`physical_package_id`).
    pub package: usize,
    /// Physical core id within the package; SMT siblings share it.
    pub core: usize,
}

/// Where a [`MachineTree`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Read from the live kernel (`/sys` + `/proc` + cgroup).
    Detected,
    /// Built by [`MachineTree::synthetic`] — deterministic, for tests,
    /// non-Linux hosts and machines whose sysfs is unreadable.
    Synthetic,
}

/// The level of the machine hierarchy a [`Topology`] is projected at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// One domain spanning the whole machine (no locality grouping —
    /// every worker is a domain sibling).
    Machine,
    /// One domain per package / socket.
    Package,
    /// One domain per physical core: SMT siblings land together. This is
    /// the default projection — siblings share the closest cache level,
    /// which is exactly what "domain siblings steal first" wants.
    Core,
    /// Every hardware thread its own domain (the flat baseline).
    Smt,
}

/// A multi-level model of the host: machine → package → core → SMT
/// sibling, plus the cgroup cpu budget.
///
/// Slots are kept sorted by `(package, core, cpu)` so that any projection
/// yields contiguous domains with SMT siblings adjacent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineTree {
    slots: Vec<CpuSlot>,
    /// Whole-cpu budget from the cgroup quota, if one is set.
    quota: Option<usize>,
    source: Source,
}

impl MachineTree {
    /// A deterministic synthetic machine: `packages` sockets ×
    /// `cores_per_package` physical cores × `smt` hardware threads per
    /// core (each clamped to ≥ 1). Cpu numbers are assigned densely in
    /// `(package, core, thread)` order — the same input always yields the
    /// same tree, which is what keeps topology tests reproducible on
    /// 1-CPU CI.
    pub fn synthetic(packages: usize, cores_per_package: usize, smt: usize) -> Self {
        let (p, c, s) = (packages.max(1), cores_per_package.max(1), smt.max(1));
        let mut slots = Vec::with_capacity(p * c * s);
        let mut cpu = 0;
        for pkg in 0..p {
            for core in 0..c {
                for _ in 0..s {
                    slots.push(CpuSlot {
                        cpu,
                        package: pkg,
                        core,
                    });
                    cpu += 1;
                }
            }
        }
        Self {
            slots,
            quota: None,
            source: Source::Synthetic,
        }
    }

    /// Detect the host hierarchy from the kernel. Returns `None` when the
    /// sources are unreadable (non-Linux, sealed container) — callers fall
    /// back to [`MachineTree::synthetic`] via [`MachineTree::host`].
    pub fn detect() -> Option<Self> {
        let mut slots = detect::sysfs_slots().or_else(detect::cpuinfo_slots)?;
        if slots.is_empty() {
            return None;
        }
        slots.sort_by_key(|s| (s.package, s.core, s.cpu));
        Some(Self {
            slots,
            quota: detect::cgroup_quota(),
            source: Source::Detected,
        })
    }

    /// The tree for the current host: [`MachineTree::detect`], or a
    /// synthetic single-package machine sized by
    /// `available_parallelism()` when detection fails.
    pub fn host() -> Self {
        Self::detect().unwrap_or_else(|| {
            let n = std::thread::available_parallelism().map_or(4, |n| n.get());
            Self::synthetic(1, n, 1)
        })
    }

    /// Where this tree came from.
    pub fn source(&self) -> Source {
        self.source
    }

    /// All cpu slots, sorted `(package, core, cpu)`.
    pub fn slots(&self) -> &[CpuSlot] {
        &self.slots
    }

    /// Number of visible logical cpus.
    pub fn cpus(&self) -> usize {
        self.slots.len()
    }

    /// The cgroup whole-cpu quota, if one applies.
    pub fn quota(&self) -> Option<usize> {
        self.quota
    }

    /// The worker budget: visible cpus capped by the cgroup quota, never
    /// below 1.
    pub fn budget(&self) -> usize {
        let cap = self.quota.unwrap_or(usize::MAX);
        self.slots.len().min(cap).max(1)
    }

    /// Number of distinct packages among the budgeted slots.
    pub fn packages(&self) -> usize {
        self.level_sizes(Level::Package).len()
    }

    /// Number of distinct physical cores among the budgeted slots.
    pub fn cores(&self) -> usize {
        self.level_sizes(Level::Core).len()
    }

    /// Domain sizes for a projection at `level`, over the budgeted slot
    /// prefix (slots are sorted, so a quota cut keeps siblings adjacent).
    fn level_sizes(&self, level: Level) -> Vec<usize> {
        let take = self.budget().min(self.slots.len()).max(1);
        let slots = &self.slots[..take];
        let key = |s: &CpuSlot| -> (usize, usize) {
            match level {
                Level::Machine => (0, 0),
                Level::Package => (s.package, 0),
                Level::Core => (s.package, s.core),
                Level::Smt => (s.cpu, 0),
            }
        };
        let mut sizes = Vec::new();
        let mut prev: Option<(usize, usize)> = None;
        for s in slots {
            let k = key(s);
            if prev == Some(k) {
                *sizes.last_mut().expect("non-empty after first slot") += 1;
            } else {
                sizes.push(1);
                prev = Some(k);
            }
        }
        sizes
    }

    /// Project one tree level down to the pool's two-level domain view.
    ///
    /// The result partitions `budget()` workers so that each domain is one
    /// node at `level` (e.g. at [`Level::Core`], SMT siblings share a
    /// domain), and carries the worker → cpu assignment for pinning.
    pub fn project(&self, level: Level) -> Topology {
        let sizes = self.level_sizes(level);
        let take = self.budget().min(self.slots.len()).max(1);
        let cpus: Vec<usize> = self.slots[..take].iter().map(|s| s.cpu).collect();
        Topology::from_sizes(sizes).with_cpus(cpus)
    }
}

/// Pin the calling thread to one cpu. Returns `true` on success; a no-op
/// returning `false` off Linux or when the kernel rejects the mask (cpu
/// offline, outside the cgroup cpuset). The pool treats failure as
/// advisory — an unpinned worker is slower, not wrong.
pub fn pin_current_thread(cpu: usize) -> bool {
    imp::pin(cpu)
}

#[cfg(target_os = "linux")]
mod imp {
    // Raw FFI instead of a libc dependency: std already links libc on
    // Linux, so the symbol resolves without adding a crate.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    const MASK_WORDS: usize = 16; // 1024 cpus, the kernel's default CONFIG_NR_CPUS ceiling

    pub(super) fn pin(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        // pid 0 targets the calling thread.
        unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub(super) fn pin(_cpu: usize) -> bool {
        false
    }
}

#[cfg(target_os = "linux")]
mod detect {
    use super::CpuSlot;

    /// Parse a kernel cpu list like `0-3,5,7-8`.
    fn parse_cpu_list(s: &str) -> Vec<usize> {
        let mut cpus = Vec::new();
        for part in s.trim().split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((lo, hi)) = part.split_once('-') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse::<usize>()) {
                    cpus.extend(lo..=hi);
                }
            } else if let Ok(n) = part.parse() {
                cpus.push(n);
            }
        }
        cpus
    }

    fn read_usize(path: &str) -> Option<usize> {
        std::fs::read_to_string(path).ok()?.trim().parse().ok()
    }

    /// Primary source: per-cpu sysfs topology files. `None` if the online
    /// list or any per-cpu file is unreadable.
    pub(super) fn sysfs_slots() -> Option<Vec<CpuSlot>> {
        let online = std::fs::read_to_string("/sys/devices/system/cpu/online").ok()?;
        let cpus = parse_cpu_list(&online);
        if cpus.is_empty() {
            return None;
        }
        let mut slots = Vec::with_capacity(cpus.len());
        for cpu in cpus {
            let base = format!("/sys/devices/system/cpu/cpu{cpu}/topology");
            let package = read_usize(&format!("{base}/physical_package_id"))?;
            let core = read_usize(&format!("{base}/core_id"))?;
            slots.push(CpuSlot { cpu, package, core });
        }
        Some(slots)
    }

    /// Fallback source: `/proc/cpuinfo` stanzas. Containers sometimes
    /// hide sysfs topology but still expose cpuinfo. Missing
    /// `physical id` / `core id` lines (common on single-socket ARM)
    /// degrade to distinct cores in one package.
    pub(super) fn cpuinfo_slots() -> Option<Vec<CpuSlot>> {
        let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
        let mut slots = Vec::new();
        let mut cur: Option<CpuSlot> = None;
        for line in text.lines() {
            let Some((key, val)) = line.split_once(':') else {
                continue;
            };
            let (key, val) = (key.trim(), val.trim());
            match key {
                "processor" => {
                    if let Some(s) = cur.take() {
                        slots.push(s);
                    }
                    let cpu: usize = val.parse().ok()?;
                    cur = Some(CpuSlot {
                        cpu,
                        package: 0,
                        core: cpu,
                    });
                }
                "physical id" => {
                    if let (Some(s), Ok(p)) = (cur.as_mut(), val.parse()) {
                        s.package = p;
                    }
                }
                "core id" => {
                    if let (Some(s), Ok(c)) = (cur.as_mut(), val.parse()) {
                        s.core = c;
                    }
                }
                _ => {}
            }
        }
        if let Some(s) = cur.take() {
            slots.push(s);
        }
        if slots.is_empty() {
            None
        } else {
            Some(slots)
        }
    }

    /// Whole-cpu budget from the cgroup quota: v2 `cpu.max`, then v1
    /// `cpu.cfs_quota_us`/`cpu.cfs_period_us`. `None` when unlimited or
    /// unreadable.
    pub(super) fn cgroup_quota() -> Option<usize> {
        if let Ok(text) = std::fs::read_to_string("/sys/fs/cgroup/cpu.max") {
            let mut it = text.split_whitespace();
            let quota = it.next()?;
            if quota == "max" {
                return None;
            }
            let quota: u64 = quota.parse().ok()?;
            let period: u64 = it.next()?.parse().ok()?;
            return whole_cpus(quota, period);
        }
        let quota = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_quota_us").ok()?;
        let quota: i64 = quota.trim().parse().ok()?;
        if quota < 0 {
            return None;
        }
        let period = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_period_us").ok()?;
        let period: u64 = period.trim().parse().ok()?;
        whole_cpus(quota as u64, period)
    }

    fn whole_cpus(quota: u64, period: u64) -> Option<usize> {
        if period == 0 {
            return None;
        }
        // Round up: a 1.5-cpu quota gets 2 workers (better to share a
        // core than to idle half a budget).
        Some((quota.div_ceil(period)).max(1) as usize)
    }
}

#[cfg(not(target_os = "linux"))]
mod detect {
    use super::CpuSlot;

    pub(super) fn sysfs_slots() -> Option<Vec<CpuSlot>> {
        None
    }

    pub(super) fn cpuinfo_slots() -> Option<Vec<CpuSlot>> {
        None
    }

    pub(super) fn cgroup_quota() -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DomainId;

    #[test]
    fn synthetic_is_deterministic_and_sorted() {
        let a = MachineTree::synthetic(2, 3, 2);
        let b = MachineTree::synthetic(2, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.cpus(), 12);
        assert_eq!(a.packages(), 2);
        assert_eq!(a.cores(), 6);
        assert_eq!(a.source(), Source::Synthetic);
        for w in a.slots().windows(2) {
            assert!((w[0].package, w[0].core, w[0].cpu) < (w[1].package, w[1].core, w[1].cpu));
        }
    }

    #[test]
    fn core_projection_groups_smt_siblings() {
        let t = MachineTree::synthetic(2, 2, 2).project(Level::Core);
        assert_eq!(t.sizes(), &[2, 2, 2, 2]);
        // Siblings (workers 0,1) share domain 0; the next core is domain 1.
        assert_eq!(t.domain_of(0), t.domain_of(1));
        assert_ne!(t.domain_of(1), t.domain_of(2));
    }

    #[test]
    fn projections_cover_all_levels() {
        let m = MachineTree::synthetic(2, 3, 2);
        assert_eq!(m.project(Level::Machine).sizes(), &[12]);
        assert_eq!(m.project(Level::Package).sizes(), &[6, 6]);
        assert_eq!(m.project(Level::Core).num_domains(), 6);
        assert_eq!(m.project(Level::Smt).sizes(), &[1; 12]);
    }

    #[test]
    fn projection_carries_cpu_assignment() {
        let m = MachineTree::synthetic(1, 2, 2);
        let t = m.project(Level::Core);
        for w in 0..t.workers() {
            assert_eq!(t.cpu_of(w), Some(w));
        }
    }

    #[test]
    fn quota_caps_the_budget_but_keeps_grouping() {
        let mut m = MachineTree::synthetic(2, 2, 2);
        m.quota = Some(3);
        assert_eq!(m.budget(), 3);
        let t = m.project(Level::Core);
        // First core's two siblings plus one thread of the second core.
        assert_eq!(t.sizes(), &[2, 1]);
        assert_eq!(t.workers(), 3);
        assert_eq!(t.domain_of(0), DomainId(0));
        assert_eq!(t.domain_of(2), DomainId(1));
    }

    #[test]
    fn host_always_produces_a_tree() {
        let m = MachineTree::host();
        assert!(m.cpus() >= 1);
        assert!(m.budget() >= 1);
        let t = m.project(Level::Core);
        assert_eq!(t.workers(), m.budget());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn detected_tree_matches_the_host_when_available() {
        if let Some(m) = MachineTree::detect() {
            assert_eq!(m.source(), Source::Detected);
            assert!(m.cpus() >= 1);
            // SMT siblings must project into one domain at Level::Core.
            let t = m.project(Level::Core);
            let slots = &m.slots()[..t.workers()];
            for (w, pair) in slots.windows(2).enumerate() {
                if pair[0].package == pair[1].package && pair[0].core == pair[1].core {
                    assert_eq!(t.domain_of(w), t.domain_of(w + 1));
                }
            }
        }
    }

    #[test]
    fn pinning_is_advisory() {
        // On Linux cpu 0 should exist; elsewhere this is a documented
        // no-op. Either way it must not panic.
        let _ = pin_current_thread(0);
        assert!(!pin_current_thread(usize::MAX));
    }
}
