//! The lock-free scheduling spine: a Chase–Lev work-stealing deque and a
//! segmented MPMC injector, replacing the `Mutex<VecDeque>` crossbeam shim
//! on every hot-path queue operation of [`crate::native`].
//!
//! The paper's premise (§3.1.1) is that SGTs only pay off when spawn and
//! steal cost far less than the task grain. A mutex on the owner's
//! push/pop path serializes exactly the operations that must be cheapest,
//! so this module provides the classic lock-free alternatives:
//!
//! * [`Worker`]/[`Stealer`] — the **Chase–Lev deque** (Chase & Lev, SPAA
//!   2005; orderings per Lê et al., PPoPP 2013): a growable circular
//!   buffer with a `bottom` index written only by the owner and a `top`
//!   index advanced only by CAS. The owner pushes and pops LIFO at the
//!   bottom with plain loads/stores (no RMW except when racing for the
//!   last element); thieves steal FIFO at the top with one CAS.
//! * [`Injector`] — a **segmented MPMC FIFO**: fixed-size segments
//!   ([`SEGMENT_CAP`] slots) linked by atomic pointers. Producers claim
//!   slots with one `fetch_add` on the tail segment's cursor (a whole
//!   batch claims its run in a single RMW — see [`Injector::push_batch`]),
//!   consumers claim with one CAS on the head segment's cursor, and
//!   [`Injector::steal_batch_and_pop`] moves a run of jobs into a thief's
//!   deque with a single CAS-bounded claim.
//!
//! # Memory-ordering invariants (who writes what)
//!
//! Deque: **only the owner writes `bottom`** (push: `Release` store after
//! the slot write; pop: speculative decrement then `SeqCst` fence before
//! reading `top`). **`top` only moves forward, and only by CAS** (steal,
//! or the owner's pop racing for the last element), so an index can never
//! be claimed twice and the monotone `i64` rules out ABA. A thief reads
//! the slot *before* its CAS and discards the value on failure — the read
//! may race an owner push that has wrapped the ring, which is the deque's
//! one intentional race; the failed CAS proves the value was dead.
//!
//! Injector: a producer writes a slot's value, then `Release`-stores the
//! slot state to *written*; consumers stop at the first slot that is not
//! yet written, so FIFO visibility is exact — a job is stealable only
//! once fully published, and never before its predecessors.
//!
//! # Buffer retirement (when memory is freed)
//!
//! Growing the deque replaces its ring buffer, and draining a segment
//! unlinks it — but a thief may still be reading through the old pointer.
//! Retired buffers and segments therefore go through **epoch-deferred
//! reclamation** (a miniature of the crossbeam-epoch design, private
//! `epoch` module): every thread owns a registry slot; before
//! dereferencing a shared pointer it *pins* — publishes the current
//! global epoch in its slot with a plain store followed by one `SeqCst`
//! fence — and unpins with a `Release` store when done. Retired garbage
//! is stamped with the current epoch and parked in a per-structure limbo
//! list; the epoch advances only when every pinned thread has caught up
//! to it, and a stamped item is freed once the epoch has advanced twice
//! past its stamp — by then no thread can have pinned early enough to
//! still hold the dead pointer. The owner's push/pop path never pins
//! (the owner is the only thread that replaces its own buffer); pins are
//! **reentrant**, so a caller probing many queues (the pool's steal
//! sweep) pins once and every steal inside skips the publication fence —
//! the Chase–Lev top/bottom load ordering is then supplied by the
//! steal's own `steal_order_fence` (a hardware fence only where the
//! architecture needs one). Retirement is rare (once per doubling, once
//! per [`SEGMENT_CAP`] jobs) and serializes on a cold-path mutex.
//!
//! # Approximate lengths
//!
//! [`Worker::len`], [`Stealer::len`], [`Injector::len`] (and the
//! `is_empty` companions) are **racy snapshots**: they read both cursors
//! without synchronizing against in-flight operations, so the answer can
//! be stale by the time it returns. That is the documented contract for
//! every consumer that feeds queue depth into steal decisions (see
//! `native::find_work`): a false "empty" can only skip a victim whose
//! work arrived mid-search, and the pool's epoch-stamped park protocol
//! already forces a re-search before any worker sleeps, so no job is
//! stranded. Anything that needs an exact count must drain the queue.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::Arc;

use crate::chk::{fence, AtomicI64, AtomicPtr, AtomicU8, AtomicUsize, Mutex, Ordering};

/// Result of a steal attempt (same three-way contract as crossbeam's).
pub enum Steal<T> {
    /// A job was stolen.
    Success(T),
    /// The queue was observably empty.
    Empty,
    /// A concurrent operation won the race; the caller may retry.
    Retry,
}

impl<T> Steal<T> {
    /// Whether the attempt observed an empty queue.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// The stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Epoch-based reclamation (shared by the deque and the injector).
// ---------------------------------------------------------------------------

/// A process-wide epoch domain with thread-local participants — the
/// crossbeam-epoch architecture, miniaturized.
///
/// Pinning costs one plain store plus one `SeqCst` fence (no RMW): a
/// thread publishes "pinned at epoch *e*" in its own registry slot, the
/// fence orders that publication before every subsequent shared-pointer
/// load, and a re-check repins in the (rare) case the global epoch moved
/// mid-publish. The collector advances the global epoch only when every
/// pinned participant has caught up to it, and garbage is freed once the
/// epoch has advanced **twice** past its retire stamp — by then, no
/// participant can have been pinned early enough to still hold the
/// retired pointer. Threads that exit mark their slot inactive so a dead
/// worker never stalls the epoch.
mod epoch {
    use std::cell::Cell;
    use std::sync::Arc;

    use crate::chk::{fence, AtomicBool, AtomicU64, Mutex, Ordering};

    /// One participant's published state: 0 when quiescent, otherwise
    /// `(epoch << 1) | 1`.
    pub(super) struct Participant {
        state: AtomicU64,
        active: AtomicBool,
    }

    /// The global epoch counter. Starts above the free horizon so the
    /// `tag + 2` arithmetic never underflows.
    static GLOBAL: AtomicU64 = AtomicU64::new(2);
    /// Every participant ever registered (inactive ones are compacted
    /// away when new threads register). Cold-path only.
    static REGISTRY: Mutex<Vec<Arc<Participant>>> = Mutex::new(Vec::new());

    pub(super) struct LocalSlot {
        slot: Arc<Participant>,
        /// Pin nesting depth. Only the outermost pin publishes (and pays
        /// the fence); nested pins are a counter bump — which is what
        /// lets the pool pin once around a whole steal sweep and make
        /// every steal attempt inside fence-free.
        nest: Cell<u32>,
    }

    impl Drop for LocalSlot {
        fn drop(&mut self) {
            // Under the schedule explorer this destructor runs during OS
            // thread exit — *after* the virtual thread detached from the
            // baton — so these stores would mutate scheduler-visible state
            // at real-time-dependent moments and break replay determinism
            // (they would also deadlock the baton: a Done thread cannot
            // take a yield point). Exited slots are instead swept between
            // iterations by `check_reset` below; an active-but-quiescent
            // slot never blocks an epoch advance in the meantime.
            #[cfg(not(feature = "check"))]
            {
                self.slot.state.store(0, Ordering::Release);
                self.slot.active.store(false, Ordering::Release);
            }
        }
    }

    thread_local! {
        static LOCAL: LocalSlot = register();
    }

    fn register() -> LocalSlot {
        let slot = Arc::new(Participant {
            state: AtomicU64::new(0),
            active: AtomicBool::new(true),
        });
        let mut reg = REGISTRY.lock();
        reg.retain(|s| s.active.load(Ordering::Acquire));
        reg.push(slot.clone());
        LocalSlot {
            slot,
            nest: Cell::new(0),
        }
    }

    /// An active pin; dropping the outermost guard unpins with a single
    /// `Release` store. Deliberately `!Send` (raw pointer): a guard must
    /// stay on the thread that pinned.
    pub struct Guard {
        // Points at the thread's TLS record; valid for the guard's whole
        // life because guards never leave the pinning thread and the TLS
        // destructor runs only after user frames have unwound.
        local: *const LocalSlot,
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            unsafe {
                let l = &*self.local;
                let n = l.nest.get() - 1;
                l.nest.set(n);
                if n == 0 {
                    l.slot.state.store(0, Ordering::Release);
                }
            }
        }
    }

    /// Pin the current thread at the current global epoch. The `SeqCst`
    /// fence inside is what makes every later pointer load safe — and,
    /// for the Chase–Lev steal, it doubles as the load-load fence the
    /// top/bottom protocol requires, so a steal pays exactly one fence.
    /// Reentrant: while a guard is alive, further pins on the same
    /// thread are a nesting-counter bump (no store, no fence).
    #[inline(always)]
    pub fn pin() -> Guard {
        LOCAL.with(|l| {
            let n = l.nest.get();
            l.nest.set(n + 1);
            if n == 0 {
                let slot: &Participant = &l.slot;
                let mut e = GLOBAL.load(Ordering::Relaxed);
                loop {
                    slot.state.store((e << 1) | 1, Ordering::Relaxed);
                    fence(Ordering::SeqCst);
                    // SeqCst confirm: joins the SC order with the
                    // advance CAS, so a pin never settles on an epoch
                    // the collector has already left behind.
                    let now = GLOBAL.load(Ordering::SeqCst);
                    if now == e {
                        break;
                    }
                    e = now;
                }
            }
            Guard {
                local: l as *const LocalSlot,
            }
        })
    }

    /// **Explorer hook** (only with the `check` feature): reset the
    /// process-wide epoch state between exploration iterations, so every
    /// iteration starts from the identical registry — the precondition for
    /// seed-exact replay (registry length changes the instrumented-op
    /// count of every `try_advance` scan). Must only be called while no
    /// thread holds a pin and no retired garbage is outstanding: between
    /// iterations, after the scenario's queues have been dropped.
    #[cfg(feature = "check")]
    pub fn check_reset() {
        REGISTRY.lock().clear();
        GLOBAL.store(2, Ordering::SeqCst);
    }

    /// Try to advance the global epoch (possible only when every pinned
    /// participant has observed the current one) and return the epoch to
    /// stamp new garbage with. Cold path: called from `retire` only.
    pub(super) fn try_advance() -> u64 {
        let e = GLOBAL.load(Ordering::SeqCst);
        {
            let reg = REGISTRY.lock();
            for slot in reg.iter() {
                let s = slot.state.load(Ordering::SeqCst);
                if s & 1 == 1 && (s >> 1) != e {
                    return e; // a straggler is pinned at an older epoch
                }
            }
        }
        let _ = GLOBAL.compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::Relaxed);
        GLOBAL.load(Ordering::SeqCst)
    }
}

pub use epoch::Guard;

/// Re-export of the explorer's between-iterations epoch reset (see
/// `epoch::check_reset`). Wired into `htvm_check::set_iteration_reset` by
/// the schedule-exploration tests.
#[cfg(feature = "check")]
pub use epoch::check_reset as check_reset_epochs;

/// Pin the calling thread for the lifetime of the returned guard.
///
/// Pinning is what makes dereferencing the spine's shared buffers safe
/// against concurrent retirement; every [`Stealer::steal`] and
/// [`Injector`] operation pins internally, so calling this is never
/// *required*. The point of the public API is **amortization**: pins are
/// reentrant, so a caller about to probe many queues (the pool's
/// proximity-ordered steal sweep, a benchmark's drain loop) can pin once
/// and make every operation inside fence-free on its pin path. Keep pin
/// scopes short — a pinned thread holds back garbage collection for
/// every queue in the process (never hold one across job execution or
/// blocking).
#[inline(always)]
pub fn pin() -> Guard {
    epoch::pin()
}

/// Per-structure limbo list over the global epoch domain: retired items
/// are stamped with the epoch of their retirement and dropped once the
/// global epoch has advanced two steps past the stamp.
struct Reclaim<R> {
    limbo: Mutex<Vec<(u64, R)>>,
}

impl<R> Reclaim<R> {
    fn new() -> Self {
        Self {
            limbo: Mutex::new(Vec::new()),
        }
    }

    /// Pin the current thread for the duration of the returned guard.
    #[inline(always)]
    fn pin(&self) -> epoch::Guard {
        epoch::pin()
    }

    /// Hand `item` to the collector. Cold path: called once per buffer
    /// doubling / segment drain, never per job.
    fn retire(&self, item: R) {
        let mut limbo = self.limbo.lock();
        let e = epoch::try_advance();
        limbo.push((e, item));
        // Free everything the epoch has left three steps behind. Two is
        // the textbook minimum (a pinned thread holds the epoch within
        // one advance of itself); the third step is pure margin — it
        // costs one extra retire of limbo residency and buys slack
        // against the stale-pin corner cases of weak-memory models.
        limbo.retain(|(tag, _)| tag + 3 > e);
    }
}

// ---------------------------------------------------------------------------
// Chase–Lev deque.
// ---------------------------------------------------------------------------

/// Initial ring capacity (doubles on overflow; must be a power of two).
const MIN_BUFFER_CAP: usize = 64;

/// The deque's ring buffer: `cap` (power of two) possibly-uninitialized
/// slots, indexed by the low bits of the logical position.
struct Buf<T> {
    slots: *mut MaybeUninit<T>,
    cap: usize,
}

impl<T> Buf<T> {
    fn alloc(cap: usize) -> *mut Buf<T> {
        let slots: Box<[MaybeUninit<T>]> = (0..cap).map(|_| MaybeUninit::uninit()).collect();
        Box::into_raw(Box::new(Buf {
            slots: Box::into_raw(slots) as *mut MaybeUninit<T>,
            cap,
        }))
    }

    fn slot(&self, index: i64) -> *mut MaybeUninit<T> {
        // Logical indices are non-negative; the ring mask needs the low
        // bits only.
        unsafe { self.slots.add(index as usize & (self.cap - 1)) }
    }

    /// Move `v` into the slot for `index`. Owner-only.
    unsafe fn write(&self, index: i64, v: T) {
        ptr::write(self.slot(index), MaybeUninit::new(v));
    }

    /// Copy the value out of the slot for `index`. The caller must own
    /// the logical position (won its CAS / holds the bottom), or must
    /// discard the value with `mem::forget` if the claim fails — the
    /// deque's one intentional race (see the module header).
    unsafe fn read(&self, index: i64) -> T {
        ptr::read(self.slot(index)).assume_init()
    }
}

/// A retired ring buffer: frees the allocation without dropping slot
/// contents (live values were copied to the successor buffer; dead copies
/// are plain bytes).
struct RetiredBuf<T>(*mut Buf<T>);

// SAFETY: a retired buffer is inert storage; freeing it from any thread
// only touches the allocator.
unsafe impl<T: Send> Send for RetiredBuf<T> {}

impl<T> Drop for RetiredBuf<T> {
    fn drop(&mut self) {
        unsafe {
            let buf = Box::from_raw(self.0);
            drop(Box::from_raw(ptr::slice_from_raw_parts_mut(
                buf.slots, buf.cap,
            )));
        }
    }
}

struct DequeInner<T> {
    /// Next position the owner will push to. Written only by the owner.
    bottom: AtomicI64,
    /// Next position a thief will steal from. Advanced only by CAS.
    top: AtomicI64,
    /// Current ring buffer. Replaced only by the owner (grow).
    buffer: AtomicPtr<Buf<T>>,
    reclaim: Reclaim<RetiredBuf<T>>,
}

// SAFETY: all cross-thread access is mediated by the atomic protocol
// above; values of `T` cross threads only on a successful steal.
unsafe impl<T: Send> Send for DequeInner<T> {}
unsafe impl<T: Send> Sync for DequeInner<T> {}

impl<T> Drop for DequeInner<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the undrained values, then the buffer.
        let b = *self.bottom.get_mut();
        let t = *self.top.get_mut();
        let buf = *self.buffer.get_mut();
        unsafe {
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(RetiredBuf(buf));
        }
    }
}

/// The owner end of a Chase–Lev deque: LIFO push/pop, no locks, no RMW
/// except when racing a thief for the last element.
///
/// `Worker` is `Send` but deliberately not `Sync` or `Clone`: exactly one
/// thread may own it, which is what makes the plain `bottom` stores safe.
pub struct Worker<T> {
    inner: Arc<DequeInner<T>>,
    /// Suppresses auto-`Sync`: `bottom` writes assume a unique owner.
    _not_sync: PhantomData<*mut ()>,
}

// SAFETY: moving the owner end to another thread is fine; concurrent use
// from two threads is prevented by `!Sync` + `!Clone`.
unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_lifo()
    }
}

impl<T> Worker<T> {
    /// New empty deque (LIFO owner end, FIFO thief end — the only flavor
    /// Chase–Lev has; the name keeps the crossbeam call sites).
    pub fn new_lifo() -> Self {
        Self {
            inner: Arc::new(DequeInner {
                bottom: AtomicI64::new(0),
                top: AtomicI64::new(0),
                buffer: AtomicPtr::new(Buf::alloc(MIN_BUFFER_CAP)),
                reclaim: Reclaim::new(),
            }),
            _not_sync: PhantomData,
        }
    }

    /// A thief handle sharing this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.clone(),
        }
    }

    /// Push onto the owner end (bottom). Two plain atomic loads, the slot
    /// write, and one `Release` store — the publication point.
    #[inline]
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        // Owner-only: nobody else replaces the buffer.
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        unsafe {
            if b - t >= (*buf).cap as i64 {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, value);
        }
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop from the owner end (LIFO). The `SeqCst` fence orders the
    /// speculative `bottom` decrement before the `top` read, so the owner
    /// and a racing thief cannot both claim the last element without one
    /// of them seeing the other (Lê et al.'s protocol).
    #[inline]
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        if t < b {
            // More than one element: the bottom one is ours outright.
            return Some(unsafe { (*buf).read(b) });
        }
        // Exactly one element: race thieves for it via the top CAS.
        let won = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        inner.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            Some(unsafe { (*buf).read(b) })
        } else {
            None
        }
    }

    /// Double the buffer, copying the live range, and retire the old one
    /// through the epoch collector (thieves may still be reading it).
    unsafe fn grow(&self, b: i64, t: i64, old: *mut Buf<T>) -> *mut Buf<T> {
        let inner = &*self.inner;
        let new = Buf::alloc(((*old).cap * 2).max(MIN_BUFFER_CAP));
        for i in t..b {
            ptr::copy_nonoverlapping((*old).slot(i), (*new).slot(i), 1);
        }
        inner.buffer.store(new, Ordering::Release);
        inner.reclaim.retire(RetiredBuf(old));
        new
    }

    /// Approximate number of queued jobs (racy snapshot — see the module
    /// header's relaxed contract).
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Approximate emptiness (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The fence the Chase–Lev steal needs between its `top` and `bottom`
/// loads (load-bearing in Lê et al.'s proof: it is what forces the
/// owner's post-fence `top` read to observe any thief CAS that could
/// conflict with a plain bottom take). On x86-64 the TSO model never
/// reorders loads and Lê et al.'s verified x86 mapping of `steal` carries
/// no hardware fence here, so a compiler fence (which still pins program
/// order) suffices; weak architectures get the full `SeqCst` fence the
/// portable proof requires. Kept separate from the epoch pin so the
/// ordering holds even when a reentrant pin skips its publication fence.
#[inline(always)]
fn steal_order_fence() {
    #[cfg(target_arch = "x86_64")]
    crate::chk::compiler_fence(Ordering::SeqCst);
    #[cfg(not(target_arch = "x86_64"))]
    fence(Ordering::SeqCst);
}

/// The thief end of a Chase–Lev deque; steals FIFO from the top. Cloneable
/// and shareable across threads.
pub struct Stealer<T> {
    inner: Arc<DequeInner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal the oldest job. One CAS on success; [`Steal::Retry`] when a
    /// concurrent steal or the owner's last-element pop won the race.
    #[inline]
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // An *outermost* pin's internal `SeqCst` fence does double duty:
        // it is the Chase–Lev load-load fence between the `top` and
        // `bottom` reads *and* the epoch publication barrier that makes
        // the buffer dereference below safe against a concurrent
        // grow-and-retire. A nested pin (the pool pins once per steal
        // sweep) skips that fence, so the protocol's ordering is
        // restored unconditionally by `steal_order_fence` below.
        let pin = inner.reclaim.pin();
        steal_order_fence();
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = inner.buffer.load(Ordering::Acquire);
        // Read the value *before* the claim; the CAS outcome decides
        // whether the bytes were live (see module header).
        let value = unsafe { (*buf).read(t) };
        let claimed = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        drop(pin);
        if claimed {
            Steal::Success(value)
        } else {
            std::mem::forget(value);
            Steal::Retry
        }
    }

    /// Approximate number of queued jobs (racy snapshot — see the module
    /// header's relaxed contract).
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Approximate emptiness (racy snapshot). Cheaper than a failed
    /// [`Stealer::steal`]: no `SeqCst` fence, no pin.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// **Mutant for explorer validation** (only with the `check` feature):
    /// a deliberately broken steal that claims with a plain `top` store
    /// instead of the CAS. Two thieves that read the same `top` both "win",
    /// duplicating one element and skipping another — the classic
    /// double-take. The schedule explorer must find a schedule exposing it;
    /// the failing seed is committed as proof the explorer covers the
    /// deque's claim race. Only sound for `T: Copy` (the duplicate read
    /// would otherwise double-drop).
    #[cfg(feature = "check")]
    pub fn steal_mutant_no_cas(&self) -> Steal<T>
    where
        T: Copy,
    {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        let pin = inner.reclaim.pin();
        steal_order_fence();
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = inner.buffer.load(Ordering::Acquire);
        let value = unsafe { (*buf).read(t) };
        // BUG (deliberate): unconditional store instead of CAS — a racing
        // thief (or the owner's last-element pop) is silently overwritten.
        inner.top.store(t + 1, Ordering::SeqCst);
        drop(pin);
        Steal::Success(value)
    }
}

// ---------------------------------------------------------------------------
// Segmented MPMC injector.
// ---------------------------------------------------------------------------

/// Jobs per injector segment. A batch publish claims up to a whole
/// segment's run with one `fetch_add`; a drained segment is one retire.
pub const SEGMENT_CAP: usize = 32;

/// Slot states: the producer flips EMPTY→WRITTEN after the value write;
/// the consumer flips WRITTEN→TAKEN after moving the value out.
const SLOT_EMPTY: u8 = 0;
const SLOT_WRITTEN: u8 = 1;
const SLOT_TAKEN: u8 = 2;

struct Slot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Segment<T> {
    /// Producer cursor: slots `0..claimed.min(CAP)` are claimed (the
    /// `fetch_add` may overshoot `CAP`; out-of-range claims are dead).
    claimed: AtomicUsize,
    /// Consumer cursor: advanced only by CAS, only over WRITTEN slots, so
    /// consumption is exactly FIFO within the segment.
    taken: AtomicUsize,
    next: AtomicPtr<Segment<T>>,
    slots: Box<[Slot<T>]>,
}

impl<T> Segment<T> {
    fn alloc() -> *mut Segment<T> {
        let slots: Box<[Slot<T>]> = (0..SEGMENT_CAP)
            .map(|_| Slot {
                state: AtomicU8::new(SLOT_EMPTY),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Box::into_raw(Box::new(Segment {
            claimed: AtomicUsize::new(0),
            taken: AtomicUsize::new(0),
            next: AtomicPtr::new(ptr::null_mut()),
            slots,
        }))
    }
}

/// A fully-consumed segment awaiting reclamation (values were all moved
/// out by their claimants; the allocation is freed on drop).
struct RetiredSeg<T>(*mut Segment<T>);

// SAFETY: as for `RetiredBuf` — inert storage by the time it drops.
unsafe impl<T: Send> Send for RetiredSeg<T> {}

impl<T> Drop for RetiredSeg<T> {
    fn drop(&mut self) {
        unsafe {
            drop(Box::from_raw(self.0));
        }
    }
}

struct InjInner<T> {
    head: AtomicPtr<Segment<T>>,
    tail: AtomicPtr<Segment<T>>,
    reclaim: Reclaim<RetiredSeg<T>>,
}

// SAFETY: slot handoff is mediated by the state protocol; values cross
// threads only after their WRITTEN release-store.
unsafe impl<T: Send> Send for InjInner<T> {}
unsafe impl<T: Send> Sync for InjInner<T> {}

impl<T> InjInner<T> {
    /// Make sure `seg` has a successor and the shared tail has advanced
    /// past `seg`; any producer may help. Lock-free: the CAS loser frees
    /// its speculative allocation and adopts the winner's segment.
    ///
    /// # Safety
    /// The caller must hold a reclamation pin covering `seg`.
    unsafe fn install_next(&self, seg: *mut Segment<T>) -> *mut Segment<T> {
        let mut next = (*seg).next.load(Ordering::Acquire);
        if next.is_null() {
            let new = Segment::alloc();
            match (*seg).next.compare_exchange(
                ptr::null_mut(),
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => next = new,
                Err(cur) => {
                    drop(Box::from_raw(new));
                    next = cur;
                }
            }
        }
        let _ = self
            .tail
            .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Relaxed);
        next
    }
}

impl<T> Drop for InjInner<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the live chain, dropping unconsumed
        // values. Retired segments are off the chain (freed via limbo).
        let mut seg = *self.head.get_mut();
        while !seg.is_null() {
            unsafe {
                let taken = (*seg).taken.load(Ordering::Relaxed).min(SEGMENT_CAP);
                let claimed = (*seg).claimed.load(Ordering::Relaxed).min(SEGMENT_CAP);
                for i in taken..claimed {
                    let slot = &(*seg).slots[i];
                    if slot.state.load(Ordering::Relaxed) == SLOT_WRITTEN {
                        drop((*slot.value.get()).as_ptr().read());
                    }
                }
                let next = (*seg).next.load(Ordering::Relaxed);
                drop(Box::from_raw(seg));
                seg = next;
            }
        }
    }
}

/// A lock-free segmented FIFO injector: many producers, many consumers,
/// exact FIFO visibility (a job is stealable only after every job pushed
/// before it).
pub struct Injector<T> {
    inner: Arc<InjInner<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// New empty injector (one segment).
    pub fn new() -> Self {
        let seg = Segment::alloc();
        Self {
            inner: Arc::new(InjInner {
                head: AtomicPtr::new(seg),
                tail: AtomicPtr::new(seg),
                reclaim: Reclaim::new(),
            }),
        }
    }

    /// Enqueue one job: claim a slot with one `fetch_add`, write, publish
    /// with one `Release` store.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let pin = inner.reclaim.pin();
        let mut seg = inner.tail.load(Ordering::Acquire);
        loop {
            // SAFETY: `seg` is reachable from the live chain under `pin`.
            let c = unsafe { (*seg).claimed.fetch_add(1, Ordering::AcqRel) };
            if c < SEGMENT_CAP {
                unsafe {
                    let slot = &(*seg).slots[c];
                    (*slot.value.get()).write(value);
                    slot.state.store(SLOT_WRITTEN, Ordering::Release);
                    if c + 1 == SEGMENT_CAP {
                        // We claimed the last slot: pre-install the next
                        // segment so later producers don't stall on us.
                        inner.install_next(seg);
                    }
                }
                break;
            }
            // Claimed a dead index past the segment's end: move on.
            seg = unsafe { inner.install_next(seg) };
        }
        drop(pin);
    }

    /// Enqueue a whole batch, claiming each segment's share of the run
    /// with a *single* `fetch_add` — one RMW per segment crossed instead
    /// of one lock round-trip per job. Values become visible in order.
    pub fn push_batch(&self, values: Vec<T>) {
        let mut remaining = values.len();
        if remaining == 0 {
            return;
        }
        let inner = &*self.inner;
        let pin = inner.reclaim.pin();
        let mut it = values.into_iter();
        let mut seg = inner.tail.load(Ordering::Acquire);
        while remaining > 0 {
            // SAFETY: `seg` is reachable from the live chain under `pin`.
            let c = unsafe { (*seg).claimed.fetch_add(remaining, Ordering::AcqRel) };
            if c < SEGMENT_CAP {
                let got = remaining.min(SEGMENT_CAP - c);
                unsafe {
                    for i in 0..got {
                        let slot = &(*seg).slots[c + i];
                        (*slot.value.get()).write(it.next().expect("batch length"));
                        slot.state.store(SLOT_WRITTEN, Ordering::Release);
                    }
                }
                remaining -= got;
                if c + got == SEGMENT_CAP {
                    seg = unsafe { inner.install_next(seg) };
                }
            } else {
                seg = unsafe { inner.install_next(seg) };
            }
        }
        drop(pin);
    }

    /// Dequeue the oldest job. One CAS on the consumer cursor on success.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let pin = inner.reclaim.pin();
        let res = loop {
            let seg = inner.head.load(Ordering::Acquire);
            // SAFETY: `seg` cannot be retired while we are pinned.
            let c = unsafe { (*seg).taken.load(Ordering::Acquire) };
            if c >= SEGMENT_CAP {
                let next = unsafe { (*seg).next.load(Ordering::Acquire) };
                if next.is_null() {
                    break Steal::Empty;
                }
                if inner
                    .head
                    .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    // Every slot was claimed by exactly one consumer; any
                    // claimant still copying its value out holds a pin.
                    inner.reclaim.retire(RetiredSeg(seg));
                }
                continue;
            }
            let slot = unsafe { &(*seg).slots[c] };
            if slot.state.load(Ordering::Acquire) != SLOT_WRITTEN {
                // Frontier not yet published: FIFO-empty (a producer may
                // be mid-write; its post-publish epoch bump re-triggers
                // any worker that parks on this answer).
                break Steal::Empty;
            }
            if unsafe {
                (*seg)
                    .taken
                    .compare_exchange(c, c + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            } {
                let value = unsafe { (*slot.value.get()).as_ptr().read() };
                slot.state.store(SLOT_TAKEN, Ordering::Release);
                break Steal::Success(value);
            }
            // Lost the cursor race to another consumer: someone made
            // progress, go again.
        };
        drop(pin);
        res
    }

    /// Pop one job and move up to half of the visible run after it into
    /// `dest` (the thief's own deque) — all claimed by a single CAS on
    /// the consumer cursor.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let inner = &*self.inner;
        let pin = inner.reclaim.pin();
        let res = loop {
            let seg = inner.head.load(Ordering::Acquire);
            // SAFETY: `seg` cannot be retired while we are pinned.
            let c = unsafe { (*seg).taken.load(Ordering::Acquire) };
            if c >= SEGMENT_CAP {
                let next = unsafe { (*seg).next.load(Ordering::Acquire) };
                if next.is_null() {
                    break Steal::Empty;
                }
                if inner
                    .head
                    .compare_exchange(seg, next, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    inner.reclaim.retire(RetiredSeg(seg));
                }
                continue;
            }
            // Count the run of published slots from the frontier (capped
            // by the segment — one segment is one claim).
            let mut run = 0usize;
            while c + run < SEGMENT_CAP
                && unsafe { (*seg).slots[c + run].state.load(Ordering::Acquire) } == SLOT_WRITTEN
            {
                run += 1;
            }
            if run == 0 {
                break Steal::Empty;
            }
            // Pop one, carry half the rest (crossbeam's batching rule).
            let take = 1 + (run - 1) / 2;
            if unsafe {
                (*seg)
                    .taken
                    .compare_exchange(c, c + take, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
            } {
                continue; // another consumer claimed the frontier
            }
            let first = unsafe {
                let slot = &(*seg).slots[c];
                let v = (*slot.value.get()).as_ptr().read();
                slot.state.store(SLOT_TAKEN, Ordering::Release);
                v
            };
            for i in 1..take {
                unsafe {
                    let slot = &(*seg).slots[c + i];
                    let v = (*slot.value.get()).as_ptr().read();
                    slot.state.store(SLOT_TAKEN, Ordering::Release);
                    dest.push(v);
                }
            }
            break Steal::Success(first);
        };
        drop(pin);
        res
    }

    /// Approximate number of queued jobs (racy snapshot — counts claimed
    /// slots, including ones whose producer has not yet published; see
    /// the module header's relaxed contract).
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        let pin = inner.reclaim.pin();
        let mut consumed = 0u64;
        let mut produced = 0u64;
        // Walk head→tail under the pin; both cursors are racy snapshots.
        unsafe {
            let head = inner.head.load(Ordering::Acquire);
            consumed += (*head).taken.load(Ordering::Acquire).min(SEGMENT_CAP) as u64;
            let mut seg = head;
            loop {
                produced += (*seg).claimed.load(Ordering::Acquire).min(SEGMENT_CAP) as u64;
                let next = (*seg).next.load(Ordering::Acquire);
                if next.is_null() {
                    break;
                }
                seg = next;
            }
        }
        drop(pin);
        produced.saturating_sub(consumed) as usize
    }

    /// Approximate emptiness (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops newest");
        assert!(
            matches!(s.steal(), Steal::Success(1)),
            "thief steals oldest"
        );
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn deque_grows_past_initial_capacity() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        let n = (MIN_BUFFER_CAP * 4 + 7) as u64;
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(w.len() as u64, n);
        // Steal a few from the top (oldest first)...
        for i in 0..10 {
            assert_eq!(s.steal().success(), Some(i));
        }
        // ...then pop the rest LIFO.
        for i in (10..n).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn last_element_race_is_single_winner() {
        // Sequentially, the owner wins the b == t race by CAS.
        let w = Worker::new_lifo();
        w.push(7u64);
        assert_eq!(w.pop(), Some(7));
        assert_eq!(w.pop(), None);
        let s = w.stealer();
        assert!(s.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_preserve_every_job_once() {
        let w = Worker::new_lifo();
        let n = 10_000u64;
        let sum = Arc::new(TestCounter::new(0));
        let count = Arc::new(TestCounter::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let s = w.stealer();
                let sum = sum.clone();
                let count = count.clone();
                std::thread::spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if count.load(Ordering::Relaxed) == n {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for i in 1..=n {
            w.push(i);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn owner_pop_races_thieves_without_loss() {
        let w = Worker::new_lifo();
        let n = 20_000u64;
        let stolen = Arc::new(TestCounter::new(0));
        let stop = Arc::new(TestCounter::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = w.stealer();
                let stolen = stolen.clone();
                let stop = stop.clone();
                std::thread::spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            stolen.fetch_add(v, Ordering::Relaxed);
                        }
                        _ => {
                            if stop.load(Ordering::Relaxed) == 1 {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut popped = 0u64;
        for i in 1..=n {
            w.push(i);
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    popped += v;
                }
            }
        }
        while let Some(v) = w.pop() {
            popped += v;
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            popped + stolen.load(Ordering::Relaxed),
            n * (n + 1) / 2,
            "every pushed value claimed exactly once"
        );
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        let n = (SEGMENT_CAP * 3 + 5) as u64;
        for i in 0..n {
            inj.push(i);
        }
        assert_eq!(inj.len() as u64, n);
        for i in 0..n {
            assert_eq!(inj.steal().success(), Some(i), "strict FIFO");
        }
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn injector_batch_push_is_fifo_across_segments() {
        let inj = Injector::new();
        inj.push(0u64);
        // A batch spanning two segment boundaries.
        inj.push_batch((1..=(SEGMENT_CAP as u64 * 2 + 3)).collect());
        let mut got = Vec::new();
        while let Some(v) = inj.steal().success() {
            got.push(v);
        }
        let want: Vec<u64> = (0..=(SEGMENT_CAP as u64 * 2 + 3)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn injector_batch_steal_moves_run_into_worker() {
        let inj = Injector::new();
        for i in 0..10u64 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let got = inj.steal_batch_and_pop(&w);
        assert_eq!(got.success(), Some(0));
        assert!(!w.is_empty(), "batch landed in the worker deque");
        // The moved run is the next-oldest values, in FIFO positions.
        let mut drained = Vec::new();
        while let Some(v) = w.pop() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, (1..=drained.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_and_consumers_drain_exactly() {
        let inj = Arc::new(Injector::new());
        let per = 5_000u64;
        let producers = 2;
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 1_000 {
                        match inj.steal() {
                            Steal::Success(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            _ => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let prod_handles: Vec<_> = (0..producers)
            .map(|p| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        inj.push(p * per + i);
                    }
                })
            })
            .collect();
        for h in prod_handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Whatever the consumers missed before drying out is still queued.
        while let Some(v) = inj.steal().success() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..producers * per).collect::<Vec<_>>());
    }

    /// A drop-counting payload: catches double-drops and leaks in the
    /// undrained-value paths.
    struct Droppy(Arc<TestCounter>);
    impl Drop for Droppy {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn undrained_values_drop_exactly_once() {
        let drops = Arc::new(TestCounter::new(0));
        {
            let w = Worker::new_lifo();
            for _ in 0..(MIN_BUFFER_CAP * 2 + 9) {
                w.push(Droppy(drops.clone())); // forces one grow + leftovers
            }
            drop(w.pop()); // one drained
        }
        assert_eq!(
            drops.load(Ordering::Relaxed) as usize,
            MIN_BUFFER_CAP * 2 + 9
        );
        let drops2 = Arc::new(TestCounter::new(0));
        {
            let inj = Injector::new();
            for _ in 0..(SEGMENT_CAP + 3) {
                inj.push(Droppy(drops2.clone()));
            }
            for _ in 0..5 {
                drop(inj.steal().success());
            }
        }
        assert_eq!(drops2.load(Ordering::Relaxed) as usize, SEGMENT_CAP + 3);
    }

    #[test]
    fn approximate_lengths_track_sequential_truth() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        assert!(w.is_empty() && s.is_empty());
        for i in 0..5 {
            w.push(i);
        }
        // With no concurrency the snapshot is exact.
        assert_eq!(w.len(), 5);
        assert_eq!(s.len(), 5);
        w.pop();
        s.steal();
        assert_eq!(w.len(), 3);
    }
}
