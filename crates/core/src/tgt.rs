//! Tiny-grain threads: the TGT graph executor.
//!
//! TGTs are EARTH fibers / CARE strands: non-preemptive code blocks that
//! share the frame of their enclosing SGT invocation and are enabled by
//! dataflow signals. "The partition of TGTs and their resource usage (e.g.,
//! registers) are done by automatic thread partitioning" (§3.1.1) — in this
//! library the partition is expressed by the programmer or by the LITL-X
//! interpreter as an explicit [`TgtGraph`]: fibers plus dependence arcs.
//!
//! The executor runs all fibers of one graph on the *current* worker
//! (TGTs never migrate — they are too fine-grained to be worth moving,
//! which is exactly why the hierarchy distinguishes them from SGTs), in
//! dependence order, ready-stack LIFO, so a chain of dependent fibers runs
//! back-to-back with its values still in "registers" (the frame).

use crate::frame::Frame;

/// Handle to a fiber within a [`TgtGraph`] (index into the graph).
pub type FiberId = usize;

/// Context passed to each running fiber.
pub struct TgtCtx<'a> {
    /// The enclosing SGT invocation's frame, shared by all fibers.
    pub frame: &'a Frame,
    /// Id of the running fiber.
    pub id: FiberId,
}

type FiberFn = Box<dyn FnOnce(&TgtCtx) + Send>;

struct FiberNode {
    body: Option<FiberFn>,
    /// Number of unsatisfied input dependences (EARTH sync count).
    sync_count: usize,
    /// Fibers signalled when this one completes.
    out: Vec<FiberId>,
}

/// A dataflow graph of tiny-grain threads over one shared [`Frame`].
pub struct TgtGraph {
    frame: Frame,
    fibers: Vec<FiberNode>,
}

impl TgtGraph {
    /// A graph whose fibers share a frame of `frame_slots` slots.
    pub fn new(frame_slots: usize) -> Self {
        Self {
            frame: Frame::new(frame_slots),
            fibers: Vec::new(),
        }
    }

    /// The shared frame (e.g. to seed inputs before running).
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Add a fiber with no dependences yet.
    pub fn fiber(&mut self, body: impl FnOnce(&TgtCtx) + Send + 'static) -> FiberId {
        let id = self.fibers.len();
        self.fibers.push(FiberNode {
            body: Some(Box::new(body)),
            sync_count: 0,
            out: Vec::new(),
        });
        id
    }

    /// Declare that `to` depends on (is signalled by) `from`.
    pub fn depends(&mut self, to: FiberId, from: FiberId) {
        assert!(from < self.fibers.len() && to < self.fibers.len());
        assert_ne!(from, to, "a fiber cannot depend on itself");
        self.fibers[from].out.push(to);
        self.fibers[to].sync_count += 1;
    }

    /// Number of fibers.
    pub fn len(&self) -> usize {
        self.fibers.len()
    }

    /// True if no fibers have been added.
    pub fn is_empty(&self) -> bool {
        self.fibers.is_empty()
    }

    /// Run the whole graph to completion on the current thread, consuming
    /// it and returning the frame with all outputs.
    ///
    /// Panics if the dependence graph has a cycle (some fiber never
    /// becomes ready).
    pub fn run(mut self) -> Frame {
        let mut ready: Vec<FiberId> = (0..self.fibers.len())
            .filter(|&i| self.fibers[i].sync_count == 0)
            .collect();
        // LIFO: freshly-enabled dependents run immediately after their
        // producer, while the produced values are hot.
        let mut executed = 0usize;
        while let Some(id) = ready.pop() {
            let body = self.fibers[id].body.take().expect("fiber runs once");
            {
                let ctx = TgtCtx {
                    frame: &self.frame,
                    id,
                };
                body(&ctx);
            }
            executed += 1;
            let outs = std::mem::take(&mut self.fibers[id].out);
            for to in outs {
                let f = &mut self.fibers[to];
                f.sync_count -= 1;
                if f.sync_count == 0 {
                    ready.push(to);
                }
            }
        }
        assert_eq!(
            executed,
            self.fibers.len(),
            "TGT graph has a dependence cycle: {} of {} fibers ran",
            executed,
            self.fibers.len()
        );
        self.frame
    }
}

impl std::fmt::Debug for TgtGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TgtGraph")
            .field("fibers", &self.fibers.len())
            .field("frame_slots", &self.frame.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_dependence_order() {
        let mut g = TgtGraph::new(3);
        // f0: slot0 = 2 ; f1: slot1 = slot0 * 10 ; f2: slot2 = slot1 + 1
        let f0 = g.fiber(|c| c.frame.set(0, 2));
        let f1 = g.fiber(|c| c.frame.set(1, c.frame.get(0) * 10));
        let f2 = g.fiber(|c| c.frame.set(2, c.frame.get(1) + 1));
        g.depends(f1, f0);
        g.depends(f2, f1);
        let frame = g.run();
        assert_eq!(frame.get(2), 21);
    }

    #[test]
    fn diamond_joins_both_inputs() {
        let mut g = TgtGraph::new(4);
        let a = g.fiber(|c| c.frame.set(0, 3));
        let b = g.fiber(|c| c.frame.set(1, c.frame.get(0) + 1));
        let d = g.fiber(|c| c.frame.set(2, c.frame.get(0) * 2));
        let j = g.fiber(|c| c.frame.set(3, c.frame.get(1) + c.frame.get(2)));
        g.depends(b, a);
        g.depends(d, a);
        g.depends(j, b);
        g.depends(j, d);
        let frame = g.run();
        assert_eq!(frame.get(3), 4 + 6);
    }

    #[test]
    fn independent_fibers_all_run() {
        let mut g = TgtGraph::new(8);
        for i in 0..8 {
            g.fiber(move |c| c.frame.set(i, i as u64 + 1));
        }
        let frame = g.run();
        assert_eq!(frame.snapshot(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_is_detected() {
        let mut g = TgtGraph::new(1);
        let a = g.fiber(|_| {});
        let b = g.fiber(|_| {});
        g.depends(a, b);
        g.depends(b, a);
        g.run();
    }

    #[test]
    fn seeded_frame_inputs_are_visible() {
        let mut g = TgtGraph::new(2);
        g.frame().set(0, 41);
        g.fiber(|c| c.frame.set(1, c.frame.get(0) + 1));
        let frame = g.run();
        assert_eq!(frame.get(1), 42);
    }

    #[test]
    fn empty_graph_runs() {
        let g = TgtGraph::new(0);
        let frame = g.run();
        assert!(frame.is_empty());
    }
}
