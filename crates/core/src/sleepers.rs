//! The epoch-stamped sleeper registry: the pool's park/wake protocol as a
//! free-standing, independently checkable object.
//!
//! Extracted from [`crate::native`] so the protocol can be driven directly
//! by the deterministic schedule explorer (`htvm-check`) without spinning
//! up a pool: the explorer's scenarios construct a [`Sleepers`], race
//! `publish → bump_epoch → wake_one_in` against `observe_epoch → search →
//! park`, and assert that no interleaving loses a wakeup. The invariants
//! (numbered as in the [`crate::native`] module header):
//!
//! 1. every spawn *publishes its job*, then calls [`Sleepers::bump_epoch`],
//!    then looks for a sleeper to wake — in that order;
//! 2. a parking worker reads the epoch ([`Sleepers::observe_epoch`])
//!    *before* its final work search and [`Sleepers::park`] re-checks it
//!    after registering: a mismatch means a spawn may have slipped past the
//!    search, so the worker withdraws and searches again instead of
//!    sleeping;
//! 3. if both sides race, sequential consistency guarantees at least one
//!    loses: either the worker observes the bumped epoch (and re-searches),
//!    or the spawner observes the registration (and wakes the worker);
//! 4. a registered worker is popped by at most one waker (the pop removes
//!    it), and the wake token is delivered under the worker's private
//!    mailbox lock, so it is never lost — and never goes *stale*: a worker
//!    popped mid-withdrawal consumes the in-flight token before leaving
//!    park, so every token is consumed by the registration it paid for;
//! 5. lock order is mailbox → sleeper list on the worker side, and sleeper
//!    list (released) *then* mailbox on the waker side, so the two never
//!    deadlock.

use crate::chk::{AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};

/// One worker's private parking spot. The boolean is the **wake token**:
/// set under the lock by a waker, consumed under the lock by the worker.
/// Delivering the token through a per-worker mutex (instead of a shared
/// condvar) makes a wake exactly one futex op and makes it impossible to
/// lose: a token set while the worker is awake is consumed on its next
/// park attempt.
struct Mailbox {
    lock: Mutex<bool>,
    cv: Condvar,
}

/// How a [`Sleepers::wake_one_in`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeClass {
    /// A sleeper was found in the first-choice domain.
    Targeted,
    /// The wake fell outward in ring order to another domain.
    Escalated,
}

/// How a [`Sleepers::park`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkOutcome {
    /// The worker slept and was woken by a delivered token.
    Woken,
    /// The epoch moved (or the caller aborted) after registration; the
    /// worker withdrew its entry without sleeping. It must re-search.
    Withdrawn,
    /// The worker tried to withdraw but a waker had already popped it; the
    /// in-flight token was consumed before returning. It must re-search.
    TokenConsumed,
    /// A stale token was found on arrival (defensive; should not happen).
    StrayToken,
}

/// The epoch-stamped per-domain sleeper registry (see the module header
/// for the protocol and its invariants).
pub struct Sleepers {
    /// Bumped (SeqCst) by every spawn after publishing its job and before
    /// scanning for a sleeper; closes the check-then-park race.
    epoch: AtomicU64,
    /// Total registered sleepers — the spawn fast path: when zero, a wake
    /// is a single atomic load and nothing else.
    parked: AtomicUsize,
    /// Worker indices currently parked (or committing to park), one list
    /// per locality domain. Wakers pop LIFO — the most recently parked
    /// worker is the warmest.
    by_domain: Vec<Mutex<Vec<usize>>>,
    /// One parking spot per worker.
    mailboxes: Vec<Mailbox>,
    /// Rotating first-choice domain for spawns with no affinity, so
    /// unaffine wakes spread over the topology instead of always raiding
    /// domain 0.
    rotor: AtomicUsize,
    /// Park events (cumulative; see `PoolStats::parks`).
    parks: AtomicU64,
    /// Wakes satisfied in the first-choice domain.
    wakes_targeted: AtomicU64,
    /// Wakes that fell outward in ring order.
    wakes_escalated: AtomicU64,
}

impl Sleepers {
    /// A registry for `workers` workers partitioned into `num_domains`
    /// domains.
    pub fn new(num_domains: usize, workers: usize) -> Self {
        Self {
            epoch: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            by_domain: (0..num_domains).map(|_| Mutex::new(Vec::new())).collect(),
            mailboxes: (0..workers)
                .map(|_| Mailbox {
                    lock: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
            rotor: AtomicUsize::new(0),
            parks: AtomicU64::new(0),
            wakes_targeted: AtomicU64::new(0),
            wakes_escalated: AtomicU64::new(0),
        }
    }

    /// Invariant 1: called by every spawn *after* its job is visible in a
    /// deque or injector and *before* any sleeper lookup. A batch bumps
    /// once for the whole batch.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Read the spawn epoch (SeqCst). A parking worker must observe the
    /// epoch *before* its final work search and pass the observation to
    /// [`Sleepers::park`].
    pub fn observe_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Workers currently registered — a live gauge, not a counter.
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::SeqCst)
    }

    /// Cumulative park events (a withdrawn attempt still counts once; see
    /// [`Sleepers::park`] for why that is harmless).
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Cumulative wakes satisfied in the first-choice domain.
    pub fn wakes_targeted(&self) -> u64 {
        self.wakes_targeted.load(Ordering::Relaxed)
    }

    /// Cumulative wakes that fell outward in ring order.
    pub fn wakes_escalated(&self) -> u64 {
        self.wakes_escalated.load(Ordering::Relaxed)
    }

    /// Deliver the wake token owed to a popped sleeper: set the token
    /// under the worker's mailbox lock, notify, and adjust the gauge. The
    /// caller must have already removed `w` from the registry (and hold no
    /// registry lock — invariant 5: a parking worker locks in the opposite
    /// nesting).
    ///
    /// The gauge decrement happens only after acquiring the mailbox: the
    /// worker holds that lock across its registration *and* its gauge
    /// increment, so acquisition proves the increment has landed — a waker
    /// that pops an entry in the instant between the worker's list push
    /// and its `parked.fetch_add` cannot drive the gauge below zero
    /// (which, on a usize, would wrap the gauge to garbage and defeat
    /// every spawner's zero fast path until it rebalanced).
    fn deliver_token(&self, w: usize) {
        let mb = &self.mailboxes[w];
        let mut token = mb.lock.lock();
        self.parked.fetch_sub(1, Ordering::SeqCst);
        *token = true;
        mb.cv.notify_one();
    }

    /// Wake one sleeper, preferring `home` and falling outward in ring
    /// order. A no-op (returning `None`) when nobody is parked — the fast
    /// path is one atomic load. The pop removes the sleeper from the
    /// registry, so each parked worker receives at most one token while
    /// parked.
    pub fn wake_one_in(&self, home: usize) -> Option<WakeClass> {
        if self.parked.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let nd = self.by_domain.len();
        for off in 0..nd {
            let d = (home + off) % nd;
            let popped = self.by_domain[d].lock().pop();
            if let Some(w) = popped {
                let class = if off == 0 {
                    self.wakes_targeted.fetch_add(1, Ordering::Relaxed);
                    WakeClass::Targeted
                } else {
                    self.wakes_escalated.fetch_add(1, Ordering::Relaxed);
                    WakeClass::Escalated
                };
                self.deliver_token(w);
                return Some(class);
            }
        }
        None
    }

    /// Wake one *specific* worker if (and only if) it is currently
    /// registered in `domain`. Returns whether a token was delivered.
    ///
    /// This is the retire path's wake: a retiring worker must leave its
    /// park promptly, and waking "one sleeper near the domain" could rouse
    /// a bystander while the retiree sleeps on. Popping the named entry
    /// keeps invariant 4 (one pop → one token, delivered under the
    /// mailbox lock); when the worker is not registered it is awake and
    /// will observe the retire flag at its next loop check, so `false` is
    /// not an error.
    pub fn wake_worker(&self, w: usize, domain: usize) -> bool {
        let popped = {
            let mut list = self.by_domain[domain].lock();
            list.iter()
                .position(|&x| x == w)
                .map(|i| list.swap_remove(i))
        };
        if popped.is_some() {
            self.wakes_targeted.fetch_add(1, Ordering::Relaxed);
            self.deliver_token(w);
            true
        } else {
            false
        }
    }

    /// Wake one sleeper with no affinity: the rotor picks the first-choice
    /// domain so unaffine spawns spread their wakes over the topology.
    pub fn wake_one_rotated(&self) -> Option<WakeClass> {
        let nd = self.by_domain.len();
        let home = self.rotor.fetch_add(1, Ordering::Relaxed) % nd;
        self.wake_one_in(home)
    }

    /// Shutdown broadcast: pop and token every registered sleeper. The
    /// only full-registry wake, meant to run once per pool lifetime.
    pub fn wake_all(&self) {
        for list in &self.by_domain {
            let drained = std::mem::take(&mut *list.lock());
            for w in drained {
                self.deliver_token(w);
            }
        }
    }

    /// Park worker `w` of domain `domain` until a wake token arrives.
    /// `observed_epoch` is the epoch read (via [`Sleepers::observe_epoch`])
    /// before the caller's last (empty) work search; if any spawn has moved
    /// it since — or `aborting` reports true (pool shutdown) — the worker
    /// refuses to sleep and returns so the caller can re-search
    /// (invariant 2).
    pub fn park(
        &self,
        w: usize,
        domain: usize,
        observed_epoch: u64,
        aborting: impl Fn() -> bool,
    ) -> ParkOutcome {
        let mb = &self.mailboxes[w];
        let mut token = mb.lock.lock();
        if *token {
            // Defensive: a stray token (every planned delivery is consumed
            // either in the sleep loop or in the popped-while-withdrawing
            // branch below, so this should not fire). Consume it and
            // re-search rather than sleeping through a wake.
            *token = false;
            return ParkOutcome::StrayToken;
        }
        self.by_domain[domain].lock().push(w);
        // The park is recorded *before* the gauge increment so that
        // "every worker is in the gauge" implies every registered worker's
        // park is already visible in the cumulative counter — the "pool
        // has settled" probe of `Pool::wait_fully_parked` depends on that
        // implication. The gauge increment in turn must precede the epoch
        // re-check (invariant 3 needs the spawner's `parked` read to see
        // us); a withdrawn attempt therefore stays counted, which is
        // harmless: withdrawals only happen when a spawn raced in, never
        // on an idle pool.
        self.parks.fetch_add(1, Ordering::Relaxed);
        self.parked.fetch_add(1, Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) != observed_epoch || aborting() {
            // A spawn (or shutdown) slipped in after our last search:
            // withdraw and look again.
            return self.withdraw(w, domain, &mut token, mb);
        }
        while !*token {
            mb.cv.wait(&mut token);
        }
        *token = false;
        ParkOutcome::Woken
    }

    /// Remove our registration after a failed epoch re-check. If a waker
    /// got there first, wait for (and consume) its in-flight token.
    fn withdraw(
        &self,
        w: usize,
        domain: usize,
        token: &mut crate::chk::MutexGuard<'_, bool>,
        mb: &Mailbox,
    ) -> ParkOutcome {
        let withdrawn = {
            let mut list = self.by_domain[domain].lock();
            list.iter()
                .position(|&x| x == w)
                .map(|i| list.swap_remove(i))
        };
        if withdrawn.is_some() {
            self.parked.fetch_sub(1, Ordering::SeqCst);
            ParkOutcome::Withdrawn
        } else {
            // A waker popped us before we could withdraw: it has already
            // adjusted `parked` and is committed to delivering a token the
            // moment we release the mailbox. Consume that token *here*,
            // before returning — if we left it in flight, it could land
            // against a *future* registration and wake us out of a real
            // park while the new registry entry stays behind (a phantom
            // entry a later waker would waste its single wake on, and an
            // inflated `parked` gauge). The wait is bounded: the popper
            // holds no lock we need.
            while !**token {
                mb.cv.wait(token);
            }
            **token = false;
            ParkOutcome::TokenConsumed
        }
    }

    /// **Mutant for explorer validation** (only with the `check` feature):
    /// a deliberately broken [`Sleepers::park`] that skips the post-
    /// registration epoch re-check — the classic check-then-park race. The
    /// schedule explorer must find the lost wakeup this reintroduces; its
    /// failing seed is committed as proof the explorer covers invariant 2.
    #[cfg(feature = "check")]
    pub fn park_mutant_no_recheck(
        &self,
        w: usize,
        domain: usize,
        _observed_epoch: u64,
        aborting: impl Fn() -> bool,
    ) -> ParkOutcome {
        let mb = &self.mailboxes[w];
        let mut token = mb.lock.lock();
        if *token {
            *token = false;
            return ParkOutcome::StrayToken;
        }
        self.by_domain[domain].lock().push(w);
        self.parks.fetch_add(1, Ordering::Relaxed);
        self.parked.fetch_add(1, Ordering::SeqCst);
        // BUG (deliberate): no epoch re-check — a spawn that published
        // between the caller's last search and this point is lost.
        if aborting() {
            return self.withdraw(w, domain, &mut token, mb);
        }
        while !*token {
            mb.cv.wait(&mut token);
        }
        *token = false;
        ParkOutcome::Woken
    }
}
