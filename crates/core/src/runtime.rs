//! The `Htvm` facade: the thread hierarchy over the native pool.
//!
//! * [`Htvm::lgt`] starts a large-grain thread: it gets private memory (a
//!   [`SharedRegion`]) and a completion handle.
//! * [`LgtCtx::spawn_sgt`] invokes a small-grain thread: a stealable job
//!   with its own [`Frame`]; it sees the LGT memory through the context.
//! * [`SgtCtx::tgt_graph`] runs a tiny-grain thread graph inline, sharing
//!   the SGT frame.
//!
//! Completion tracking is dataflow, not fork-join: each LGT keeps an
//! outstanding-SGT counter and fires an [`IVar`] when it drains, so joining
//! an LGT never blocks a pool worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::frame::Frame;
use crate::ids::{IdGen, LgtId, SgtId};
use crate::native::{Pool, PoolStats, WorkerCtx};
use crate::region::SharedRegion;
use crate::sync::IVar;
use crate::tgt::TgtGraph;

/// Configuration of the native HTVM runtime.
#[derive(Debug, Clone)]
pub struct HtvmConfig {
    /// Worker threads of the SGT pool. Defaults to the number of available
    /// CPUs.
    pub workers: usize,
    /// Words of private memory given to each LGT.
    pub lgt_memory_words: usize,
    /// Slots in each SGT frame.
    pub frame_slots: usize,
}

impl Default for HtvmConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            lgt_memory_words: 1 << 16,
            frame_slots: 16,
        }
    }
}

impl HtvmConfig {
    /// A config with a specific worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

struct LgtShared {
    id: LgtId,
    memory: SharedRegion,
    /// Outstanding SGTs + 1 for the LGT body itself.
    outstanding: AtomicU64,
    done: IVar<()>,
    sgt_ids: IdGen,
    frame_slots: usize,
}

impl LgtShared {
    fn retire_one(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.put(());
        }
    }
}

/// Retires one outstanding count on drop — including during unwinding, so
/// a panicking LGT/SGT body (contained by the pool) cannot leak the count
/// and wedge [`LgtHandle::join`] forever.
struct RetireGuard(Arc<LgtShared>);

impl Drop for RetireGuard {
    fn drop(&mut self) {
        self.0.retire_one();
    }
}

/// The native HTVM runtime.
pub struct Htvm {
    pool: Arc<Pool>,
    cfg: HtvmConfig,
    lgt_ids: IdGen,
}

impl Htvm {
    /// Start the runtime.
    pub fn new(cfg: HtvmConfig) -> Self {
        Self {
            pool: Arc::new(Pool::new(cfg.workers)),
            cfg,
            lgt_ids: IdGen::new(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Pool activity counters (steals double as migration counts).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Invoke a large-grain thread. The body runs on the pool; use the
    /// returned handle to join.
    pub fn lgt<F>(&self, body: F) -> LgtHandle
    where
        F: FnOnce(&LgtCtx) + Send + 'static,
    {
        let shared = Arc::new(LgtShared {
            id: LgtId(self.lgt_ids.next()),
            memory: SharedRegion::new(self.cfg.lgt_memory_words),
            outstanding: AtomicU64::new(1),
            done: IVar::new(),
            sgt_ids: IdGen::new(),
            frame_slots: self.cfg.frame_slots,
        });
        let handle = LgtHandle {
            shared: shared.clone(),
        };
        self.pool.spawn(move |worker| {
            let _retire = RetireGuard(shared.clone());
            let ctx = LgtCtx {
                shared: &shared,
                worker,
            };
            body(&ctx);
        });
        handle
    }

    /// Run a body as an LGT and join it (convenience).
    pub fn run_lgt<F>(&self, body: F)
    where
        F: FnOnce(&LgtCtx) + Send + 'static,
    {
        self.lgt(body).join();
    }
}

/// Join handle of a large-grain thread.
pub struct LgtHandle {
    shared: Arc<LgtShared>,
}

impl LgtHandle {
    /// The LGT's id.
    pub fn id(&self) -> LgtId {
        self.shared.id
    }

    /// Block until the LGT body and every SGT it (transitively) spawned
    /// have completed.
    ///
    /// Spins briefly before blocking: phase-structured callers join at a
    /// cadence of a few hundred microseconds, and a full blocking wake
    /// costs that much by itself on virtualized hosts.
    pub fn join(&self) {
        for _ in 0..256 {
            if self.shared.done.is_full() {
                return;
            }
            std::thread::yield_now();
        }
        self.shared.done.get();
    }

    /// Non-blocking completion probe.
    pub fn is_done(&self) -> bool {
        self.shared.done.is_full()
    }

    /// The LGT's private memory (valid after or during the run).
    pub fn memory(&self) -> SharedRegion {
        self.shared.memory.clone()
    }
}

/// Context visible to an LGT body.
pub struct LgtCtx<'a> {
    shared: &'a Arc<LgtShared>,
    worker: &'a WorkerCtx<'a>,
}

impl<'a> LgtCtx<'a> {
    /// The LGT's id.
    pub fn id(&self) -> LgtId {
        self.shared.id
    }

    /// The LGT's private memory, visible to all of its SGTs (§3.1.1: "a
    /// group of SGTs invoked from an LGT will see the private memory of the
    /// LGT").
    pub fn memory(&self) -> &SharedRegion {
        &self.shared.memory
    }

    /// Invoke a small-grain thread.
    pub fn spawn_sgt<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, false);
    }

    /// Invoke an SGT via the global queue (no locality preference) — used
    /// when the spawner knows the work should spread immediately.
    pub fn spawn_sgt_spread<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, true);
    }

    /// Number of pool workers (for partitioning decisions).
    pub fn workers(&self) -> usize {
        self.worker.workers()
    }
}

fn spawn_sgt_impl<F>(shared: &Arc<LgtShared>, worker: &WorkerCtx<'_>, body: F, spread: bool)
where
    F: FnOnce(&SgtCtx) + Send + 'static,
{
    shared.outstanding.fetch_add(1, Ordering::AcqRel);
    let shared = shared.clone();
    let job = move |w: &WorkerCtx<'_>| {
        let _retire = RetireGuard(shared.clone());
        let frame = Frame::new(shared.frame_slots);
        let ctx = SgtCtx {
            shared: &shared,
            worker: w,
            frame,
            id: SgtId(shared.sgt_ids.next()),
        };
        body(&ctx);
    };
    if spread {
        worker.spawn_global(job);
    } else {
        worker.spawn(job);
    }
}

/// Context visible to an SGT body.
pub struct SgtCtx<'a> {
    shared: &'a Arc<LgtShared>,
    worker: &'a WorkerCtx<'a>,
    /// This invocation's private frame.
    pub frame: Frame,
    id: SgtId,
}

impl<'a> SgtCtx<'a> {
    /// This SGT invocation's id.
    pub fn id(&self) -> SgtId {
        self.id
    }

    /// The enclosing LGT's private memory.
    pub fn memory(&self) -> &SharedRegion {
        &self.shared.memory
    }

    /// Spawn a sibling/child SGT (same LGT).
    pub fn spawn_sgt<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, false);
    }

    /// Spawn a sibling/child SGT via the global queue (no locality
    /// preference) — the SGT-level analogue of [`LgtCtx::spawn_sgt_spread`].
    pub fn spawn_sgt_spread<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, true);
    }

    /// Build a TGT graph whose fibers share a fresh frame of `slots` slots;
    /// run it inline with [`TgtGraph::run`].
    pub fn tgt_graph(&self, slots: usize) -> TgtGraph {
        TgtGraph::new(slots)
    }

    /// Worker id executing this SGT (affinity diagnostics).
    pub fn worker_id(&self) -> crate::ids::WorkerId {
        self.worker.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Htvm {
        Htvm::new(HtvmConfig::with_workers(4))
    }

    #[test]
    fn lgt_join_waits_for_all_sgts() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            for i in 0..64 {
                let mem = mem.clone();
                lgt.spawn_sgt(move |_| {
                    mem.fetch_add(i % 8, 1);
                });
            }
        });
        h.join();
        let mem = h.memory();
        let total: u64 = (0..8).map(|i| mem.read(i)).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn nested_sgt_spawns_are_tracked() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            for _ in 0..4 {
                let mem = mem.clone();
                lgt.spawn_sgt(move |sgt| {
                    for _ in 0..4 {
                        let mem = mem.clone();
                        sgt.spawn_sgt(move |_| {
                            mem.fetch_add(0, 1);
                        });
                    }
                });
            }
        });
        h.join();
        assert_eq!(h.memory().read(0), 16);
    }

    #[test]
    fn sgts_see_lgt_private_memory() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            lgt.memory().write(5, 123);
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(move |sgt| {
                let v = sgt.memory().read(5);
                mem.write(6, v * 2);
            });
        });
        h.join();
        assert_eq!(h.memory().read(6), 246);
    }

    #[test]
    fn tgt_graph_runs_inside_sgt() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(move |sgt| {
                let mut g = sgt.tgt_graph(2);
                let a = g.fiber(|c| c.frame.set(0, 20));
                let b = g.fiber(|c| c.frame.set(1, c.frame.get(0) + 1));
                g.depends(b, a);
                let frame = g.run();
                mem.write(0, frame.get(1));
            });
        });
        h.join();
        assert_eq!(h.memory().read(0), 21);
    }

    #[test]
    fn two_lgts_have_disjoint_memory() {
        let htvm = rt();
        let h1 = htvm.lgt(|lgt| lgt.memory().write(0, 1));
        let h2 = htvm.lgt(|lgt| lgt.memory().write(0, 2));
        h1.join();
        h2.join();
        assert_eq!(h1.memory().read(0), 1);
        assert_eq!(h2.memory().read(0), 2);
        assert_ne!(h1.id(), h2.id());
    }

    #[test]
    fn is_done_transitions() {
        let htvm = rt();
        let h = htvm.lgt(|_| {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        // Not a strict guarantee, but 20 ms is far beyond spawn latency.
        h.join();
        assert!(h.is_done());
    }

    #[test]
    fn run_lgt_convenience() {
        let htvm = rt();
        htvm.run_lgt(|lgt| {
            lgt.memory().write(0, 7);
        });
    }

    #[test]
    fn panicking_sgt_does_not_wedge_join() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(|_| panic!("injected SGT failure"));
            lgt.spawn_sgt(move |_| {
                mem.fetch_add(0, 1);
            });
        });
        h.join(); // must return despite the panic
        assert_eq!(h.memory().read(0), 1, "sibling SGT still ran");
        assert_eq!(htvm.pool_stats().panics, 1);
    }

    #[test]
    fn panicking_lgt_body_does_not_wedge_join() {
        let htvm = rt();
        let h = htvm.lgt(|_| panic!("injected LGT failure"));
        h.join();
        assert!(h.is_done());
    }

    #[test]
    fn sgt_spread_from_sgt_completes() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(move |sgt| {
                for _ in 0..16 {
                    let mem = mem.clone();
                    sgt.spawn_sgt_spread(move |_| {
                        mem.fetch_add(0, 1);
                    });
                }
            });
        });
        h.join();
        assert_eq!(h.memory().read(0), 16);
    }

    #[test]
    fn spread_spawns_complete() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            for _ in 0..32 {
                let mem = mem.clone();
                lgt.spawn_sgt_spread(move |_| {
                    mem.fetch_add(0, 1);
                });
            }
        });
        h.join();
        assert_eq!(h.memory().read(0), 32);
    }
}
