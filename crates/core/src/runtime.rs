//! The `Htvm` facade: the thread hierarchy over the native pool.
//!
//! * [`Htvm::lgt`] starts a large-grain thread: it gets private memory (a
//!   [`SharedRegion`]) and a completion handle. [`Htvm::lgt_in`] adds a
//!   locality-domain affinity hint: the LGT's whole SGT subtree is kept in
//!   that domain of the pool's [`Topology`] unless imbalance forces a
//!   remote steal.
//! * [`LgtCtx::spawn_sgt`] invokes a small-grain thread: a stealable job
//!   with its own [`Frame`]; it sees the LGT memory through the context.
//!   SGTs land on the spawning worker's deque and migrate in proximity
//!   order — domain siblings first, remote domains only when a whole
//!   domain has run dry (see [`crate::native`]).
//! * [`SgtCtx::tgt_graph`] runs a tiny-grain thread graph inline, sharing
//!   the SGT frame.
//!
//! Completion tracking is dataflow, not fork-join: each LGT keeps an
//! outstanding-SGT counter and fires an [`IVar`] when it drains, so joining
//! an LGT never blocks a pool worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::frame::Frame;
use crate::ids::{DomainId, IdGen, LgtId, SgtId};
use crate::native::{Pool, PoolStats, WorkerCtx};
use crate::region::SharedRegion;
use crate::sync::IVar;
use crate::tgt::TgtGraph;
use crate::topology::Topology;

/// Configuration of the native HTVM runtime.
#[derive(Debug, Clone)]
pub struct HtvmConfig {
    /// Locality-domain layout of the SGT pool (worker count and grouping).
    /// Defaults to a flat topology over the available CPUs.
    pub topology: Topology,
    /// Words of private memory given to each LGT.
    pub lgt_memory_words: usize,
    /// Slots in each SGT frame.
    pub frame_slots: usize,
}

impl Default for HtvmConfig {
    fn default() -> Self {
        Self {
            topology: Topology::default(),
            lgt_memory_words: 1 << 16,
            frame_slots: 16,
        }
    }
}

impl HtvmConfig {
    /// A config with a specific worker count and no locality grouping.
    pub fn with_workers(workers: usize) -> Self {
        Self::with_topology(Topology::flat(workers))
    }

    /// A config with an explicit locality-domain topology.
    pub fn with_topology(topology: Topology) -> Self {
        Self {
            topology,
            ..Self::default()
        }
    }
}

struct LgtShared {
    id: LgtId,
    memory: SharedRegion,
    /// Outstanding SGTs + 1 for the LGT body itself.
    outstanding: AtomicU64,
    done: IVar<()>,
    sgt_ids: IdGen,
    frame_slots: usize,
    /// Locality-domain affinity: when set, SGTs spawned from outside the
    /// home domain are routed back to its injector instead of the local
    /// deque, so the subtree stays home unless imbalance steals it away.
    home: Option<DomainId>,
}

impl LgtShared {
    fn retire_one(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.put(());
        }
    }
}

/// Retires one outstanding count on drop — including during unwinding, so
/// a panicking LGT/SGT body (contained by the pool) cannot leak the count
/// and wedge [`LgtHandle::join`] forever.
struct RetireGuard(Arc<LgtShared>);

impl Drop for RetireGuard {
    fn drop(&mut self) {
        self.0.retire_one();
    }
}

/// The native HTVM runtime.
pub struct Htvm {
    pool: Arc<Pool>,
    cfg: HtvmConfig,
    lgt_ids: IdGen,
}

impl Htvm {
    /// Start the runtime.
    pub fn new(cfg: HtvmConfig) -> Self {
        Self {
            pool: Arc::new(Pool::with_topology(cfg.topology.clone())),
            cfg,
            lgt_ids: IdGen::new(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The pool's locality-domain topology.
    pub fn topology(&self) -> &Topology {
        self.pool.topology()
    }

    /// Number of locality domains.
    pub fn num_domains(&self) -> usize {
        self.pool.num_domains()
    }

    /// Pool activity counters (steals double as migration counts; the
    /// local/remote split measures how often migration crossed a domain
    /// boundary, and the park/wake counters measure what idling cost —
    /// `parks` stays flat on an idle runtime, `wakes_escalated` counts
    /// wakeups that could not be satisfied in the spawn's home domain).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The underlying native pool — the escape hatch for executor layers
    /// (e.g. `htvm_ssp::exec`) that schedule iteration groups directly with
    /// domain placement instead of going through the LGT/SGT facade.
    pub fn pool(&self) -> Arc<Pool> {
        self.pool.clone()
    }

    /// Invoke a large-grain thread with no placement preference. The body
    /// runs on the pool; use the returned handle to join.
    pub fn lgt<F>(&self, body: F) -> LgtHandle
    where
        F: FnOnce(&LgtCtx) + Send + 'static,
    {
        self.lgt_impl(None, body)
    }

    /// Invoke a large-grain thread with a locality-domain affinity hint:
    /// the body starts in `domain` and every SGT of its subtree is kept
    /// there unless imbalance forces a remote steal.
    ///
    /// # Panics
    /// Panics if `domain` is out of range for the configured topology.
    pub fn lgt_in<F>(&self, domain: DomainId, body: F) -> LgtHandle
    where
        F: FnOnce(&LgtCtx) + Send + 'static,
    {
        self.lgt_impl(Some(domain), body)
    }

    fn lgt_impl<F>(&self, home: Option<DomainId>, body: F) -> LgtHandle
    where
        F: FnOnce(&LgtCtx) + Send + 'static,
    {
        let shared = Arc::new(LgtShared {
            id: LgtId(self.lgt_ids.next()),
            memory: SharedRegion::new(self.cfg.lgt_memory_words),
            outstanding: AtomicU64::new(1),
            done: IVar::new(),
            sgt_ids: IdGen::new(),
            frame_slots: self.cfg.frame_slots,
            home,
        });
        let handle = LgtHandle {
            shared: shared.clone(),
        };
        let job = move |worker: &WorkerCtx<'_>| {
            let _retire = RetireGuard(shared.clone());
            let ctx = LgtCtx {
                shared: &shared,
                worker,
            };
            body(&ctx);
        };
        match home {
            Some(domain) => self.pool.spawn_in(domain, job),
            None => self.pool.spawn(job),
        }
        handle
    }

    /// Run a body as an LGT and join it (convenience).
    pub fn run_lgt<F>(&self, body: F)
    where
        F: FnOnce(&LgtCtx) + Send + 'static,
    {
        self.lgt(body).join();
    }
}

/// Join handle of a large-grain thread.
pub struct LgtHandle {
    shared: Arc<LgtShared>,
}

impl LgtHandle {
    /// The LGT's id.
    pub fn id(&self) -> LgtId {
        self.shared.id
    }

    /// Block until the LGT body and every SGT it (transitively) spawned
    /// have completed.
    ///
    /// Spins briefly before blocking: phase-structured callers join at a
    /// cadence of a few hundred microseconds, and a full blocking wake
    /// costs that much by itself on virtualized hosts.
    pub fn join(&self) {
        for _ in 0..256 {
            if self.shared.done.is_full() {
                return;
            }
            std::thread::yield_now();
        }
        self.shared.done.get();
    }

    /// Non-blocking completion probe.
    pub fn is_done(&self) -> bool {
        self.shared.done.is_full()
    }

    /// The LGT's private memory (valid after or during the run).
    pub fn memory(&self) -> SharedRegion {
        self.shared.memory.clone()
    }
}

/// Context visible to an LGT body.
pub struct LgtCtx<'a> {
    shared: &'a Arc<LgtShared>,
    worker: &'a WorkerCtx<'a>,
}

impl<'a> LgtCtx<'a> {
    /// The LGT's id.
    pub fn id(&self) -> LgtId {
        self.shared.id
    }

    /// The LGT's private memory, visible to all of its SGTs (§3.1.1: "a
    /// group of SGTs invoked from an LGT will see the private memory of the
    /// LGT").
    pub fn memory(&self) -> &SharedRegion {
        &self.shared.memory
    }

    /// Invoke a small-grain thread.
    pub fn spawn_sgt<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, SgtTarget::Local);
    }

    /// Invoke an SGT via the global queue (no locality preference) — used
    /// when the spawner knows the work should spread immediately.
    pub fn spawn_sgt_spread<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, SgtTarget::Spread);
    }

    /// Invoke an SGT with an explicit locality-domain placement: it lands
    /// in `domain`'s injector regardless of the LGT's home domain — for
    /// schedulers that hand-place work (group partitioners, pinned
    /// pipeline stages) while keeping LGT completion tracking.
    ///
    /// # Panics
    /// Panics if `domain` is out of range for the pool's topology.
    pub fn spawn_sgt_in<F>(&self, domain: DomainId, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, SgtTarget::Domain(domain));
    }

    /// Number of pool workers (for partitioning decisions).
    pub fn workers(&self) -> usize {
        self.worker.workers()
    }

    /// Number of locality domains of the pool.
    pub fn num_domains(&self) -> usize {
        self.worker.num_domains()
    }
}

/// Where a freshly spawned SGT should land.
#[derive(Debug, Clone, Copy)]
enum SgtTarget {
    /// The spawning worker's deque (or the LGT's home-domain injector if
    /// the subtree drifted out of its home domain).
    Local,
    /// The global injector — spread immediately.
    Spread,
    /// A specific domain's injector.
    Domain(DomainId),
}

fn spawn_sgt_impl<F>(shared: &Arc<LgtShared>, worker: &WorkerCtx<'_>, body: F, target: SgtTarget)
where
    F: FnOnce(&SgtCtx) + Send + 'static,
{
    shared.outstanding.fetch_add(1, Ordering::AcqRel);
    let home = shared.home;
    let shared = shared.clone();
    let job = move |w: &WorkerCtx<'_>| {
        let _retire = RetireGuard(shared.clone());
        let frame = Frame::new(shared.frame_slots);
        let ctx = SgtCtx {
            shared: &shared,
            worker: w,
            frame,
            id: SgtId(shared.sgt_ids.next()),
        };
        body(&ctx);
    };
    match target {
        SgtTarget::Spread => worker.spawn_global(job),
        SgtTarget::Domain(domain) => worker.spawn_in_domain(domain, job),
        SgtTarget::Local => match home {
            // A subtree that drifted out of its home domain (a remote
            // steal took the parent) routes new SGTs back home instead of
            // growing the remote worker's deque.
            Some(domain) if domain != worker.domain => worker.spawn_in_domain(domain, job),
            _ => worker.spawn(job),
        },
    }
}

/// Context visible to an SGT body.
pub struct SgtCtx<'a> {
    shared: &'a Arc<LgtShared>,
    worker: &'a WorkerCtx<'a>,
    /// This invocation's private frame.
    pub frame: Frame,
    id: SgtId,
}

impl<'a> SgtCtx<'a> {
    /// This SGT invocation's id.
    pub fn id(&self) -> SgtId {
        self.id
    }

    /// The enclosing LGT's private memory.
    pub fn memory(&self) -> &SharedRegion {
        &self.shared.memory
    }

    /// Spawn a sibling/child SGT (same LGT).
    pub fn spawn_sgt<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, SgtTarget::Local);
    }

    /// Spawn a sibling/child SGT via the global queue (no locality
    /// preference) — the SGT-level analogue of [`LgtCtx::spawn_sgt_spread`].
    pub fn spawn_sgt_spread<F>(&self, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, SgtTarget::Spread);
    }

    /// Spawn a sibling/child SGT with explicit domain placement — the
    /// SGT-level analogue of [`LgtCtx::spawn_sgt_in`].
    ///
    /// # Panics
    /// Panics if `domain` is out of range for the pool's topology.
    pub fn spawn_sgt_in<F>(&self, domain: DomainId, body: F)
    where
        F: FnOnce(&SgtCtx) + Send + 'static,
    {
        spawn_sgt_impl(self.shared, self.worker, body, SgtTarget::Domain(domain));
    }

    /// Build a TGT graph whose fibers share a fresh frame of `slots` slots;
    /// run it inline with [`TgtGraph::run`].
    pub fn tgt_graph(&self, slots: usize) -> TgtGraph {
        TgtGraph::new(slots)
    }

    /// Worker id executing this SGT (affinity diagnostics).
    pub fn worker_id(&self) -> crate::ids::WorkerId {
        self.worker.id
    }

    /// Locality domain of the worker executing this SGT (affinity
    /// diagnostics: compare against the LGT's home domain to see whether
    /// the subtree stayed home).
    pub fn domain(&self) -> DomainId {
        self.worker.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Htvm {
        Htvm::new(HtvmConfig::with_workers(4))
    }

    #[test]
    fn lgt_join_waits_for_all_sgts() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            for i in 0..64 {
                let mem = mem.clone();
                lgt.spawn_sgt(move |_| {
                    mem.fetch_add(i % 8, 1);
                });
            }
        });
        h.join();
        let mem = h.memory();
        let total: u64 = (0..8).map(|i| mem.read(i)).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn nested_sgt_spawns_are_tracked() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            for _ in 0..4 {
                let mem = mem.clone();
                lgt.spawn_sgt(move |sgt| {
                    for _ in 0..4 {
                        let mem = mem.clone();
                        sgt.spawn_sgt(move |_| {
                            mem.fetch_add(0, 1);
                        });
                    }
                });
            }
        });
        h.join();
        assert_eq!(h.memory().read(0), 16);
    }

    #[test]
    fn sgts_see_lgt_private_memory() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            lgt.memory().write(5, 123);
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(move |sgt| {
                let v = sgt.memory().read(5);
                mem.write(6, v * 2);
            });
        });
        h.join();
        assert_eq!(h.memory().read(6), 246);
    }

    #[test]
    fn tgt_graph_runs_inside_sgt() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(move |sgt| {
                let mut g = sgt.tgt_graph(2);
                let a = g.fiber(|c| c.frame.set(0, 20));
                let b = g.fiber(|c| c.frame.set(1, c.frame.get(0) + 1));
                g.depends(b, a);
                let frame = g.run();
                mem.write(0, frame.get(1));
            });
        });
        h.join();
        assert_eq!(h.memory().read(0), 21);
    }

    #[test]
    fn two_lgts_have_disjoint_memory() {
        let htvm = rt();
        let h1 = htvm.lgt(|lgt| lgt.memory().write(0, 1));
        let h2 = htvm.lgt(|lgt| lgt.memory().write(0, 2));
        h1.join();
        h2.join();
        assert_eq!(h1.memory().read(0), 1);
        assert_eq!(h2.memory().read(0), 2);
        assert_ne!(h1.id(), h2.id());
    }

    #[test]
    fn is_done_transitions() {
        let htvm = rt();
        let h = htvm.lgt(|_| {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        // Not a strict guarantee, but 20 ms is far beyond spawn latency.
        h.join();
        assert!(h.is_done());
    }

    #[test]
    fn run_lgt_convenience() {
        let htvm = rt();
        htvm.run_lgt(|lgt| {
            lgt.memory().write(0, 7);
        });
    }

    #[test]
    fn panicking_sgt_does_not_wedge_join() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(|_| panic!("injected SGT failure"));
            lgt.spawn_sgt(move |_| {
                mem.fetch_add(0, 1);
            });
        });
        h.join(); // must return despite the panic
        assert_eq!(h.memory().read(0), 1, "sibling SGT still ran");
        assert_eq!(htvm.pool_stats().panics, 1);
    }

    #[test]
    fn panicking_lgt_body_does_not_wedge_join() {
        let htvm = rt();
        let h = htvm.lgt(|_| panic!("injected LGT failure"));
        h.join();
        assert!(h.is_done());
    }

    #[test]
    fn sgt_spread_from_sgt_completes() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            lgt.spawn_sgt(move |sgt| {
                for _ in 0..16 {
                    let mem = mem.clone();
                    sgt.spawn_sgt_spread(move |_| {
                        mem.fetch_add(0, 1);
                    });
                }
            });
        });
        h.join();
        assert_eq!(h.memory().read(0), 16);
    }

    #[test]
    fn lgt_with_domain_affinity_completes() {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::domains(2, 2)));
        assert_eq!(htvm.num_domains(), 2);
        assert_eq!(htvm.workers(), 4);
        let h = htvm.lgt_in(DomainId(1), |lgt| {
            let mem = lgt.memory().clone();
            for _ in 0..32 {
                let mem = mem.clone();
                lgt.spawn_sgt(move |sgt| {
                    // The ctx must report a valid domain either way.
                    assert!(sgt.domain().0 < 2);
                    mem.fetch_add(0, 1);
                });
            }
        });
        h.join();
        assert_eq!(h.memory().read(0), 32);
    }

    #[test]
    fn every_domain_can_host_an_lgt() {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::domains(3, 1)));
        let handles: Vec<_> = (0..3)
            .map(|d| {
                htvm.lgt_in(DomainId(d), move |lgt| {
                    lgt.memory().write(0, d + 1);
                })
            })
            .collect();
        for (d, h) in handles.iter().enumerate() {
            h.join();
            assert_eq!(h.memory().read(0), d as u64 + 1);
        }
    }

    #[test]
    fn domain_targeted_sgt_spawns_complete_and_are_recorded() {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::domains(2, 2)));
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            for i in 0..16u64 {
                let mem = mem.clone();
                // Alternate explicit placements from the LGT level…
                lgt.spawn_sgt_in(DomainId(i % 2), move |sgt| {
                    // …and from the SGT level.
                    let mem = mem.clone();
                    sgt.spawn_sgt_in(DomainId((i + 1) % 2), move |_| {
                        mem.fetch_add(0, 1);
                    });
                });
            }
        });
        h.join();
        assert_eq!(h.memory().read(0), 16);
        // Every explicit placement is recorded per domain.
        let stats = htvm.pool_stats();
        assert_eq!(stats.total_domain_spawns(), 32);
        assert_eq!(stats.domain_spawns, vec![16, 16]);
    }

    #[test]
    fn spread_spawns_complete() {
        let htvm = rt();
        let h = htvm.lgt(|lgt| {
            let mem = lgt.memory().clone();
            for _ in 0..32 {
                let mem = mem.clone();
                lgt.spawn_sgt_spread(move |_| {
                    mem.fetch_add(0, 1);
                });
            }
        });
        h.join();
        assert_eq!(h.memory().read(0), 32);
    }
}
