//! Bounded per-tenant admission queues — the serving layer's
//! backpressure boundary.
//!
//! A serving front-end must not let one misbehaving tenant queue
//! unbounded work into the pool's injectors: admission control happens
//! *before* dispatch, in a small bounded queue per tenant. A full
//! queue rejects at submit time (the caller gets its item back and
//! surfaces a typed backpressure error); a closed queue rejects
//! everything (tenant teardown). The dispatcher drains these queues
//! into the pool under the weighted deficit-round-robin policy
//! (`htvm_serve::Wdrr`).
//!
//! The queue is a plain mutex-protected ring — admission is a
//! millisecond-scale boundary, not the nanosecond-scale steal path, so
//! it does not need the lock-free spine. The mutex comes from
//! `crate::chk`, so under `--features check` the producer→dispatcher
//! handoff runs on the schedule explorer's instrumented twins and the
//! `schedule_explore` suite can drive the submit/pop/close races
//! deterministically.

use std::collections::VecDeque;

use crate::chk::Mutex;

/// Why [`AdmissionQueue::try_push`] refused an item; the item rides
/// along so the caller can resolve it (nothing is silently dropped).
#[derive(Debug)]
pub enum AdmitError<T> {
    /// The queue is at capacity — backpressure; try again later.
    Full(T),
    /// The queue has been closed — the tenant is gone; do not retry.
    Closed(T),
}

impl<T> AdmitError<T> {
    /// Recover the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            AdmitError::Full(item) | AdmitError::Closed(item) => item,
        }
    }
}

struct Q<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Items accepted over the queue's lifetime.
    pushed: u64,
    /// Items refused over the queue's lifetime (full or closed).
    rejected: u64,
}

/// A bounded MPMC admission queue (see the [module docs](self)).
pub struct AdmissionQueue<T> {
    inner: Mutex<Q<T>>,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Q {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                pushed: 0,
                rejected: 0,
            }),
            capacity,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit `item`, or hand it back with the reason.
    pub fn try_push(&self, item: T) -> Result<(), AdmitError<T>> {
        let mut q = self.inner.lock();
        if q.closed {
            q.rejected += 1;
            return Err(AdmitError::Closed(item));
        }
        if q.items.len() >= self.capacity {
            q.rejected += 1;
            return Err(AdmitError::Full(item));
        }
        q.items.push_back(item);
        q.pushed += 1;
        Ok(())
    }

    /// Dequeue the oldest admitted item (FIFO); `None` when empty. A
    /// closed queue still pops — close stops admission, not drainage.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().items.pop_front()
    }

    /// Observe the head item without dequeuing it (the dispatcher reads
    /// its cost to decide whether the tenant's deficit covers it).
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.inner.lock().items.front().map(f)
    }

    /// Dequeue the *newest* admitted item — the shedding side: under
    /// overload the freshest work is dropped first, preserving the
    /// oldest requests' FIFO latency order.
    pub fn pop_newest(&self) -> Option<T> {
        self.inner.lock().items.pop_back()
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().items.is_empty()
    }

    /// Stop admitting (idempotent). Already-queued items remain
    /// poppable/drainable.
    pub fn close(&self) {
        self.inner.lock().closed = true;
    }

    /// Whether [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Remove and return everything currently queued (oldest first).
    pub fn drain(&self) -> Vec<T> {
        self.inner.lock().items.drain(..).collect()
    }

    /// Items accepted over the queue's lifetime.
    pub fn pushed(&self) -> u64 {
        self.inner.lock().pushed
    }

    /// Items refused over the queue's lifetime (full or closed).
    pub fn rejected(&self) -> u64 {
        self.inner.lock().rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(AdmitError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek(|&x| x), Some(1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 2);
        assert_eq!(q.rejected(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(7).unwrap();
        assert!(q.try_push(8).is_err());
    }

    #[test]
    fn close_rejects_but_still_drains() {
        let q = AdmissionQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(q.is_closed());
        match q.try_push("c") {
            Err(AdmitError::Closed("c")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.drain(), vec!["a", "b"]);
        assert!(q.is_empty());
        // Close is idempotent.
        q.close();
        assert_eq!(q.rejected(), 1);
    }

    #[test]
    fn pop_newest_sheds_freshest_first() {
        let q = AdmissionQueue::new(8);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_newest(), Some(3));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop_newest(), Some(2));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn into_inner_recovers_rejected_item() {
        let q = AdmissionQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().into_inner(), 2);
        q.close();
        assert_eq!(q.try_push(3).unwrap_err().into_inner(), 3);
    }
}
