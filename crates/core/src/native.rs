//! The native work-stealing pool that executes SGTs on OS threads.
//!
//! Each worker owns a LIFO deque (good locality for the spawn-subtree it is
//! working on); spawns from outside workers go to a global injector; idle
//! workers steal FIFO from peers — the classic Cilk/EARTH discipline the
//! paper's SGT level inherits. Work stealing doubles as the *dynamic load
//! adaptation* mechanism of §2 at the SGT grain: threads migrate to idle
//! units automatically.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::ids::WorkerId;

type Job = Box<dyn FnOnce(&WorkerCtx) + Send>;

/// Per-worker counters, readable after the run.
#[derive(Debug, Default)]
struct WorkerCounters {
    executed: AtomicU64,
    stolen: AtomicU64,
}

/// A snapshot of pool activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed per worker.
    pub executed: Vec<u64>,
    /// Jobs obtained by stealing, per worker.
    pub stolen: Vec<u64>,
    /// Jobs that panicked (contained; the worker survives).
    pub panics: u64,
}

impl PoolStats {
    /// Total jobs executed.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Total steals.
    pub fn total_stolen(&self) -> u64 {
        self.stolen.iter().sum()
    }

    /// Coefficient of variation of per-worker executed counts — the load
    /// imbalance measure used by the experiments (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.executed.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.total_executed() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .executed
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    counters: Vec<WorkerCounters>,
    /// Jobs spawned but not yet finished (includes currently-running).
    active: AtomicUsize,
    /// Jobs whose body panicked (the unwind is contained per job).
    panics: AtomicU64,
    shutdown: AtomicBool,
    /// Sleep/wake coordination for idle workers.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Quiescence coordination for `wait_quiescent`.
    quiet_lock: Mutex<()>,
    quiet_cv: Condvar,
}

/// Execution context handed to every SGT body.
pub struct WorkerCtx<'a> {
    shared: &'a Arc<Shared>,
    deque: &'a Deque<Job>,
    /// This worker's id.
    pub id: WorkerId,
}

impl<'a> WorkerCtx<'a> {
    /// Spawn a child job onto this worker's own deque (LIFO — depth-first,
    /// cache-friendly; stealable by idle peers).
    pub fn spawn(&self, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        self.deque.push(Box::new(job));
        self.shared.wake_one();
    }

    /// Spawn to the global injector (round-robin start point; used when the
    /// spawner wants to *avoid* keeping the work local).
    pub fn spawn_global(&self, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Box::new(job));
        self.shared.wake_all();
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.shared.stealers.len()
    }
}

impl Shared {
    fn wake_one(&self) {
        let _g = self.sleep_lock.lock();
        self.sleep_cv.notify_one();
    }

    fn wake_all(&self) {
        let _g = self.sleep_lock.lock();
        self.sleep_cv.notify_all();
    }

    fn job_finished(&self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.quiet_lock.lock();
            self.quiet_cv.notify_all();
        }
    }
}

/// A fixed-size work-stealing thread pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spin up `workers` OS threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let deques: Vec<Deque<Job>> = (0..workers).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let counters = (0..workers).map(|_| WorkerCounters::default()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            counters,
            active: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            quiet_lock: Mutex::new(()),
            quiet_cv: Condvar::new(),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(i, deque)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("htvm-worker-{i}"))
                    .spawn(move || worker_loop(i, deque, shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Spawn a job from outside the pool.
    pub fn spawn(&self, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Box::new(job));
        self.shared.wake_all();
    }

    /// Block until every spawned job (including transitively spawned
    /// children) has finished.
    pub fn wait_quiescent(&self) {
        let mut g = self.shared.quiet_lock.lock();
        while self.shared.active.load(Ordering::Acquire) != 0 {
            self.shared.quiet_cv.wait(&mut g);
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.shared.stealers.len()
    }

    /// Current activity snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self
                .shared
                .counters
                .iter()
                .map(|c| c.executed.load(Ordering::Relaxed))
                .collect(),
            stolen: self
                .shared
                .counters
                .iter()
                .map(|c| c.stolen.load(Ordering::Relaxed))
                .collect(),
            panics: self.shared.panics.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Failed full work-search cycles an idle worker tolerates (yielding the
/// CPU each time) before it parks on the condvar. Bulk-synchronous codes
/// re-spawn work within a phase's tail (tens to hundreds of µs); parking
/// there would pay a full futex wake (itself tens to hundreds of µs on
/// virtualized hosts) per phase. Spinning-then-parking is the standard
/// work-stealing discipline (cf. rayon/Cilk); each cycle yields, so the
/// spin donates its core whenever anything else is runnable.
const IDLE_SPINS_BEFORE_PARK: u32 = 512;

fn worker_loop(index: usize, deque: Deque<Job>, shared: Arc<Shared>) {
    let ctx = WorkerCtx {
        shared: &shared,
        deque: &deque,
        id: WorkerId(index as u64),
    };
    let mut idle_spins = 0u32;
    loop {
        // 1. Local work first (LIFO).
        if let Some(job) = deque.pop() {
            idle_spins = 0;
            run_job(&shared, index, &ctx, job, false);
            continue;
        }
        // 2. Global injector.
        match shared.injector.steal_batch_and_pop(&deque) {
            crossbeam::deque::Steal::Success(job) => {
                idle_spins = 0;
                run_job(&shared, index, &ctx, job, false);
                continue;
            }
            crossbeam::deque::Steal::Retry => continue,
            crossbeam::deque::Steal::Empty => {}
        }
        // 3. Steal from peers, starting after self (FIFO victim side).
        let n = shared.stealers.len();
        let mut stolen = None;
        'victims: for off in 1..n {
            let v = (index + off) % n;
            loop {
                match shared.stealers[v].steal() {
                    crossbeam::deque::Steal::Success(job) => {
                        stolen = Some(job);
                        break 'victims;
                    }
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
        if let Some(job) = stolen {
            idle_spins = 0;
            run_job(&shared, index, &ctx, job, true);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // 4. Nothing anywhere: spin politely for a while (new work usually
        // arrives at phase boundaries within microseconds), then park.
        idle_spins += 1;
        if idle_spins < IDLE_SPINS_BEFORE_PARK {
            std::thread::yield_now();
            continue;
        }
        idle_spins = 0;
        let mut g = shared.sleep_lock.lock();
        // Re-check under the lock to avoid missed wakeups.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.active.load(Ordering::Acquire) == 0 || work_invisible(&shared, &deque) {
            shared
                .sleep_cv
                .wait_for(&mut g, std::time::Duration::from_millis(1));
        }
    }
}

/// Cheap check that no work is visible to this worker right now. May
/// spuriously say "true" under contention; the bounded `wait_for` above
/// keeps that harmless.
fn work_invisible(shared: &Shared, deque: &Deque<Job>) -> bool {
    deque.is_empty() && shared.injector.is_empty()
}

fn run_job(shared: &Arc<Shared>, index: usize, ctx: &WorkerCtx, job: Job, was_steal: bool) {
    let c = &shared.counters[index];
    c.executed.fetch_add(1, Ordering::Relaxed);
    if was_steal {
        c.stolen.fetch_add(1, Ordering::Relaxed);
    }
    // Contain panics to the job: an unwinding body must not take down the
    // worker (the pool would silently lose a fraction of its parallelism)
    // nor leak the active count (wait_quiescent would hang forever).
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(ctx))).is_err() {
        shared.panics.fetch_add(1, Ordering::Relaxed);
    }
    shared.job_finished();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    /// Steal/spread assertions observe OS scheduling: on a single-CPU host
    /// one worker can legitimately drain a short run before any peer gets a
    /// timeslice, so those claims are only checked on multicore hosts.
    fn multicore() -> bool {
        std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
    }

    #[test]
    fn runs_all_jobs() {
        let pool = Pool::new(4);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 100);
        assert_eq!(pool.stats().total_executed(), 100);
    }

    #[test]
    fn nested_spawns_are_awaited() {
        let pool = Pool::new(4);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let done = done.clone();
            pool.spawn(move |ctx| {
                for _ in 0..10 {
                    let done = done.clone();
                    ctx.spawn(move |_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn deep_recursion_completes() {
        let pool = Pool::new(4);
        let done = Arc::new(AtomicU64::new(0));
        fn rec(depth: u32, ctx: &WorkerCtx, done: Arc<AtomicU64>) {
            if depth == 0 {
                done.fetch_add(1, Ordering::SeqCst);
                return;
            }
            for _ in 0..2 {
                let done = done.clone();
                ctx.spawn(move |c| rec(depth - 1, c, done));
            }
        }
        let d2 = done.clone();
        pool.spawn(move |ctx| rec(10, ctx, d2));
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1024);
    }

    #[test]
    fn work_spreads_across_workers() {
        let pool = Pool::new(4);
        let seen = Arc::new(Mutex::new(HashSet::new()));
        for _ in 0..400 {
            let seen = seen.clone();
            pool.spawn(move |ctx| {
                // A little spinning makes single-worker monopoly unlikely.
                std::hint::black_box((0..1000).sum::<u64>());
                seen.lock().insert(ctx.id);
            });
        }
        pool.wait_quiescent();
        assert!(
            seen.lock().len() >= 2 || !multicore(),
            "expected at least two workers to participate"
        );
    }

    #[test]
    fn stealing_happens_under_skewed_spawning() {
        let pool = Pool::new(4);
        // One root job spawns all the work locally; others must steal.
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.spawn(move |ctx| {
            for _ in 0..200 {
                let d = d.clone();
                ctx.spawn(move |_| {
                    std::hint::black_box((0..5000).sum::<u64>());
                    d.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 200);
        assert!(
            pool.stats().total_stolen() > 0 || !multicore(),
            "peers should have stolen from the busy worker"
        );
    }

    #[test]
    fn wait_quiescent_with_no_work_returns() {
        let pool = Pool::new(2);
        pool.wait_quiescent();
    }

    #[test]
    fn pool_shuts_down_cleanly() {
        let pool = Pool::new(3);
        pool.spawn(|_| {});
        pool.wait_quiescent();
        drop(pool);
    }

    #[test]
    fn imbalance_metric_behaves() {
        let s = PoolStats {
            executed: vec![10, 10, 10, 10],
            stolen: vec![0; 4],
            panics: 0,
        };
        assert!(s.imbalance() < 1e-9);
        let s2 = PoolStats {
            executed: vec![40, 0, 0, 0],
            stolen: vec![0; 4],
            panics: 0,
        };
        assert!(s2.imbalance() > 1.0);
    }

    #[test]
    fn panicking_job_does_not_hang_quiescence() {
        let pool = Pool::new(2);
        pool.spawn(|_| panic!("injected failure"));
        pool.wait_quiescent();
        assert_eq!(pool.stats().panics, 1);
    }

    #[test]
    fn pool_survives_panics_and_keeps_working() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..50 {
            let done = done.clone();
            pool.spawn(move |_| {
                if i % 5 == 0 {
                    panic!("injected failure {i}");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 40);
        assert_eq!(pool.stats().panics, 10);
        // All workers are still alive and accept new work.
        for _ in 0..10 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn children_of_panicking_job_still_run() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.spawn(move |ctx| {
            for _ in 0..8 {
                let d = d.clone();
                ctx.spawn(move |_| {
                    d.fetch_add(1, Ordering::SeqCst);
                });
            }
            panic!("parent fails after spawning");
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(pool.stats().panics, 1);
    }
}
