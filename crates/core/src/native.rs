//! The native work-stealing pool that executes SGTs on OS threads.
//!
//! Every queue on the spawn/steal path is **lock-free** (the
//! [`crate::deque`] scheduling spine): each worker owns a Chase–Lev LIFO
//! deque (good locality for the spawn-subtree it is working on; owner
//! push/pop never takes a lock or, in the common case, even an RMW);
//! each domain owns a segmented MPMC injector for affinity-directed
//! spawns; spawns from outside the pool go to a global injector of the
//! same kind. Workers are partitioned into **locality domains** (a
//! [`Topology`] mirroring the paper's thread-unit groups). An idle
//! worker searches for work in **proximity order**:
//!
//! 1. its own deque (LIFO),
//! 2. sibling deques within its domain (FIFO victim side — a *local*
//!    steal),
//! 3. its domain's injector (home work, not a steal),
//! 4. remote domains, nearest ring order — their injectors and their
//!    workers' deques (a *remote* steal),
//! 5. the global injector.
//!
//! Inside a domain this is still the classic Cilk/EARTH discipline the
//! paper's SGT level inherits; across domains it is the hierarchical
//! stealing of Thibault et al.'s BubbleSched line: migration stays cheap
//! (in-domain) until imbalance forces it to cross a domain boundary. Work
//! stealing doubles as the *dynamic load adaptation* mechanism of §2 at
//! the SGT grain, and the local/remote steal counters in [`PoolStats`]
//! measure how often that adaptation had to pay the remote price.
//!
//! # Idle protocol: the epoch-stamped sleeper registry
//!
//! A worker whose search comes up empty spins politely for a bounded
//! number of cycles, then **parks indefinitely** on its own private
//! condvar. Parked workers are recorded in a per-domain **sleeper
//! registry**, and spawns deliver **targeted single wakes** — one futex
//! op aimed at the locality level that owns the work — instead of
//! broadcasting to the whole pool:
//!
//! * [`Pool::spawn_in`] / [`WorkerCtx::spawn_in_domain`] wake one sleeper
//!   registered in the job's home domain, falling outward in ring order
//!   only when that domain has no sleeper ([`PoolStats::wakes_escalated`]
//!   counts the fallbacks);
//! * [`WorkerCtx::spawn`] wakes a domain sibling of the spawning worker
//!   first (the new job sits in its LIFO deque, so a sibling is the
//!   cheapest thief);
//! * [`Pool::spawn`] / [`WorkerCtx::spawn_global`] wake exactly one
//!   worker, rotating the starting domain so unaffine work does not
//!   hammer domain 0;
//! * [`Pool::spawn_batch_in`] wakes at most one sleeper per job, grouped
//!   by domain — never more wakes than jobs, never a broadcast.
//!
//! The classic check-then-park race (a spawn lands between a worker's
//! last empty search and its park) is closed by a global **epoch**
//! counter instead of a timed re-poll. The invariants:
//!
//! 1. every spawn *publishes its job*, then *bumps the epoch*, then looks
//!    for a sleeper to wake (in that order);
//! 2. a parking worker reads the epoch *before* its final search and
//!    re-checks it after registering in the sleeper list: a mismatch
//!    means a spawn may have slipped past the search, so the worker
//!    unregisters and searches again instead of sleeping;
//! 3. if both sides race, sequential consistency guarantees at least one
//!    of them loses: either the worker observes the bumped epoch (and
//!    re-searches), or the spawner observes the registration (and wakes
//!    the worker);
//! 4. a registered worker is popped by at most one waker (the pop removes
//!    it), and the wake token is delivered under the worker's private
//!    mailbox lock, so it is never lost — and never goes *stale*: a
//!    worker that finds itself already popped while withdrawing a
//!    registration waits for that in-flight token before leaving park,
//!    so every token is consumed by the registration it paid for;
//! 5. lock order is mailbox → sleeper list on the worker side, and
//!    sleeper list (released) *then* mailbox on the waker side, so the
//!    two never deadlock.
//!
//! On an idle pool every worker parks once and stays parked — zero CPU,
//! zero periodic self-wakes — which is what lets the §2 story ("idle
//! thread units cost nothing, wakeups are targeted") actually hold.
//! [`PoolStats::parks`] counts park events; a pool that re-polls would
//! show it climbing on an idle pool.
//!
//! # Elastic workers
//!
//! The worker set can change at runtime. [`Pool::with_elastic`]
//! pre-provisions vacant worker **slots** in every domain (the lock-free
//! spine's per-worker arrays — stealers, counters, mailboxes — are
//! indexed concurrently and cannot grow, so capacity is fixed while
//! membership is not). [`Pool::grow_in`] activates a vacant slot by
//! handing it its parked deque and spawning a thread; [`Pool::retire_in`]
//! asks an active worker to leave via a three-step handshake mirroring
//! shutdown (set the slot's `Retiring` flag, bump the idle-protocol
//! epoch, deliver a targeted wake to exactly that worker):
//!
//! 1. the retiring worker finishes its current job, **drains its own
//!    deque** and republishes every job into its domain's injector (the
//!    jobs are already counted in the active gauge, so conservation
//!    holds), then wakes up to one sleeper per republished job plus one
//!    unconditional rotated wake — the latter re-issues any wake token
//!    that a spawner may have spent on the leaving worker;
//! 2. it parks its (now empty) deque back into the slot for a future
//!    `grow_in` — the slot's stealer stays valid across the whole cycle,
//!    so no per-worker array is ever resized;
//! 3. the thread exits, which deregisters its thread-local epoch
//!    participant from the spine's reclamation registry (the TLS
//!    destructor marks the slot inactive; see [`crate::deque`]).
//!
//! The pool never retires its last active worker (work queued anywhere
//! is reachable by any worker through the proximity sweep, but only if
//! at least one worker exists to sweep). Workers built from a detected
//! machine topology pin themselves to their assigned cpu on startup
//! (see [`crate::machine`]).
//!
//! # Supervision: worker death and in-place respawn
//!
//! Job-body panics are contained by `run_job`'s `catch_unwind` and cost
//! one `panics` tick — the worker survives. But an unwind that escapes the
//! job boundary (runtime bugs in the steal/park paths, or an injected
//! *kill* from the [`crate::faults`] plane, which `run_job` deliberately
//! rethrows) kills the OS thread. Every worker therefore runs under a
//! `DeathWatch` drop guard that owns the deque and fires only on an
//! unwinding exit:
//!
//! 1. count the death ([`PoolStats::worker_deaths`]) and drain the dead
//!    worker's deque into its domain injector with the same
//!    republish-and-rewake sequence as a retire (the jobs are already in
//!    the active gauge — nothing is lost, nobody waits on a job stranded
//!    in a dead worker's deque);
//! 2. if the slot was mid-retire, complete the retire on the dying
//!    thread's behalf (park the deque, mark the slot vacant, count the
//!    retire) — the retire reservation already adjusted the gauge;
//! 3. otherwise, if the pool is not shutting down, **respawn a fresh
//!    thread into the same still-`Active` slot** with the drained deque
//!    ([`PoolStats::respawns`]). Keeping the slot `Active` throughout
//!    means the heal never races `grow_in`/`retire_in` over slot
//!    ownership and `active_workers` never dips: detection and respawn
//!    are one atomic step from every other thread's point of view.
//!
//! Thread `JoinHandle`s live in `Shared` so a dying worker can register
//! its replacement; `Pool::drop` joins in a loop until no handle remains
//! (a handle pushed by a mid-shutdown death is joined on the next pass).

use std::sync::Arc;
use std::thread::JoinHandle;

use crate::cancel::CancelToken;
use crate::chk::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, Ordering};
use crate::deque::{Injector, Steal, Stealer, Worker as Deque};
use crate::faults::{FaultPlan, FaultPlane};
use crate::ids::{DomainId, WorkerId};
use crate::sleepers::Sleepers;
use crate::topology::Topology;

type JobBody = Box<dyn FnOnce(&WorkerCtx) + Send>;

/// The unit the scheduling spine moves around: a body plus the serving
/// layer's optional envelope — a cancellation token checked at the
/// grain boundary (see `run_job`) and a per-tenant accounting tag.
/// Batch spawns carry a bare body; the envelope costs them nothing but
/// two `None` words per job.
struct Job {
    body: JobBody,
    token: Option<CancelToken>,
    tag: Option<PoolTag>,
}

impl Job {
    fn plain(body: JobBody) -> Self {
        Self {
            body,
            token: None,
            tag: None,
        }
    }
}

/// Per-tenant slice of the pool's execution counters. Cloneable and
/// cheap (an `Arc` of two atomics); hand one to every spawn made on a
/// tenant's behalf via [`SpawnOpts::tag`] and read the slice back with
/// [`PoolTag::stats`]. When a pool runs only tagged work, the slices
/// partition the global [`PoolStats`]: Σ `executed` over tags equals
/// [`PoolStats::total_executed`] and Σ `cancelled` equals
/// [`PoolStats::cancelled`].
#[derive(Clone, Default)]
pub struct PoolTag {
    counters: Arc<TagCounters>,
}

#[derive(Default)]
struct TagCounters {
    executed: AtomicU64,
    cancelled: AtomicU64,
}

impl PoolTag {
    /// A fresh tag with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot this tag's slice of the pool counters.
    pub fn stats(&self) -> TagStats {
        TagStats {
            executed: self.counters.executed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for PoolTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolTag")
            .field("stats", &self.stats())
            .finish()
    }
}

/// A snapshot of one [`PoolTag`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Jobs carrying this tag whose body ran (claimed at the grain
    /// boundary; includes bodies that then panicked).
    pub executed: u64,
    /// Jobs carrying this tag dropped at the grain boundary because
    /// their token had resolved cancelled.
    pub cancelled: u64,
}

/// Envelope options for [`Pool::spawn_with`]: placement, cancellation,
/// and per-tenant accounting. `Default` is equivalent to
/// [`Pool::spawn`] — global injector, no token, no tag.
#[derive(Default, Clone)]
pub struct SpawnOpts {
    /// Home this job in a specific domain's injector (as
    /// [`Pool::spawn_in`]) instead of the global injector.
    pub domain: Option<DomainId>,
    /// Check this token at the grain boundary: if it has resolved (or
    /// just resolves) cancelled, the body is dropped unrun and the job
    /// counts toward [`PoolStats::cancelled`] instead of `executed`.
    pub token: Option<CancelToken>,
    /// Attribute the job's outcome to this tag's [`TagStats`] slice.
    pub tag: Option<PoolTag>,
}

/// Per-worker counters, readable after the run.
#[derive(Debug, Default)]
struct WorkerCounters {
    executed: AtomicU64,
    local_steals: AtomicU64,
    remote_steals: AtomicU64,
}

/// How a worker obtained a job (for the counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acquire {
    /// Own deque, own domain's injector, or the global injector.
    Owned,
    /// Stolen from a sibling deque within the worker's domain.
    LocalSteal,
    /// Stolen from another domain (deque or domain injector).
    RemoteSteal,
}

/// A snapshot of pool activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed per worker.
    pub executed: Vec<u64>,
    /// Jobs stolen from a sibling within the worker's own domain, per
    /// worker (the cheap migrations).
    pub local_steals: Vec<u64>,
    /// Jobs stolen across a domain boundary, per worker (the expensive
    /// migrations the proximity order tries to avoid).
    pub remote_steals: Vec<u64>,
    /// Jobs that panicked (contained; the worker survives).
    pub panics: u64,
    /// Jobs dropped unrun at the grain boundary because their
    /// [`CancelToken`] had resolved cancelled — the serving layer's
    /// cancel-while-queued path. Not counted in `executed`.
    pub cancelled: u64,
    /// Domain index of each worker (parallel to the vectors above).
    pub domain_of: Vec<usize>,
    /// Jobs spawned with an explicit domain affinity, per domain — the
    /// placement record of batched group spawns (`Pool::spawn_batch_in`)
    /// and affinity spawns (`Pool::spawn_in`). A group scheduler reads
    /// this back to confirm where its work was *aimed*; the `executed`
    /// counters say where it actually ran.
    pub domain_spawns: Vec<u64>,
    /// Times a worker entered the sleeper registry to park (a park is
    /// indefinite: an idle pool parks each worker once and this counter
    /// then stays flat — a climbing value on an idle pool would betray a
    /// self-waking re-poll). A worker that registers but withdraws because
    /// a spawn (or shutdown) raced in still counts once; withdrawals only
    /// happen while spawns are in flight or the pool is being torn down,
    /// so on an idle, live pool this equals committed parks exactly.
    pub parks: u64,
    /// Wakes satisfied by a sleeper in the spawn's first-choice domain
    /// (the home domain for affinity spawns, the spawner's own domain for
    /// worker-local spawns, the rotor's pick for unaffine spawns).
    pub wakes_targeted: u64,
    /// Wakes that fell outward in ring order because the first-choice
    /// domain had no sleeper — the wake-side analogue of a remote steal.
    pub wakes_escalated: u64,
    /// Workers activated at runtime ([`Pool::grow_in`]), cumulative.
    pub grows: u64,
    /// Workers retired at runtime ([`Pool::retire_in`]), cumulative —
    /// counted when the retiring worker's drain completes, not when the
    /// retire is requested.
    pub retires: u64,
    /// Worker threads that died by an unwind escaping the job boundary
    /// (injected kills, runtime bugs) — see the module header,
    /// *Supervision*. Every death also republishes the dead worker's
    /// deque, so no job is lost with the thread.
    pub worker_deaths: u64,
    /// Worker threads respawned in place by supervision after a death.
    /// On a healthy pool that is not shutting down,
    /// `worker_deaths == respawns + retires-completed-by-death` once the
    /// dust settles; the chaos suite asserts the census directly.
    pub respawns: u64,
}

impl PoolStats {
    /// Total jobs executed.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Element-wise difference against an earlier snapshot of the
    /// *same pool* — what happened between the two `stats()` calls.
    /// This is how a batch run scoped to a long-lived serving pool
    /// (`run_parallel_on`) reports its own share of the counters.
    /// Saturating, so a racy read that runs slightly backwards clamps
    /// to zero instead of wrapping.
    pub fn since(&self, base: &PoolStats) -> PoolStats {
        let sub = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter()
                .zip(b.iter().chain(std::iter::repeat(&0)))
                .map(|(x, y)| x.saturating_sub(*y))
                .collect()
        };
        PoolStats {
            executed: sub(&self.executed, &base.executed),
            local_steals: sub(&self.local_steals, &base.local_steals),
            remote_steals: sub(&self.remote_steals, &base.remote_steals),
            panics: self.panics.saturating_sub(base.panics),
            cancelled: self.cancelled.saturating_sub(base.cancelled),
            domain_of: self.domain_of.clone(),
            domain_spawns: sub(&self.domain_spawns, &base.domain_spawns),
            parks: self.parks.saturating_sub(base.parks),
            wakes_targeted: self.wakes_targeted.saturating_sub(base.wakes_targeted),
            wakes_escalated: self.wakes_escalated.saturating_sub(base.wakes_escalated),
            grows: self.grows.saturating_sub(base.grows),
            retires: self.retires.saturating_sub(base.retires),
            worker_deaths: self.worker_deaths.saturating_sub(base.worker_deaths),
            respawns: self.respawns.saturating_sub(base.respawns),
        }
    }

    /// Total steals of either kind.
    pub fn total_stolen(&self) -> u64 {
        self.total_local_steals() + self.total_remote_steals()
    }

    /// Total in-domain steals.
    pub fn total_local_steals(&self) -> u64 {
        self.local_steals.iter().sum()
    }

    /// Total cross-domain steals.
    pub fn total_remote_steals(&self) -> u64 {
        self.remote_steals.iter().sum()
    }

    /// Total jobs spawned with explicit domain affinity.
    pub fn total_domain_spawns(&self) -> u64 {
        self.domain_spawns.iter().sum()
    }

    /// Total sleeper wakes of either kind.
    pub fn total_wakes(&self) -> u64 {
        self.wakes_targeted + self.wakes_escalated
    }

    /// Fraction of wakes that had to leave the first-choice domain (0 when
    /// nothing was woken). The wake-side counterpart of
    /// [`PoolStats::remote_steal_ratio`].
    pub fn escalated_wake_ratio(&self) -> f64 {
        let total = self.total_wakes();
        if total == 0 {
            0.0
        } else {
            self.wakes_escalated as f64 / total as f64
        }
    }

    /// Fraction of steals that crossed a domain boundary (0 when nothing
    /// was stolen). Under [`Topology::flat`] every steal is remote, so the
    /// ratio is 1 whenever any stealing happened; grouped topologies earn
    /// a lower ratio by satisfying steals within a domain first.
    pub fn remote_steal_ratio(&self) -> f64 {
        let total = self.total_stolen();
        if total == 0 {
            0.0
        } else {
            self.total_remote_steals() as f64 / total as f64
        }
    }

    /// Number of domains covered by this snapshot.
    pub fn num_domains(&self) -> usize {
        self.domain_of.iter().max().map_or(0, |&d| d + 1)
    }

    fn sum_by_domain(&self, per_worker: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.num_domains()];
        for (w, &v) in per_worker.iter().enumerate() {
            out[self.domain_of[w]] += v;
        }
        out
    }

    /// Jobs executed per domain.
    pub fn executed_by_domain(&self) -> Vec<u64> {
        self.sum_by_domain(&self.executed)
    }

    /// In-domain steals per domain (attributed to the thief's domain).
    pub fn local_steals_by_domain(&self) -> Vec<u64> {
        self.sum_by_domain(&self.local_steals)
    }

    /// Cross-domain steals per domain (attributed to the thief's domain).
    pub fn remote_steals_by_domain(&self) -> Vec<u64> {
        self.sum_by_domain(&self.remote_steals)
    }

    /// Coefficient of variation of per-worker executed counts — the load
    /// imbalance measure used by the experiments (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        cv(self.executed.iter().map(|&x| x as f64))
    }

    /// Coefficient of variation of per-domain executed counts, normalized
    /// by domain size (each domain contributes its mean jobs *per
    /// worker*, so uneven topologies don't read as imbalanced when every
    /// worker did equal work): how evenly the load spread across the
    /// locality domains (0 = perfectly balanced). Under
    /// [`Topology::flat`] this coincides with [`PoolStats::imbalance`].
    pub fn imbalance_by_domain(&self) -> f64 {
        let mut sizes = vec![0u64; self.num_domains()];
        for &d in &self.domain_of {
            sizes[d] += 1;
        }
        let per_worker = self
            .executed_by_domain()
            .iter()
            .zip(&sizes)
            .map(|(&e, &s)| e as f64 / s.max(1) as f64)
            .collect::<Vec<_>>();
        cv(per_worker.into_iter())
    }
}

/// Coefficient of variation of a value sequence, in one pass (Welford's
/// online mean/variance update).
fn cv(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut n, mut mean, mut m2) = (0.0f64, 0.0f64, 0.0f64);
    for x in xs {
        n += 1.0;
        let d = x - mean;
        mean += d / n;
        m2 += d * (x - mean);
    }
    if n == 0.0 || mean == 0.0 {
        return 0.0;
    }
    (m2 / n).sqrt() / mean
}

/// Slot lifecycle states (see the module header, *Elastic workers*).
/// `Active` → `Retiring` is requested by [`Pool::retire_in`];
/// `Retiring` → `Vacant` is committed by the worker itself after its
/// drain; `Vacant` → `Active` is claimed by [`Pool::grow_in`].
const SLOT_ACTIVE: u8 = 0;
const SLOT_RETIRING: u8 = 1;
const SLOT_VACANT: u8 = 2;

struct Shared {
    topology: Topology,
    injector: Injector<Job>,
    /// One affinity injector per locality domain.
    domain_injectors: Vec<Injector<Job>>,
    /// Affinity spawns per domain (see [`PoolStats::domain_spawns`]).
    domain_spawns: Vec<AtomicU64>,
    stealers: Vec<Stealer<Job>>,
    counters: Vec<WorkerCounters>,
    /// Jobs spawned but not yet finished (includes currently-running).
    active: AtomicUsize,
    /// Jobs whose body panicked (the unwind is contained per job).
    panics: AtomicU64,
    /// Jobs dropped unrun at the grain boundary (cancelled token).
    cancelled: AtomicU64,
    shutdown: AtomicBool,
    /// Per-slot lifecycle state (`SLOT_ACTIVE` / `SLOT_RETIRING` /
    /// `SLOT_VACANT`), parallel to `stealers`.
    slot_states: Vec<AtomicU8>,
    /// Live count of active (non-vacant) worker slots. Decremented by the
    /// *reservation* in [`Pool::retire_in`] — not by the worker's exit —
    /// so concurrent retires cannot race the pool below one worker.
    active_workers: AtomicUsize,
    /// Parked deques of vacant slots, indexed by slot. A retiring worker
    /// stores its drained deque here *before* marking the slot vacant;
    /// `grow_in` takes it back after winning the vacant→active CAS, so
    /// the mutex hand-off orders the two and the slot's stealer stays
    /// valid across the whole retire/grow cycle.
    vacant_deques: Mutex<Vec<Option<Deque<Job>>>>,
    /// Cumulative grow events (see [`PoolStats::grows`]).
    grows: AtomicU64,
    /// Cumulative completed retires (see [`PoolStats::retires`]).
    retires: AtomicU64,
    /// Worker threads lost to an escaped unwind (see module header,
    /// *Supervision*).
    worker_deaths: AtomicU64,
    /// Worker threads respawned in place by supervision.
    respawns: AtomicU64,
    /// Worker thread handles, including supervision respawns (which is
    /// why they live here and not on [`Pool`]: a dying worker registers
    /// its replacement). Drained in a loop by `Pool::drop`.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// The armed fault-injection plane (off by default; see
    /// [`crate::faults`]). Owned per pool so concurrent pools — and the
    /// serving layer driving this pool, which shares the plane via
    /// [`Pool::fault_plane`] — never interfere.
    faults: FaultPlane,
    /// Park/wake coordination for idle workers ([`crate::sleepers`] owns
    /// the protocol and its counters; this module just drives it).
    sleepers: Sleepers,
    /// Quiescence coordination for `wait_quiescent`.
    quiet_lock: Mutex<()>,
    quiet_cv: Condvar,
}

/// Execution context handed to every SGT body.
pub struct WorkerCtx<'a> {
    shared: &'a Arc<Shared>,
    deque: &'a Deque<Job>,
    /// This worker's id.
    pub id: WorkerId,
    /// The locality domain this worker belongs to.
    pub domain: DomainId,
}

impl<'a> WorkerCtx<'a> {
    /// Spawn a child job onto this worker's own deque (LIFO — depth-first,
    /// cache-friendly; stealable by idle peers, siblings first). Wakes one
    /// sleeping domain sibling if there is one — the cheapest thief for a
    /// job sitting in this worker's deque.
    pub fn spawn(&self, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        self.deque.push(Job::plain(Box::new(job)));
        self.shared.bump_epoch();
        self.shared.wake_one_in(self.domain.0 as usize);
    }

    /// Spawn to the global injector (used when the spawner wants to
    /// *avoid* keeping the work local). Wakes exactly one sleeper, with a
    /// rotating first-choice domain.
    pub fn spawn_global(&self, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Job::plain(Box::new(job)));
        self.shared.bump_epoch();
        self.shared.wake_one_rotated();
    }

    /// Spawn into a specific domain's injector: the job is "home" there
    /// (its pickup is not a steal) and only leaves via a remote steal when
    /// the other domains have run dry.
    ///
    /// # Panics
    /// Panics if `domain` is out of range for the pool's topology.
    pub fn spawn_in_domain(&self, domain: DomainId, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared
            .spawn_in_domain(domain, Job::plain(Box::new(job)));
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.shared.stealers.len()
    }

    /// Number of locality domains in the pool.
    pub fn num_domains(&self) -> usize {
        self.shared.topology.num_domains()
    }
}

impl Shared {
    /// Invariant 1 of the idle protocol: called by every spawn *after* its
    /// job is visible in a deque or injector and *before* any sleeper
    /// lookup. A batch bumps once for the whole batch.
    fn bump_epoch(&self) {
        self.sleepers.bump_epoch();
    }

    /// Wake one sleeper, preferring `home` and falling outward in ring
    /// order (see [`Sleepers::wake_one_in`]).
    fn wake_one_in(&self, home: usize) {
        self.sleepers.wake_one_in(home);
    }

    /// Wake one sleeper with no affinity (see
    /// [`Sleepers::wake_one_rotated`]).
    fn wake_one_rotated(&self) {
        self.sleepers.wake_one_rotated();
    }

    /// Shutdown broadcast: pop and token every registered sleeper. The
    /// only remaining full-pool wake, and it runs once per pool lifetime.
    fn wake_all_for_shutdown(&self) {
        self.sleepers.wake_all();
    }

    /// Park worker `w` of `domain` until a wake token arrives
    /// (see [`Sleepers::park`]); shutdown and a pending retire of this
    /// slot both double as abort signals, so neither a closing pool nor
    /// a retire request ever strands a worker in the registry.
    fn park(&self, w: usize, domain: DomainId, observed_epoch: u64) {
        self.sleepers
            .park(w, domain.0 as usize, observed_epoch, || {
                self.shutdown.load(Ordering::SeqCst)
                    || self.slot_states[w].load(Ordering::SeqCst) == SLOT_RETIRING
            });
    }

    fn spawn_in_domain(&self, domain: DomainId, job: Job) {
        self.push_in_domain(domain, job);
        self.bump_epoch();
        self.wake_one_in(domain.0 as usize);
    }

    /// Enqueue a job into a domain injector without waking anyone — the
    /// building block of batched spawns (wakes are grouped per batch).
    fn push_in_domain(&self, domain: DomainId, job: Job) {
        assert!(
            (domain.0 as usize) < self.domain_injectors.len(),
            "{domain} out of range for a {}-domain pool",
            self.domain_injectors.len()
        );
        self.active.fetch_add(1, Ordering::AcqRel);
        self.domain_spawns[domain.0 as usize].fetch_add(1, Ordering::Relaxed);
        self.domain_injectors[domain.0 as usize].push(job);
    }

    fn job_finished(&self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.quiet_lock.lock();
            self.quiet_cv.notify_all();
        }
    }
}

/// An approximate snapshot of queue depths across the scheduling spine
/// (see [`Pool::queue_depths`] for the relaxed racy-read contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueDepths {
    /// Approximate jobs in each worker's own deque.
    pub workers: Vec<usize>,
    /// Approximate jobs in each domain's injector.
    pub domain_injectors: Vec<usize>,
    /// Approximate jobs in the global injector.
    pub global_injector: usize,
}

impl QueueDepths {
    /// Approximate total queued (not yet running) jobs.
    pub fn total(&self) -> usize {
        self.workers.iter().sum::<usize>()
            + self.domain_injectors.iter().sum::<usize>()
            + self.global_injector
    }
}

/// A work-stealing thread pool partitioned into locality domains, with a
/// fixed slot capacity and an elastic active worker set (see the module
/// header, *Elastic workers*).
pub struct Pool {
    shared: Arc<Shared>,
}

impl Pool {
    /// Spin up a pool with no locality grouping: `workers` singleton
    /// domains (at least 1) — the uniform work-stealing baseline.
    pub fn new(workers: usize) -> Self {
        Self::with_topology(Topology::flat(workers))
    }

    /// Spin up one OS thread per worker of `topology`, grouped into its
    /// locality domains. The pool has no vacant slots: capacity equals
    /// the active worker count and [`Pool::grow_in`] always fails.
    pub fn with_topology(topology: Topology) -> Self {
        Self::with_elastic(topology, 0)
    }

    /// Spin up `topology`'s workers plus `headroom` *vacant slots per
    /// domain*. Vacant slots cost their deque and mailbox but no thread;
    /// [`Pool::grow_in`] activates them and [`Pool::retire_in`] returns
    /// active workers to vacancy at runtime. The pool's [`Topology`] (and
    /// every per-worker stats vector) covers all slots, active or not.
    ///
    /// When `topology` carries cpu pin assignments (a detected machine
    /// topology), headroom slots inherit the cpus of their domain
    /// round-robin, so an extra worker on a core-domain lands on one of
    /// that core's SMT siblings.
    ///
    /// The fault plane is armed from `HTVM_FAULTS` (off when unset); use
    /// [`Pool::with_fault_plan`] to arm a programmatic plan instead.
    pub fn with_elastic(topology: Topology, headroom: usize) -> Self {
        Self::with_fault_plan(topology, headroom, FaultPlan::from_env())
    }

    /// [`Pool::with_elastic`] with an explicit [`FaultPlan`] instead of
    /// the `HTVM_FAULTS` environment spec — the chaos suites use this to
    /// arm per-test plans without cross-test env interference.
    pub fn with_fault_plan(topology: Topology, headroom: usize, plan: FaultPlan) -> Self {
        let base_sizes = topology.sizes().to_vec();
        let slot_topology = if headroom == 0 {
            topology.clone()
        } else {
            let sizes: Vec<usize> = base_sizes.iter().map(|&s| s + headroom).collect();
            let mut slot_topo = Topology::from_sizes(sizes.clone());
            if topology.cpu_of(0).is_some() {
                let mut cpus = Vec::with_capacity(sizes.iter().sum());
                for (d, &size) in sizes.iter().enumerate() {
                    let home = topology.workers_of(DomainId(d as u64));
                    let home_cpus: Vec<usize> = home.filter_map(|w| topology.cpu_of(w)).collect();
                    for i in 0..size {
                        cpus.push(home_cpus[i % home_cpus.len()]);
                    }
                }
                slot_topo = slot_topo.with_cpus(cpus);
            }
            slot_topo
        };
        let slots = slot_topology.workers();
        let deques: Vec<Deque<Job>> = (0..slots).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let counters = (0..slots).map(|_| WorkerCounters::default()).collect();
        let domain_injectors = (0..slot_topology.num_domains())
            .map(|_| Injector::new())
            .collect();
        let domain_spawns = (0..slot_topology.num_domains())
            .map(|_| AtomicU64::new(0))
            .collect();
        let sleepers = Sleepers::new(slot_topology.num_domains(), slots);
        // The first `base_sizes[d]` slots of each domain start active;
        // the headroom tail of each domain starts vacant.
        let mut active_of_slot = vec![false; slots];
        let mut active_count = 0usize;
        for (d, &size) in base_sizes.iter().enumerate() {
            let range = slot_topology.workers_of(DomainId(d as u64));
            for slot in range.take(size) {
                active_of_slot[slot] = true;
                active_count += 1;
            }
        }
        let slot_states = active_of_slot
            .iter()
            .map(|&a| AtomicU8::new(if a { SLOT_ACTIVE } else { SLOT_VACANT }))
            .collect();
        let shared = Arc::new(Shared {
            topology: slot_topology,
            injector: Injector::new(),
            domain_injectors,
            domain_spawns,
            stealers,
            counters,
            active: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            slot_states,
            active_workers: AtomicUsize::new(active_count),
            vacant_deques: Mutex::new(Vec::new()),
            grows: AtomicU64::new(0),
            retires: AtomicU64::new(0),
            worker_deaths: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            handles: Mutex::new(Vec::with_capacity(active_count)),
            faults: FaultPlane::new(plan),
            sleepers,
            quiet_lock: Mutex::new(()),
            quiet_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(active_count);
        let mut vacant = Vec::with_capacity(slots);
        for (i, deque) in deques.into_iter().enumerate() {
            if active_of_slot[i] {
                let shared = shared.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("htvm-worker-{i}"))
                        .spawn(move || worker_loop(i, deque, shared))
                        .expect("spawn worker thread"),
                );
                vacant.push(None);
            } else {
                vacant.push(Some(deque));
            }
        }
        *shared.vacant_deques.lock() = vacant;
        *shared.handles.lock() = handles;
        Self { shared }
    }

    /// This pool's fault-injection plane (see [`crate::faults`]). The
    /// serving layer hits its own fault points (`serve.dispatch`, …)
    /// against the same plane so one `HTVM_FAULTS` spec or
    /// [`FaultPlan`] governs the whole stack above this pool.
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.shared.faults
    }

    /// Activate one vacant slot in `domain`: hand it its parked deque and
    /// spawn a worker thread for it. Returns the activated worker's id,
    /// or `None` when the domain has no vacant slot (always the case for
    /// pools built without headroom).
    ///
    /// # Panics
    /// Panics if `domain` is out of range for the pool's topology.
    pub fn grow_in(&self, domain: DomainId) -> Option<WorkerId> {
        for slot in self.shared.topology.workers_of(domain) {
            if self.shared.slot_states[slot]
                .compare_exchange(SLOT_VACANT, SLOT_ACTIVE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // The vacant→active CAS wins the slot; the deque was
                // stored before the slot went vacant (mutex-ordered), so
                // the take cannot miss.
                let deque = self.shared.vacant_deques.lock()[slot]
                    .take()
                    .expect("vacant slot holds a parked deque");
                self.shared.active_workers.fetch_add(1, Ordering::SeqCst);
                self.shared.grows.fetch_add(1, Ordering::Relaxed);
                let shared = self.shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("htvm-worker-{slot}"))
                    .spawn(move || worker_loop(slot, deque, shared))
                    .expect("spawn worker thread");
                self.shared.handles.lock().push(handle);
                return Some(WorkerId(slot as u64));
            }
        }
        None
    }

    /// Grow in whichever domain has a vacant slot, preferring `first`
    /// and falling outward in ring order (the wake-escalation order).
    pub fn grow_anywhere(&self, first: DomainId) -> Option<WorkerId> {
        let nd = self.num_domains();
        (0..nd)
            .map(|off| DomainId(((first.0 as usize + off) % nd) as u64))
            .find_map(|d| self.grow_in(d))
    }

    /// Ask one active worker of `domain` to retire (highest slot first).
    /// Asynchronous: the returned worker finishes its current job, drains
    /// and republishes its deque, then vacates its slot — poll
    /// [`Pool::active_workers`] or [`PoolStats::retires`] to observe
    /// completion. Returns `None` when the domain has no active worker to
    /// spare or the pool is down to its last active worker (the pool
    /// never retires that one: queued work is only reachable while
    /// somebody sweeps).
    ///
    /// # Panics
    /// Panics if `domain` is out of range for the pool's topology.
    pub fn retire_in(&self, domain: DomainId) -> Option<WorkerId> {
        if !self.reserve_retire() {
            return None;
        }
        for slot in self.shared.topology.workers_of(domain).rev() {
            if self.flag_retiring(slot) {
                return Some(WorkerId(slot as u64));
            }
        }
        // No active slot in this domain: return the reservation.
        self.shared.active_workers.fetch_add(1, Ordering::SeqCst);
        None
    }

    /// Ask one *specific* worker to retire (same handshake and same
    /// last-worker guard as [`Pool::retire_in`]). Returns whether the
    /// retire was requested — `false` when the slot is not currently
    /// active or the pool is down to one worker.
    pub fn retire_worker(&self, worker: WorkerId) -> bool {
        let slot = worker.0 as usize;
        if slot >= self.workers() || !self.reserve_retire() {
            return false;
        }
        if self.flag_retiring(slot) {
            true
        } else {
            self.shared.active_workers.fetch_add(1, Ordering::SeqCst);
            false
        }
    }

    /// Reserve a retire against the active gauge. Decrementing *before*
    /// choosing a slot is what makes "never below one active worker" hold
    /// under concurrent retires: two racing callers both see `a == 2` but
    /// only one CAS wins the reservation.
    fn reserve_retire(&self) -> bool {
        loop {
            let a = self.shared.active_workers.load(Ordering::SeqCst);
            if a <= 1 {
                return false;
            }
            if self
                .shared
                .active_workers
                .compare_exchange(a, a - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Flip one slot active→retiring and deliver the retire wake. Same
    /// two-sided shape as shutdown (invariant 3): flag (SeqCst), epoch
    /// bump, then the targeted wake. A worker mid-park either sees the
    /// flag/bump in its registered re-check (the park abort covers the
    /// flag directly), or its registration is visible to `wake_worker`.
    fn flag_retiring(&self, slot: usize) -> bool {
        if self.shared.slot_states[slot]
            .compare_exchange(
                SLOT_ACTIVE,
                SLOT_RETIRING,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            self.shared.bump_epoch();
            let domain = self.shared.topology.domain_of(slot).0 as usize;
            self.shared.sleepers.wake_worker(slot, domain);
            true
        } else {
            false
        }
    }

    /// Currently active (non-vacant) worker slots. Counts a requested
    /// retire immediately (the reservation), even while the retiring
    /// worker is still draining.
    pub fn active_workers(&self) -> usize {
        self.shared.active_workers.load(Ordering::SeqCst)
    }

    /// Per-domain census of slot states: `(active, vacant)` counts, each
    /// indexed by domain. A slot mid-retire counts as active (its thread
    /// is still draining); the two vectors therefore sum to the slot
    /// capacity per domain. Racy by nature — a controller's planning
    /// input, not a synchronization primitive.
    pub fn slot_census(&self) -> (Vec<usize>, Vec<usize>) {
        let nd = self.num_domains();
        let mut active = vec![0usize; nd];
        let mut vacant = vec![0usize; nd];
        for (slot, state) in self.shared.slot_states.iter().enumerate() {
            let d = self.shared.topology.domain_of(slot).0 as usize;
            if state.load(Ordering::SeqCst) == SLOT_VACANT {
                vacant[d] += 1;
            } else {
                active[d] += 1;
            }
        }
        (active, vacant)
    }

    /// Spawn a job from outside the pool. Wakes exactly one worker (a
    /// rotating first-choice domain spreads unaffine wakes over the
    /// topology) — one futex op per spawn, not a broadcast.
    pub fn spawn(&self, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Job::plain(Box::new(job)));
        self.shared.bump_epoch();
        self.shared.wake_one_rotated();
    }

    /// Spawn a job from outside the pool with domain affinity: it lands in
    /// `domain`'s injector and stays there unless imbalance forces a
    /// remote steal.
    ///
    /// # Panics
    /// Panics if `domain` is out of range for the pool's topology.
    pub fn spawn_in(&self, domain: DomainId, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared
            .spawn_in_domain(domain, Job::plain(Box::new(job)));
    }

    /// Spawn with the serving envelope: optional domain affinity,
    /// optional [`CancelToken`] (checked at the grain boundary — a job
    /// whose token resolved cancelled is dropped unrun and its body
    /// destructors run on the worker thread), and optional [`PoolTag`]
    /// accounting. Wake behavior matches [`Pool::spawn_in`] /
    /// [`Pool::spawn`] according to whether a domain is given.
    ///
    /// # Panics
    /// Panics if `opts.domain` is out of range for the pool's topology.
    pub fn spawn_with(&self, opts: SpawnOpts, job: impl FnOnce(&WorkerCtx) + Send + 'static) {
        let envelope = Job {
            body: Box::new(job),
            token: opts.token,
            tag: opts.tag,
        };
        match opts.domain {
            Some(domain) => self.shared.spawn_in_domain(domain, envelope),
            None => {
                self.shared.active.fetch_add(1, Ordering::AcqRel);
                self.shared.injector.push(envelope);
                self.shared.bump_epoch();
                self.shared.wake_one_rotated();
            }
        }
    }

    /// Spawn a batch of domain-affine jobs with grouped wakes: every job
    /// lands in its domain's injector first, then each domain receives up
    /// to as many targeted wakes as it received jobs — never more wakes
    /// than jobs, never a pool-wide broadcast. A group scheduler (e.g.
    /// `htvm_ssp::exec`) uses this to place one iteration group per domain
    /// without paying a futex storm per group; the placement is recorded
    /// in [`PoolStats::domain_spawns`].
    ///
    /// # Panics
    /// Panics if any domain is out of range for the pool's topology.
    pub fn spawn_batch_in<F>(&self, jobs: impl IntoIterator<Item = (DomainId, F)>)
    where
        F: FnOnce(&WorkerCtx) + Send + 'static,
    {
        let nd = self.shared.domain_injectors.len();
        let mut per_domain: Vec<Vec<Job>> = (0..nd).map(|_| Vec::new()).collect();
        for (domain, job) in jobs {
            assert!(
                (domain.0 as usize) < nd,
                "{domain} out of range for a {nd}-domain pool"
            );
            per_domain[domain.0 as usize].push(Job::plain(Box::new(job)));
        }
        let mut wakes = vec![0u64; nd];
        let mut any = false;
        for (d, batch) in per_domain.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let n = batch.len();
            self.shared.active.fetch_add(n, Ordering::AcqRel);
            self.shared.domain_spawns[d].fetch_add(n as u64, Ordering::Relaxed);
            // One lock-free publish per domain: the whole run claims its
            // injector slots with a single `fetch_add` per segment
            // crossed, instead of n individual enqueues.
            self.shared.domain_injectors[d].push_batch(batch);
            wakes[d] = n as u64;
            any = true;
        }
        if !any {
            return;
        }
        // One epoch bump covers the whole batch (every job was published
        // above); then hand each domain its share of wakes. `wake_one_in`
        // returns immediately once nobody is parked, so a large batch on a
        // busy pool costs one atomic load per job, not a futex each.
        self.shared.bump_epoch();
        for (d, &n) in wakes.iter().enumerate() {
            for _ in 0..n {
                self.shared.wake_one_in(d);
            }
        }
    }

    /// Block until every spawned job (including transitively spawned
    /// children) has finished.
    ///
    /// **Shared-pool caveat:** quiescence is a *global* property — the
    /// active count covers every spawner, not just the caller. On a
    /// long-lived serving pool that is continuously fed (`htvm_serve`),
    /// this may never return; a batch run sharing such a pool must
    /// track its own completion (e.g. dataflow joins on its own
    /// handles, as `run_parallel_on` does) instead of waiting for the
    /// whole pool to drain.
    pub fn wait_quiescent(&self) {
        let mut g = self.shared.quiet_lock.lock();
        while self.shared.active.load(Ordering::Acquire) != 0 {
            self.shared.quiet_cv.wait(&mut g);
        }
    }

    /// Number of worker slots (active plus vacant). Per-worker stats
    /// vectors and [`Topology::workers`] use this count; the live thread
    /// count is [`Pool::active_workers`]. Equal for pools built without
    /// elastic headroom.
    pub fn workers(&self) -> usize {
        self.shared.stealers.len()
    }

    /// The pool's locality-domain topology.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Number of locality domains.
    pub fn num_domains(&self) -> usize {
        self.shared.topology.num_domains()
    }

    /// Workers currently registered in the sleeper registry — a live
    /// gauge, not a cumulative counter. Note this cannot be derived from
    /// [`PoolStats::parks`] minus [`PoolStats::total_wakes`]: a waker can
    /// pop a worker that registered but then refused to sleep (failed
    /// epoch re-check), recording a wake with no matching park.
    pub fn parked_workers(&self) -> usize {
        self.shared.sleepers.parked()
    }

    /// Block (politely yielding) until every worker is registered in the
    /// sleeper registry, or `timeout` elapses; returns whether the pool
    /// became fully parked. Because a worker records its park in
    /// [`PoolStats::parks`] *before* joining the gauge, a `true` return
    /// also guarantees the counter has settled — no in-flight park can
    /// bump it afterwards while the pool stays idle. Intended for tests
    /// and benchmarks that need a cold-pool baseline; production code
    /// never needs to wait for idleness.
    pub fn wait_fully_parked(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        // `<` rather than `!=`: on an elastic pool the parked gauge can
        // transiently exceed the active count while a retire reservation
        // has landed but its worker is still registered.
        while self.parked_workers() < self.active_workers() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// Approximate queue depths across the pool's scheduling spine — a
    /// **racy snapshot**, not a consistent cut: each count is read
    /// independently from lock-free cursors while workers keep pushing,
    /// popping and stealing, so the numbers can be mutually inconsistent
    /// and stale by the time this returns (a job mid-migration may be
    /// counted twice or not at all). That is the documented contract for
    /// everything queue depth feeds — steal-victim skipping inside the
    /// pool, and load probes like this one. Use [`Pool::wait_quiescent`]
    /// plus [`Pool::stats`] when an exact account is needed.
    pub fn queue_depths(&self) -> QueueDepths {
        QueueDepths {
            workers: self.shared.stealers.iter().map(|s| s.len()).collect(),
            domain_injectors: self
                .shared
                .domain_injectors
                .iter()
                .map(|i| i.len())
                .collect(),
            global_injector: self.shared.injector.len(),
        }
    }

    /// Current activity snapshot.
    pub fn stats(&self) -> PoolStats {
        let load = |f: fn(&WorkerCounters) -> &AtomicU64| -> Vec<u64> {
            self.shared
                .counters
                .iter()
                .map(|c| f(c).load(Ordering::Relaxed))
                .collect()
        };
        PoolStats {
            executed: load(|c| &c.executed),
            local_steals: load(|c| &c.local_steals),
            remote_steals: load(|c| &c.remote_steals),
            panics: self.shared.panics.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            domain_of: (0..self.workers())
                .map(|w| self.shared.topology.domain_of(w).0 as usize)
                .collect(),
            domain_spawns: self
                .shared
                .domain_spawns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            parks: self.shared.sleepers.parks(),
            wakes_targeted: self.shared.sleepers.wakes_targeted(),
            wakes_escalated: self.shared.sleepers.wakes_escalated(),
            grows: self.shared.grows.load(Ordering::Relaxed),
            retires: self.shared.retires.load(Ordering::Relaxed),
            worker_deaths: self.shared.worker_deaths.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // SeqCst store + epoch bump: a worker mid-park either sees the
        // flag/bump in its registered re-check, or its registration is
        // visible to the drain below — the same two-sided argument as a
        // spawn (module-header invariant 3).
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.bump_epoch();
        self.shared.wake_all_for_shutdown();
        // Includes handles of already-exited retirees (those joins return
        // immediately). Looped: a worker dying concurrently with shutdown
        // may register a respawn handle after the first drain — joining
        // the dead worker's own handle happens-after that push, so the
        // next pass always picks the replacement up.
        //
        // The drop can run ON a pool worker: a job dropped mid-unwind can
        // hold the last strong reference to a stack that owns the pool
        // (e.g. a serving request's finish guard → server inner →
        // `Arc<Pool>`). Joining that worker's own handle would be a
        // self-join — std's join panics on the EDEADLK, and a panic
        // inside this destructor during the unwind aborts the process —
        // so the self-handle is detached instead. That is safe: the
        // worker owns its own `Arc<Shared>`, so nothing this thread still
        // touches is freed before it exits.
        let me = std::thread::current().id();
        loop {
            let handles: Vec<JoinHandle<()>> = self.shared.handles.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                if h.thread().id() == me {
                    continue;
                }
                let _ = h.join();
            }
        }
    }
}

/// Failed full work-search cycles an idle worker tolerates (yielding the
/// CPU each time) before it parks indefinitely in the sleeper registry.
/// Bulk-synchronous codes re-spawn work within a phase's tail (tens to
/// hundreds of µs); parking there would pay a full futex wake (itself
/// tens to hundreds of µs on virtualized hosts) per phase.
/// Spinning-then-parking is the standard work-stealing discipline (cf.
/// rayon/Cilk); each cycle yields, so the spin donates its core whenever
/// anything else is runnable. Once parked, a worker consumes nothing
/// until a spawn delivers a wake token.
const IDLE_SPINS_BEFORE_PARK: u32 = 512;

/// Drain one `Steal` source, retrying on contention.
fn try_steal(source: impl Fn() -> Steal<Job>) -> Option<Job> {
    loop {
        match source() {
            Steal::Success(job) => return Some(job),
            Steal::Retry => continue,
            Steal::Empty => return None,
        }
    }
}

/// One full proximity-ordered work search (steps 2–5 of the module-header
/// protocol; step 1, the own deque, is handled by the caller). Returns the
/// job and how it was acquired.
fn find_work(
    shared: &Shared,
    index: usize,
    my_domain: DomainId,
    deque: &Deque<Job>,
) -> Option<(Job, Acquire)> {
    // Chaos hook on the steal path: fires before the epoch pin so an
    // injected unwind never holds reclamation back. A kill here escapes
    // to the worker's DeathWatch while no job is held.
    crate::fault_point!(shared.faults, "worker.steal");
    // Pin once for the whole proximity sweep: epoch pins are reentrant,
    // so every steal attempt below rides this guard's fence instead of
    // paying its own — a sweep over W victims costs one fence, not W.
    // The guard drops before the job runs (the caller executes outside
    // this function), so job bodies never hold back reclamation.
    let _pin = crate::deque::pin();
    let topo = &shared.topology;
    let home = topo.workers_of(my_domain);

    // 2. Sibling deques within the domain, ring order after self.
    //
    // Victim selection reads the deques' *approximate* length snapshots
    // (`Stealer::is_empty` — two plain loads, no fence, no pin): a victim
    // that looks empty is skipped without paying a full steal attempt.
    // The snapshot is racy by contract — it may miss a push that lands
    // mid-search — but that cannot strand work: a spawner publishes its
    // job *before* bumping the idle-protocol epoch, so any worker that
    // subsequently parks on this search's "empty" answer re-checks the
    // epoch and re-searches (module header, invariants 1–3).
    let span = home.len();
    for off in 1..span {
        let v = home.start + (index - home.start + off) % span;
        if shared.stealers[v].is_empty() {
            continue;
        }
        if let Some(job) = try_steal(|| shared.stealers[v].steal()) {
            return Some((job, Acquire::LocalSteal));
        }
    }
    // 3. The domain's own injector: home work, not a steal.
    if let Some(job) =
        try_steal(|| shared.domain_injectors[my_domain.0 as usize].steal_batch_and_pop(deque))
    {
        return Some((job, Acquire::Owned));
    }
    // 4. Remote domains, ring order after the home domain: raid the
    // injector first (undispatched work migrates cheaper than a hot
    // deque's), then the workers' deques.
    let nd = topo.num_domains();
    for doff in 1..nd {
        let d = (my_domain.0 as usize + doff) % nd;
        if let Some(job) = try_steal(|| shared.domain_injectors[d].steal()) {
            return Some((job, Acquire::RemoteSteal));
        }
        for v in topo.workers_of(DomainId(d as u64)) {
            // Same approximate-length pre-check as the sibling scan.
            if shared.stealers[v].is_empty() {
                continue;
            }
            if let Some(job) = try_steal(|| shared.stealers[v].steal()) {
                return Some((job, Acquire::RemoteSteal));
            }
        }
    }
    // 5. The global injector.
    if let Some(job) = try_steal(|| shared.injector.steal_batch_and_pop(deque)) {
        return Some((job, Acquire::Owned));
    }
    None
}

/// One full work search: own deque first (step 1, LIFO), then the
/// proximity-ordered steps 2–5 of [`find_work`].
fn next_job(
    shared: &Shared,
    index: usize,
    domain: DomainId,
    deque: &Deque<Job>,
) -> Option<(Job, Acquire)> {
    if let Some(job) = deque.pop() {
        return Some((job, Acquire::Owned));
    }
    find_work(shared, index, domain, deque)
}

fn worker_loop(index: usize, deque: Deque<Job>, shared: Arc<Shared>) {
    if let Some(cpu) = shared.topology.cpu_of(index) {
        // Advisory: a rejected mask (cpu offline, cgroup cpuset) leaves
        // the worker unpinned, which is slower but never wrong.
        let _ = crate::machine::pin_current_thread(cpu);
    }
    // Supervision: the watch owns the deque so an unwind escaping
    // `run_worker` (an injected kill, a runtime bug) can republish it and
    // respawn the slot from the dying thread's own drop glue. Normal
    // exits (shutdown, retire) disarm it and take the deque back.
    let mut watch = DeathWatch {
        index,
        deque: Some(deque),
        shared: shared.clone(),
    };
    let retire = run_worker(
        index,
        watch.deque.as_ref().expect("watch holds deque"),
        &shared,
    );
    let deque = watch.deque.take().expect("watch still holds deque");
    drop(watch);
    if retire {
        finish_retire(index, deque, &shared);
    }
}

/// The per-worker supervision guard (module header, *Supervision*): owns
/// the worker's deque; fires only when the thread exits by unwinding.
struct DeathWatch {
    index: usize,
    deque: Option<Deque<Job>>,
    shared: Arc<Shared>,
}

impl Drop for DeathWatch {
    fn drop(&mut self) {
        let Some(deque) = self.deque.take() else {
            return; // disarmed: normal shutdown/retire exit
        };
        let shared = &self.shared;
        let index = self.index;
        shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
        // Republish the dead worker's queued jobs exactly as a retire
        // would: they are already in the active gauge, and every one gets
        // its wake (plus the unconditional rotated wake re-issuing any
        // token a spawner spent on this worker before it died).
        let domain = shared.topology.domain_of(index).0 as usize;
        let mut republished = 0usize;
        while let Some(job) = deque.pop() {
            shared.domain_injectors[domain].push(job);
            republished += 1;
        }
        shared.bump_epoch();
        for _ in 0..republished {
            shared.wake_one_in(domain);
        }
        shared.wake_one_rotated();
        // A death can race a retire request for the same slot: the
        // reservation already came out of `active_workers`, so complete
        // the retire here instead of resurrecting a worker nobody wants.
        if shared.slot_states[index].load(Ordering::SeqCst) == SLOT_RETIRING {
            let mut vacant = shared.vacant_deques.lock();
            vacant[index] = Some(deque);
            drop(vacant);
            shared.slot_states[index].store(SLOT_VACANT, Ordering::SeqCst);
            shared.retires.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the pool is tearing down; nothing to heal
        }
        // Respawn into the same still-Active slot. The slot never passes
        // through Vacant, so the heal cannot race `grow_in` over slot
        // ownership and the `active_workers` gauge is untouched. If
        // shutdown lands between the check above and this spawn, the new
        // worker observes the flag at its loop top (or in its park-abort
        // re-check) and exits; `Pool::drop`'s join loop reaps it.
        shared.respawns.fetch_add(1, Ordering::Relaxed);
        let respawn = self.shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("htvm-worker-{index}"))
            .spawn(move || worker_loop(index, deque, respawn))
            .expect("respawn worker thread");
        shared.handles.lock().push(handle);
    }
}

/// The worker's job loop. Returns `true` when the worker must retire
/// (drain + republish, in [`finish_retire`]) and `false` on shutdown.
fn run_worker(index: usize, deque: &Deque<Job>, shared: &Arc<Shared>) -> bool {
    let ctx = WorkerCtx {
        shared,
        deque,
        id: WorkerId(index as u64),
        domain: shared.topology.domain_of(index),
    };
    let mut idle_spins = 0u32;
    loop {
        // The retire flag is checked at every grain boundary — one SeqCst
        // load per job, which is noise next to the accounting RMWs a job
        // already pays — so a busy worker retires after its current job,
        // not after its deque happens to run dry.
        if shared.slot_states[index].load(Ordering::SeqCst) == SLOT_RETIRING {
            return !shared.shutdown.load(Ordering::Acquire);
        }
        if let Some((job, how)) = next_job(shared, index, ctx.domain, deque) {
            idle_spins = 0;
            run_job(shared, index, &ctx, job, how);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        // Nothing anywhere: spin politely for a while (new work usually
        // arrives at phase boundaries within microseconds), then park
        // indefinitely — only a spawn's wake token, a retire request or
        // shutdown ends the park, never a timer.
        idle_spins += 1;
        if idle_spins < IDLE_SPINS_BEFORE_PARK {
            std::thread::yield_now();
            continue;
        }
        idle_spins = 0;
        // Pre-park protocol (invariant 2): observe the epoch, then prove
        // the pool empty once more *under that observation* before
        // committing to park. Reading the epoch only here keeps the
        // globally-written counter's cache line off the per-job hot path
        // above — a spawn-heavy pool never touches it.
        let epoch = shared.sleepers.observe_epoch();
        if let Some((job, how)) = next_job(shared, index, ctx.domain, deque) {
            run_job(shared, index, &ctx, job, how);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        // Chaos hook on the park path: fires *before* registration, so an
        // injected kill never strands a dead worker's entry in the
        // sleeper registry (a registered corpse would eat one wake).
        crate::fault_point!(shared.faults, "worker.park");
        shared.park(index, ctx.domain, epoch);
    }
}

/// Complete a retire: drain the worker's own deque into its domain
/// injector (the jobs are already in the active gauge — this is a
/// republish, not a spawn), re-issue wakes for the republished work plus
/// one rotated wake for any token a spawner may have spent on this
/// worker, park the deque in the slot for a future [`Pool::grow_in`],
/// and mark the slot vacant. The thread then exits; its thread-local
/// epoch participant is deregistered by the TLS destructor
/// (see [`crate::deque`]).
fn finish_retire(index: usize, deque: Deque<Job>, shared: &Arc<Shared>) {
    let domain = shared.topology.domain_of(index).0 as usize;
    // Nothing lands in this deque once we stop executing: only the owner
    // pushes (worker-local spawns and injector batch refills both happen
    // on this thread). Stealers may keep raiding it concurrently, which
    // only helps the drain.
    let mut republished = 0usize;
    while let Some(job) = deque.pop() {
        shared.domain_injectors[domain].push(job);
        republished += 1;
    }
    shared.bump_epoch();
    for _ in 0..republished {
        shared.wake_one_in(domain);
    }
    // A spawner that saw this worker parked may have spent its single
    // wake token on us (invariant 4 delivered it; we consumed it to get
    // here). Its job is published and findable, but nobody else was
    // woken for it — hand the wake on unconditionally. On an empty pool
    // the woken worker searches once, finds nothing and re-parks.
    shared.wake_one_rotated();
    {
        let mut vacant = shared.vacant_deques.lock();
        vacant[index] = Some(deque);
    }
    // Vacant only after the deque is parked (mutex-ordered with
    // `grow_in`'s take).
    shared.slot_states[index].store(SLOT_VACANT, Ordering::SeqCst);
    shared.retires.fetch_add(1, Ordering::Relaxed);
}

fn run_job(shared: &Arc<Shared>, index: usize, ctx: &WorkerCtx, job: Job, how: Acquire) {
    let Job { body, token, tag } = job;
    // Grain-boundary cancellation checkpoint: `try_claim` is the
    // `PENDING → CLAIMED` CAS that races `CancelToken::cancel` — exactly
    // one side wins, so a job cancelled while queued is either dropped
    // here (its cancelled resolution already ran via the token's hook)
    // or runs to completion, never both and never neither. Dropping the
    // body on this thread also runs its captured destructors, so
    // whatever the closure owns (in-flight gauges, response state) is
    // released on a worker, not leaked in an injector.
    let claimed = token.as_ref().is_none_or(|t| t.try_claim());
    if !claimed {
        shared.cancelled.fetch_add(1, Ordering::Relaxed);
        if let Some(tag) = &tag {
            tag.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        drop(body);
        shared.job_finished();
        return;
    }
    let c = &shared.counters[index];
    c.executed.fetch_add(1, Ordering::Relaxed);
    if let Some(tag) = &tag {
        tag.counters.executed.fetch_add(1, Ordering::Relaxed);
    }
    match how {
        Acquire::Owned => {}
        Acquire::LocalSteal => {
            c.local_steals.fetch_add(1, Ordering::Relaxed);
        }
        Acquire::RemoteSteal => {
            c.remote_steals.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Contain panics to the job: an unwinding body must not take down the
    // worker (the pool would silently lose a fraction of its parallelism)
    // nor leak the active count (wait_quiescent would hang forever).
    // Exception: an injected *kill* payload (see [`crate::faults`]) is
    // accounted like any panic but then deliberately rethrown — the
    // fault plane is asking for thread death, and supervision (the
    // worker's DeathWatch) must heal it. Accounting first means even a
    // killed job settles the active gauge before the thread dies.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::fault_point!(shared.faults, "worker.body");
        body(ctx)
    }));
    if let Err(payload) = result {
        shared.panics.fetch_add(1, Ordering::Relaxed);
        let kill = crate::faults::injected_from_payload(payload.as_ref()).is_some_and(|f| f.kill);
        shared.job_finished();
        if kill {
            std::panic::resume_unwind(payload);
        }
    } else {
        shared.job_finished();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    /// Steal/spread assertions observe OS scheduling: on a single-CPU host
    /// one worker can legitimately drain a short run before any peer gets a
    /// timeslice, so those claims are only checked on multicore hosts.
    fn multicore() -> bool {
        std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
    }

    /// Poll `f` until it holds or ~2s elapse (supervision counters are
    /// bumped by the dying thread's drop glue, which runs *after* the
    /// job's active-gauge settle — `wait_quiescent` alone can return a
    /// hair early).
    fn eventually(mut f: impl FnMut() -> bool) -> bool {
        for _ in 0..2000 {
            if f() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        f()
    }

    #[test]
    fn killed_worker_respawns_and_loses_no_jobs() {
        use crate::faults::{FaultKind, FaultRule};
        let plan = FaultPlan::new().rule(FaultRule::new("worker.body", FaultKind::Kill).max(2));
        let pool = Pool::with_fault_plan(Topology::flat(2), 0, plan);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(
            done.load(Ordering::SeqCst),
            98,
            "exactly the 2 killed jobs are lost"
        );
        assert!(
            eventually(|| {
                let s = pool.stats();
                s.worker_deaths == 2 && s.respawns == 2
            }),
            "supervision healed both deaths: {:?} deaths / {:?} respawns",
            pool.stats().worker_deaths,
            pool.stats().respawns
        );
        assert_eq!(
            pool.stats().panics,
            2,
            "kills are accounted like panics first"
        );
        assert_eq!(pool.active_workers(), 2, "census intact");
        // The healed pool still executes new work.
        let done2 = done.clone();
        pool.spawn(move |_| {
            done2.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 99);
    }

    #[test]
    fn kill_on_the_park_path_heals_without_stranding_wakes() {
        use crate::faults::{FaultKind, FaultRule};
        let plan = FaultPlan::new().rule(FaultRule::new("worker.park", FaultKind::Kill).max(1));
        let pool = Pool::with_fault_plan(Topology::flat(2), 0, plan);
        // Let the pool go idle: some worker reaches the park hook and dies.
        assert!(
            eventually(|| {
                let s = pool.stats();
                s.worker_deaths == 1 && s.respawns == 1
            }),
            "idle worker died at the park hook and was respawned"
        );
        assert_eq!(pool.stats().panics, 0, "no job was involved");
        // The healed pool still runs work to completion (wakes intact).
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 50);
        assert_eq!(pool.active_workers(), 2);
    }

    #[test]
    fn delay_faults_perturb_timing_only() {
        use crate::faults::{FaultKind, FaultRule};
        let plan = FaultPlan::new().rule(
            FaultRule::new(
                "worker.body",
                FaultKind::Delay(std::time::Duration::from_micros(50)),
            )
            .p(0.5)
            .seed(7),
        );
        let pool = Pool::with_fault_plan(Topology::flat(2), 0, plan);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 64);
        let s = pool.stats();
        assert_eq!((s.panics, s.worker_deaths, s.respawns), (0, 0, 0));
        assert!(pool.fault_plane().injected_total() > 0, "delays did fire");
    }

    #[test]
    fn runs_all_jobs() {
        let pool = Pool::new(4);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 100);
        assert_eq!(pool.stats().total_executed(), 100);
    }

    #[test]
    fn nested_spawns_are_awaited() {
        let pool = Pool::new(4);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let done = done.clone();
            pool.spawn(move |ctx| {
                for _ in 0..10 {
                    let done = done.clone();
                    ctx.spawn(move |_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn deep_recursion_completes() {
        let pool = Pool::new(4);
        let done = Arc::new(AtomicU64::new(0));
        fn rec(depth: u32, ctx: &WorkerCtx, done: Arc<AtomicU64>) {
            if depth == 0 {
                done.fetch_add(1, Ordering::SeqCst);
                return;
            }
            for _ in 0..2 {
                let done = done.clone();
                ctx.spawn(move |c| rec(depth - 1, c, done));
            }
        }
        let d2 = done.clone();
        pool.spawn(move |ctx| rec(10, ctx, d2));
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1024);
    }

    #[test]
    fn work_spreads_across_workers() {
        let pool = Pool::new(4);
        let seen = Arc::new(Mutex::new(HashSet::new()));
        for _ in 0..400 {
            let seen = seen.clone();
            pool.spawn(move |ctx| {
                // A little spinning makes single-worker monopoly unlikely.
                std::hint::black_box((0..1000).sum::<u64>());
                seen.lock().insert(ctx.id);
            });
        }
        pool.wait_quiescent();
        assert!(
            seen.lock().len() >= 2 || !multicore(),
            "expected at least two workers to participate"
        );
    }

    #[test]
    fn stealing_happens_under_skewed_spawning() {
        let pool = Pool::new(4);
        // One root job spawns all the work locally; others must steal.
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.spawn(move |ctx| {
            for _ in 0..200 {
                let d = d.clone();
                ctx.spawn(move |_| {
                    std::hint::black_box((0..5000).sum::<u64>());
                    d.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 200);
        assert!(
            pool.stats().total_stolen() > 0 || !multicore(),
            "peers should have stolen from the busy worker"
        );
    }

    #[test]
    fn flat_topology_steals_are_all_remote() {
        // Under flat (singleton domains) a worker has no siblings: every
        // steal must be classified remote.
        let pool = Pool::new(4);
        let d = Arc::new(AtomicU64::new(0));
        let d2 = d.clone();
        pool.spawn(move |ctx| {
            for _ in 0..100 {
                let d = d2.clone();
                ctx.spawn(move |_| {
                    std::hint::black_box((0..5000).sum::<u64>());
                    d.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        pool.wait_quiescent();
        let stats = pool.stats();
        assert_eq!(stats.total_local_steals(), 0, "flat has no siblings");
        assert_eq!(stats.total_stolen(), stats.total_remote_steals());
    }

    #[test]
    fn grouped_topologies_drain_all_work() {
        for topo in [
            Topology::flat(1),
            Topology::flat(3),
            Topology::domains(2, 2),
            Topology::from_sizes([1, 3]),
        ] {
            let pool = Pool::with_topology(topo.clone());
            let done = Arc::new(AtomicU64::new(0));
            for _ in 0..8 {
                let done = done.clone();
                pool.spawn(move |ctx| {
                    for _ in 0..8 {
                        let done = done.clone();
                        ctx.spawn(move |_| {
                            done.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
            pool.wait_quiescent();
            assert_eq!(done.load(Ordering::SeqCst), 64, "topology {topo:?}");
        }
    }

    #[test]
    fn domain_affinity_spawns_complete() {
        let pool = Pool::with_topology(Topology::domains(2, 2));
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..50u64 {
            let done = done.clone();
            pool.spawn_in(DomainId(i % 2), move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 50);
        assert_eq!(pool.stats().total_executed(), 50);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_domain_spawn_panics() {
        let pool = Pool::with_topology(Topology::domains(2, 1));
        pool.spawn_in(DomainId(2), |_| {});
    }

    #[test]
    fn batched_domain_spawns_complete_and_are_recorded() {
        let pool = Pool::with_topology(Topology::domains(2, 2));
        let done = Arc::new(AtomicU64::new(0));
        pool.spawn_batch_in((0..10u64).map(|g| {
            let done = done.clone();
            (DomainId(g % 2), move |_: &WorkerCtx| {
                done.fetch_add(1, Ordering::SeqCst);
            })
        }));
        // An empty batch is a no-op, not a hang.
        pool.spawn_batch_in(std::iter::empty::<(DomainId, fn(&WorkerCtx))>());
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 10);
        let stats = pool.stats();
        assert_eq!(stats.domain_spawns, vec![5, 5]);
        assert_eq!(stats.total_domain_spawns(), 10);
    }

    #[test]
    fn worker_ctx_reports_domain() {
        let pool = Pool::with_topology(Topology::domains(2, 2));
        let seen = Arc::new(Mutex::new(Vec::new()));
        for d in 0..2u64 {
            for _ in 0..8 {
                let seen = seen.clone();
                pool.spawn_in(DomainId(d), move |ctx| {
                    seen.lock().push((d, ctx.id, ctx.domain));
                    // The ctx's own id/domain are always consistent with
                    // the topology, wherever the job ended up running.
                    std::hint::black_box((0..1000).sum::<u64>());
                });
            }
        }
        pool.wait_quiescent();
        let topo = pool.topology().clone();
        for (_, id, dom) in seen.lock().iter() {
            assert_eq!(topo.domain_of(id.0 as usize), *dom);
        }
        assert_eq!(pool.num_domains(), 2);
    }

    #[test]
    fn cancelled_jobs_are_dropped_and_counted() {
        let pool = Pool::new(2);
        let ran = Arc::new(AtomicU64::new(0));
        let tag = PoolTag::new();
        // Park the pool so queued jobs sit in the injector while we
        // cancel half of them before anything runs.
        wait_all_parked(&pool);
        let mut tokens = Vec::new();
        for _ in 0..10 {
            let token = CancelToken::new();
            tokens.push(token.clone());
            let ran = ran.clone();
            pool.spawn_with(
                SpawnOpts {
                    token: Some(token),
                    tag: Some(tag.clone()),
                    ..SpawnOpts::default()
                },
                move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                },
            );
        }
        for t in &tokens[..5] {
            t.cancel();
        }
        pool.wait_quiescent();
        let stats = pool.stats();
        let slice = tag.stats();
        // At least the 5 pre-cancelled tokens resolved cancelled; a
        // racing worker may have claimed some before the cancel landed,
        // so assert conservation, not an exact split.
        assert_eq!(slice.executed + slice.cancelled, 10);
        assert_eq!(slice.executed, ran.load(Ordering::SeqCst));
        assert_eq!(stats.cancelled, slice.cancelled);
        assert_eq!(stats.total_executed(), slice.executed);
        let resolved = tokens.iter().filter(|t| t.is_cancelled()).count();
        let claimed = tokens.iter().filter(|t| t.was_claimed()).count();
        assert_eq!(resolved + claimed, 10, "every token settled exactly once");
    }

    #[test]
    fn spawn_with_domain_routes_to_injector() {
        let pool = Pool::with_topology(Topology::domains(2, 1));
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.spawn_with(
            SpawnOpts {
                domain: Some(DomainId(1)),
                ..SpawnOpts::default()
            },
            move |_| {
                d.fetch_add(1, Ordering::SeqCst);
            },
        );
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().domain_spawns, vec![0, 1]);
    }

    #[test]
    fn dropped_cancelled_body_runs_destructors_on_worker() {
        struct Marker(Arc<AtomicU64>);
        impl Drop for Marker {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let pool = Pool::new(1);
        wait_all_parked(&pool);
        let drops = Arc::new(AtomicU64::new(0));
        let token = CancelToken::new();
        token.cancel();
        let m = Marker(drops.clone());
        pool.spawn_with(
            SpawnOpts {
                token: Some(token),
                ..SpawnOpts::default()
            },
            move |_| {
                let _keep = &m;
                unreachable!("cancelled before dispatch");
            },
        );
        pool.wait_quiescent();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "closure state released");
        assert_eq!(pool.stats().cancelled, 1);
        assert_eq!(pool.stats().total_executed(), 0);
    }

    #[test]
    fn stats_since_reports_the_delta() {
        let pool = Pool::new(2);
        for _ in 0..5 {
            pool.spawn(|_| {});
        }
        pool.wait_quiescent();
        let base = pool.stats();
        for _ in 0..3 {
            pool.spawn(|_| {});
        }
        pool.wait_quiescent();
        let delta = pool.stats().since(&base);
        assert_eq!(delta.total_executed(), 3);
        assert_eq!(delta.panics, 0);
        assert_eq!(delta.domain_of, base.domain_of);
    }

    #[test]
    fn wait_quiescent_with_no_work_returns() {
        let pool = Pool::new(2);
        pool.wait_quiescent();
    }

    #[test]
    fn pool_shuts_down_cleanly() {
        let pool = Pool::new(3);
        pool.spawn(|_| {});
        pool.wait_quiescent();
        drop(pool);
    }

    #[test]
    fn imbalance_metric_behaves() {
        let s = PoolStats {
            executed: vec![10, 10, 10, 10],
            local_steals: vec![0; 4],
            remote_steals: vec![0; 4],
            panics: 0,
            cancelled: 0,
            domain_of: vec![0, 0, 1, 1],
            domain_spawns: vec![0; 2],
            parks: 0,
            wakes_targeted: 0,
            wakes_escalated: 0,
            grows: 0,
            retires: 0,
            worker_deaths: 0,
            respawns: 0,
        };
        assert!(s.imbalance() < 1e-9);
        assert!(s.imbalance_by_domain() < 1e-9);
        let s2 = PoolStats {
            executed: vec![40, 0, 0, 0],
            local_steals: vec![0; 4],
            remote_steals: vec![0; 4],
            panics: 0,
            cancelled: 0,
            domain_of: vec![0, 0, 1, 1],
            domain_spawns: vec![0; 2],
            parks: 0,
            wakes_targeted: 0,
            wakes_escalated: 0,
            grows: 0,
            retires: 0,
            worker_deaths: 0,
            respawns: 0,
        };
        assert!(s2.imbalance() > 1.0);
        assert!(s2.imbalance_by_domain() > 0.9);
        // Uneven topology, perfectly balanced per worker: the domain
        // metric must normalize by domain size and report 0.
        let s3 = PoolStats {
            executed: vec![100, 100, 100, 100],
            local_steals: vec![0; 4],
            remote_steals: vec![0; 4],
            panics: 0,
            cancelled: 0,
            domain_of: vec![0, 1, 1, 1],
            domain_spawns: vec![0; 2],
            parks: 0,
            wakes_targeted: 0,
            wakes_escalated: 0,
            grows: 0,
            retires: 0,
            worker_deaths: 0,
            respawns: 0,
        };
        assert!(s3.imbalance_by_domain() < 1e-9);
    }

    #[test]
    fn per_domain_aggregation_and_ratio() {
        let s = PoolStats {
            executed: vec![5, 7, 1, 3],
            local_steals: vec![2, 0, 1, 0],
            remote_steals: vec![1, 0, 0, 0],
            panics: 0,
            cancelled: 0,
            domain_of: vec![0, 0, 1, 1],
            domain_spawns: vec![3, 1],
            parks: 0,
            wakes_targeted: 0,
            wakes_escalated: 0,
            grows: 0,
            retires: 0,
            worker_deaths: 0,
            respawns: 0,
        };
        assert_eq!(s.executed_by_domain(), vec![12, 4]);
        assert_eq!(s.local_steals_by_domain(), vec![2, 1]);
        assert_eq!(s.remote_steals_by_domain(), vec![1, 0]);
        assert_eq!(s.total_stolen(), 4);
        assert_eq!(s.total_domain_spawns(), 4);
        assert!((s.remote_steal_ratio() - 0.25).abs() < 1e-12);
        let empty = PoolStats {
            executed: vec![0; 2],
            local_steals: vec![0; 2],
            remote_steals: vec![0; 2],
            panics: 0,
            cancelled: 0,
            domain_of: vec![0, 1],
            domain_spawns: vec![0; 2],
            parks: 0,
            wakes_targeted: 0,
            wakes_escalated: 0,
            grows: 0,
            retires: 0,
            worker_deaths: 0,
            respawns: 0,
        };
        assert_eq!(empty.remote_steal_ratio(), 0.0);
    }

    #[test]
    fn panicking_job_does_not_hang_quiescence() {
        let pool = Pool::new(2);
        pool.spawn(|_| panic!("injected failure"));
        pool.wait_quiescent();
        assert_eq!(pool.stats().panics, 1);
    }

    #[test]
    fn pool_survives_panics_and_keeps_working() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..50 {
            let done = done.clone();
            pool.spawn(move |_| {
                if i % 5 == 0 {
                    panic!("injected failure {i}");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 40);
        assert_eq!(pool.stats().panics, 10);
        // All workers are still alive and accept new work.
        for _ in 0..10 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn children_of_panicking_job_still_run() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.spawn(move |ctx| {
            for _ in 0..8 {
                let d = d.clone();
                ctx.spawn(move |_| {
                    d.fetch_add(1, Ordering::SeqCst);
                });
            }
            panic!("parent fails after spawning");
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(pool.stats().panics, 1);
    }

    /// Block until every worker of `pool` has parked. Parking is thread
    /// state, not CPU occupancy, so this is deterministic even on a
    /// single-CPU host — it only needs the idle spin budget to run out.
    fn wait_all_parked(pool: &Pool) {
        assert!(
            pool.wait_fully_parked(std::time::Duration::from_secs(30)),
            "workers never parked: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn idle_workers_park_once_and_stay_parked() {
        let pool = Pool::with_topology(Topology::domains(2, 2));
        wait_all_parked(&pool);
        let before = pool.stats();
        assert_eq!(before.parks, 4, "each worker parks exactly once");
        // Long enough that the deleted 1ms re-poll would have re-parked
        // every worker dozens of times.
        std::thread::sleep(std::time::Duration::from_millis(80));
        let after = pool.stats();
        assert_eq!(after.parks, before.parks, "a parked worker woke itself");
        assert_eq!(after.total_wakes(), 0, "nothing spawned, nothing woken");
        assert_eq!(after.total_executed(), 0);
        assert_eq!(pool.parked_workers(), 4, "the live gauge agrees");
    }

    #[test]
    fn affinity_spawn_wakes_home_domain_sleeper() {
        let pool = Pool::with_topology(Topology::domains(2, 2));
        wait_all_parked(&pool);
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        pool.spawn_in(DomainId(1), move |_| {
            d2.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        let stats = pool.stats();
        // The wake was satisfied inside the home domain: no escalation.
        assert_eq!(stats.wakes_targeted, 1, "{stats:?}");
        assert_eq!(stats.wakes_escalated, 0, "{stats:?}");
    }

    #[test]
    fn exhausted_home_domain_escalates_the_wake() {
        // Domain 0 has a single worker. The first affinity spawn pops it
        // from the registry synchronously (the pop happens inside
        // `spawn_in`, before the worker has even woken), so the second
        // spawn finds domain 0 empty and must fall outward in ring order
        // to a domain-1 sleeper.
        let pool = Pool::with_topology(Topology::from_sizes([1, 3]));
        wait_all_parked(&pool);
        let done = Arc::new(AtomicU64::new(0));
        // Handshake instead of a sleep: whichever worker runs the first
        // job blocks on `gate` until the test releases it after the
        // second spawn, so no amount of test-thread preemption can let a
        // worker re-park between the two spawns.
        let gate = Arc::new(AtomicU64::new(0));
        {
            let done = done.clone();
            let gate = gate.clone();
            pool.spawn_in(DomainId(0), move |_| {
                while gate.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        {
            let done = done.clone();
            pool.spawn_in(DomainId(0), move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        gate.store(1, Ordering::Release);
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 2);
        let stats = pool.stats();
        assert_eq!(stats.wakes_targeted, 1, "{stats:?}");
        assert_eq!(stats.wakes_escalated, 1, "{stats:?}");
        assert!((stats.escalated_wake_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn external_spawn_wakes_exactly_one_worker() {
        let pool = Pool::with_topology(Topology::domains(2, 2));
        wait_all_parked(&pool);
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        pool.spawn(move |_| {
            d2.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().total_wakes(), 1, "one spawn, one wake");
    }

    #[test]
    fn batch_spawn_wakes_at_most_one_sleeper_per_job() {
        let pool = Pool::with_topology(Topology::domains(2, 2));
        wait_all_parked(&pool);
        let done = Arc::new(AtomicU64::new(0));
        pool.spawn_batch_in((0..2u64).map(|g| {
            let done = done.clone();
            (DomainId(g), move |_: &WorkerCtx| {
                done.fetch_add(1, Ordering::SeqCst);
            })
        }));
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 2);
        let stats = pool.stats();
        assert!(stats.total_wakes() <= 2, "{stats:?}");
        assert!(stats.total_wakes() >= 1, "a fully parked pool needs a wake");
    }

    #[test]
    fn workers_repark_after_quiescence_and_wake_again() {
        let pool = Pool::with_topology(Topology::domains(2, 1));
        wait_all_parked(&pool);
        let done = Arc::new(AtomicU64::new(0));
        for round in 1..=3u64 {
            let parked_before = pool.stats().parks;
            for _ in 0..4 {
                let done = done.clone();
                pool.spawn(move |_| {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.wait_quiescent();
            assert_eq!(done.load(Ordering::SeqCst), 4 * round);
            // At least one worker was woken for the round (the pool was
            // fully parked) and must re-park once the pool drains.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while pool.stats().parks == parked_before {
                assert!(
                    std::time::Instant::now() < deadline,
                    "woken workers never re-parked: {:?}",
                    pool.stats()
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }

    /// Poll until the pool's completed-retire counter reaches `n` (retire
    /// is asynchronous: the reservation lands immediately, the drain when
    /// the worker next checks its flag).
    fn wait_retires(pool: &Pool, n: u64) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while pool.stats().retires < n {
            assert!(
                std::time::Instant::now() < deadline,
                "retire never completed: {:?}",
                pool.stats()
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn fixed_pools_have_no_headroom() {
        let pool = Pool::new(2);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.active_workers(), 2);
        assert_eq!(pool.grow_in(DomainId(0)), None);
    }

    #[test]
    fn grow_and_retire_round_trip() {
        let pool = Pool::with_elastic(Topology::domains(2, 1), 1);
        // 2 domains × (1 active + 1 vacant) = 4 slots, 2 threads.
        assert_eq!(pool.workers(), 4);
        assert_eq!(pool.active_workers(), 2);
        let grown = pool.grow_in(DomainId(0)).expect("a vacant slot exists");
        assert_eq!(pool.active_workers(), 3);
        assert_eq!(pool.grow_in(DomainId(0)), None, "domain 0 is full now");
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 64);
        let retired = pool.retire_in(DomainId(0)).expect("domain 0 can shrink");
        // Highest active slot of the domain goes first — the one we grew.
        assert_eq!(retired, grown);
        assert_eq!(pool.active_workers(), 2);
        wait_retires(&pool, 1);
        // The slot is reusable: grow it again and run more work through it.
        assert_eq!(pool.grow_in(DomainId(0)), Some(grown));
        for _ in 0..64 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 128);
        let stats = pool.stats();
        assert_eq!(stats.grows, 2);
        assert_eq!(stats.retires, 1);
    }

    #[test]
    fn pool_never_retires_its_last_worker() {
        let pool = Pool::with_elastic(Topology::flat(1), 2);
        assert_eq!(pool.active_workers(), 1);
        assert_eq!(pool.retire_in(DomainId(0)), None);
        // Grow one, and the original becomes retirable — but only one of
        // the two can go.
        pool.grow_in(DomainId(0)).expect("headroom exists");
        assert!(pool.retire_in(DomainId(0)).is_some());
        assert_eq!(pool.retire_in(DomainId(0)), None);
        assert_eq!(pool.active_workers(), 1);
    }

    #[test]
    fn retiring_worker_republishes_its_queued_children() {
        // Two workers in one domain. Block one with a decoy job, have the
        // other spawn children into its own deque and block too — the
        // children cannot move (the only possible thief is busy). Retire
        // the spawner mid-job: when its gate opens it must drain and
        // republish every child into the domain injector, observable
        // before the decoy worker is released to run them.
        let pool = Pool::with_elastic(Topology::from_sizes([2]), 0);
        let done = Arc::new(AtomicU64::new(0));
        let decoy_gate = Arc::new(AtomicU64::new(0));
        let spawner_gate = Arc::new(AtomicU64::new(0));
        let spawner_id = Arc::new(AtomicU64::new(u64::MAX));
        {
            let gate = decoy_gate.clone();
            pool.spawn(move |_| {
                while gate.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
            });
        }
        // Wait until the decoy occupies one worker (it parks nobody: it
        // spins). Then the second job must land on the other worker.
        while pool.queue_depths().total() > 0 {
            std::thread::yield_now();
        }
        {
            let (done, gate, id) = (done.clone(), spawner_gate.clone(), spawner_id.clone());
            pool.spawn(move |ctx| {
                for _ in 0..16 {
                    let done = done.clone();
                    ctx.spawn(move |_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
                id.store(ctx.id.0, Ordering::SeqCst);
                while gate.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
            });
        }
        while spawner_id.load(Ordering::SeqCst) == u64::MAX {
            std::thread::yield_now();
        }
        let spawner = WorkerId(spawner_id.load(Ordering::SeqCst));
        assert!(pool.retire_worker(spawner), "spawner is active");
        assert!(!pool.retire_worker(spawner), "already retiring");
        // Open the spawner's gate: it finishes its job, sees the retire
        // flag, and republishes all 16 children into the domain injector.
        spawner_gate.store(1, Ordering::SeqCst);
        wait_retires(&pool, 1);
        assert_eq!(
            pool.queue_depths().domain_injectors[0],
            16,
            "children republished, untouched (their only thief is busy)"
        );
        assert_eq!(done.load(Ordering::SeqCst), 0);
        assert_eq!(pool.active_workers(), 1);
        // Release the decoy: the survivor picks the republished work up.
        decoy_gate.store(1, Ordering::SeqCst);
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 16, "no republished job lost");
    }

    #[test]
    fn grow_retire_cycles_conserve_jobs_and_tokens() {
        let pool = Pool::with_elastic(Topology::domains(2, 1), 2);
        let done = Arc::new(AtomicU64::new(0));
        let mut spawned = 0u64;
        for cycle in 0..40u64 {
            let d = DomainId(cycle % 2);
            for _ in 0..8 {
                let done = done.clone();
                pool.spawn_in(d, move |_| {
                    done.fetch_add(1, Ordering::SeqCst);
                });
                spawned += 1;
            }
            if cycle % 2 == 0 {
                pool.grow_anywhere(d);
            } else {
                pool.retire_in(d);
            }
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), spawned);
        // Every requested retire completed (no worker wedged mid-drain),
        // after which the pool still parks cleanly: no leaked token can
        // be pending against a vacated slot.
        let stats = pool.stats();
        wait_retires(&pool, stats.retires);
        assert!(
            pool.wait_fully_parked(std::time::Duration::from_secs(30)),
            "{:?}",
            pool.stats()
        );
        assert!(pool.active_workers() >= 1);
    }

    #[test]
    fn retire_wakes_a_parked_worker_out_of_the_registry() {
        let pool = Pool::with_elastic(Topology::flat(2), 0);
        wait_all_parked(&pool);
        let retired = pool.retire_in(DomainId(1)).expect("two active workers");
        assert_eq!(retired, WorkerId(1));
        wait_retires(&pool, 1);
        // The survivor still parks; the retiree is out of the registry.
        assert!(
            pool.wait_fully_parked(std::time::Duration::from_secs(30)),
            "{:?}",
            pool.stats()
        );
        assert_eq!(pool.parked_workers(), 1);
        // And the pool still executes work afterwards.
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.spawn(move |_| {
            d.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
