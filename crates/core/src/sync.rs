//! The HTVM synchronization model: dataflow-style primitives.
//!
//! The paper's synchronization model calls for "synchronization constructs
//! for data-flow style operations" (§3.2). Following EARTH — the SGT/TGT
//! ancestor the authors cite — the base primitive is the **sync slot**: a
//! counter initialized to the number of inputs a computation waits for;
//! every data arrival signals the slot; when the count reaches zero the
//! associated continuation is *enabled* (here: executed or enqueued). All
//! higher-level constructs (futures, barriers, atomic sections) reduce to
//! sync slots plus write-once cells.

use std::sync::Arc;

use crate::chk::{AtomicIsize, AtomicU64, Condvar, Mutex, Ordering};

/// The continuation state of a [`SyncSlot`] — a one-way street:
/// `Unset → Armed → Fired` (re-arming an unfired slot is allowed;
/// re-arming a fired one is a recorded no-op).
enum ActionState {
    /// No continuation attached yet.
    Unset,
    /// A continuation is waiting for the count to drain.
    Armed(Box<dyn FnOnce() + Send>),
    /// The continuation has run; the slot is spent.
    Fired,
}

/// An EARTH-style sync slot: fires its continuation exactly once, when
/// `count` signals have arrived.
///
/// The continuation runs on the thread that delivers the final signal —
/// matching EARTH, where the fiber enabled by the last sync signal is
/// enqueued by the signalling processor.
///
/// "Exactly once" is a property of the slot, not of one continuation:
/// once the slot has fired, [`SyncSlot::set_action`] refuses to arm it
/// again (returning `false` and counting the attempt in
/// [`SyncSlot::late_actions`]), so no slot ever runs two continuations.
pub struct SyncSlot {
    remaining: AtomicIsize,
    action: Mutex<ActionState>,
    /// Losing `set_action` attempts, dropped on the floor by contract:
    /// arrivals after the slot fired, plus arrivals after the threshold
    /// crossed that found another action already armed.
    late_actions: AtomicU64,
}

impl SyncSlot {
    /// A slot that fires after `count` signals. `count == 0` fires
    /// immediately at construction... except that there is no continuation
    /// yet, so zero-count slots fire on `set_action`.
    pub fn new(count: usize) -> Arc<Self> {
        Arc::new(Self {
            remaining: AtomicIsize::new(count as isize),
            action: Mutex::new(ActionState::Unset),
            late_actions: AtomicU64::new(0),
        })
    }

    /// A slot with its continuation attached.
    pub fn with_action(count: usize, action: impl FnOnce() + Send + 'static) -> Arc<Self> {
        let slot = Self::new(count);
        slot.set_action(action);
        slot
    }

    /// Attach (or replace, if the threshold has not yet been crossed) the
    /// continuation. If the count already reached zero, the action runs
    /// immediately on this thread.
    ///
    /// Returns `true` if the caller's action was armed or ran. Every loser
    /// gets `false` plus exactly one [`SyncSlot::late_actions`] tick: a
    /// caller that finds the slot already `Fired`, *or* that finds the
    /// threshold crossed with someone else's action armed — that armed
    /// action belongs to the crossing signal's in-flight `try_fire`
    /// and must not be replaced. (Replacing it was the historical bug: the
    /// armed action was dropped on the floor, the loser was told `true`,
    /// and `late_actions` never moved. Found by the schedule explorer —
    /// seed `0x203cfdbad06e70dc` in `crates/check/tests/schedule_explore.rs`.)
    ///
    /// The `remaining` check therefore lives *inside* the action lock: the
    /// lock serializes every arm/fire transition, so "crossed + Armed"
    /// reliably means an in-flight `try_fire` owns that action, and
    /// "crossed + Unset" means the firing is ours to take.
    pub fn set_action(self: &Arc<Self>, action: impl FnOnce() + Send + 'static) -> bool {
        {
            let mut slot = self.action.lock();
            let crossed = self.remaining.load(Ordering::Acquire) <= 0;
            match &*slot {
                ActionState::Fired => {
                    self.late_actions.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                ActionState::Armed(_) if crossed => {
                    // The crossing signal's try_fire (past its fetch_sub,
                    // not yet through this lock) owns the armed action; we
                    // are the late one.
                    self.late_actions.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                ActionState::Unset if crossed => {
                    // Count already drained and nothing armed: the firing
                    // is ours. Mark the slot spent under the lock, run the
                    // action outside it (it may re-enter this slot).
                    *slot = ActionState::Fired;
                }
                _ => {
                    *slot = ActionState::Armed(Box::new(action));
                    return true;
                }
            }
        }
        action();
        true
    }

    /// Deliver one signal. Returns `true` if this signal enabled the
    /// continuation.
    pub fn signal(self: &Arc<Self>) -> bool {
        self.signal_n(1)
    }

    /// Deliver `n` signals at once.
    pub fn signal_n(self: &Arc<Self>, n: usize) -> bool {
        let prev = self.remaining.fetch_sub(n as isize, Ordering::AcqRel);
        if prev > 0 && prev <= n as isize {
            self.try_fire();
            true
        } else {
            false
        }
    }

    /// Signals still outstanding (may be negative if over-signalled).
    pub fn outstanding(&self) -> isize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Whether the continuation has already run.
    pub fn has_fired(&self) -> bool {
        matches!(*self.action.lock(), ActionState::Fired)
    }

    /// How many [`SyncSlot::set_action`] calls lost the race and were
    /// dropped as no-ops — exactly one tick per losing caller, whether it
    /// arrived after the fire or in the window between the threshold
    /// crossing and the fire.
    pub fn late_actions(&self) -> u64 {
        self.late_actions.load(Ordering::Relaxed)
    }

    /// Run the continuation if one is armed, marking the slot spent. The
    /// `Fired` marker is written under the same lock that guards arming,
    /// so a concurrent `set_action` either re-arms *before* the take (its
    /// action runs here — it replaced an unfired one) or observes `Fired`
    /// and no-ops; two continuations can never both run.
    fn try_fire(&self) {
        let action = {
            let mut slot = self.action.lock();
            match std::mem::replace(&mut *slot, ActionState::Fired) {
                ActionState::Armed(f) => Some(f),
                // No continuation yet: stay unset so a zero-count slot can
                // still fire on a later `set_action`.
                ActionState::Unset => {
                    *slot = ActionState::Unset;
                    None
                }
                ActionState::Fired => None,
            }
        };
        if let Some(f) = action {
            f();
        }
    }
}

impl std::fmt::Debug for SyncSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncSlot")
            .field("remaining", &self.outstanding())
            .field("fired", &self.has_fired())
            .finish()
    }
}

/// A write-once cell with dataflow readers — the substrate of LITL-X
/// futures ("eager producer-consumer computing, with efficient localized
/// buffering of requests at the site of the needed values", §3.2).
///
/// Readers that arrive before the value either block ([`IVar::get`]) or
/// leave a continuation buffered *at the cell* ([`IVar::on_full`]) — the
/// localized request buffering of the paper (an I-structure in dataflow
/// terms).
pub struct IVar<T> {
    state: Mutex<IVarState<T>>,
    ready: Condvar,
}

/// A reader continuation buffered at the cell until the value arrives.
type Waiter<T> = Box<dyn FnOnce(&T) + Send>;

enum IVarState<T> {
    Empty { waiters: Vec<Waiter<T>> },
    // Arc so continuations can run with no lock held (a continuation may
    // re-enter this very cell).
    Full(Arc<T>),
}

impl<T> Default for IVar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IVar<T> {
    /// An empty cell.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(IVarState::Empty {
                waiters: Vec::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Fill the cell. Panics on double write (single-assignment semantics).
    /// All buffered continuations run on the filling thread, in arrival
    /// order, with no lock held.
    pub fn put(&self, value: T) {
        let value = Arc::new(value);
        let waiters = {
            let mut st = self.state.lock();
            match &mut *st {
                IVarState::Full(_) => panic!("IVar::put: double write to single-assignment cell"),
                IVarState::Empty { waiters } => {
                    let taken = std::mem::take(waiters);
                    *st = IVarState::Full(value.clone());
                    taken
                }
            }
        };
        self.ready.notify_all();
        for w in waiters {
            w(&value);
        }
    }

    /// True once the cell has been written.
    pub fn is_full(&self) -> bool {
        matches!(&*self.state.lock(), IVarState::Full(_))
    }

    /// Read the value if present.
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        match &*self.state.lock() {
            IVarState::Full(v) => Some((**v).clone()),
            IVarState::Empty { .. } => None,
        }
    }

    /// Block until the value is available. Intended for LGT-level code; SGT
    /// code should prefer [`IVar::on_full`] to avoid occupying a worker.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        let mut st = self.state.lock();
        loop {
            if let IVarState::Full(v) = &*st {
                return (**v).clone();
            }
            self.ready.wait(&mut st);
        }
    }

    /// [`IVar::get`] with a bound: block until the value is available or
    /// `timeout` elapses, returning `None` on timeout. The cell is
    /// unaffected either way — a later `get`/`get_timeout` still sees the
    /// value when it arrives.
    pub fn get_timeout(&self, timeout: std::time::Duration) -> Option<T>
    where
        T: Clone,
    {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let IVarState::Full(v) = &*st {
                return Some((**v).clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.ready.wait_for(&mut st, deadline - now);
        }
    }

    /// Run `f` with the value once available: immediately if already full,
    /// otherwise buffered at the cell and run by the producer on `put`.
    /// Either way `f` runs with no internal lock held.
    pub fn on_full(&self, f: impl FnOnce(&T) + Send + 'static) {
        let mut f = Some(f);
        let full = {
            let mut st = self.state.lock();
            match &mut *st {
                IVarState::Full(v) => Some(v.clone()),
                IVarState::Empty { waiters } => {
                    waiters.push(Box::new(f.take().expect("continuation present")));
                    None
                }
            }
        };
        if let Some(v) = full {
            (f.take().expect("continuation present"))(&v);
        }
    }

    /// Number of buffered (deferred) readers.
    pub fn deferred_readers(&self) -> usize {
        match &*self.state.lock() {
            IVarState::Empty { waiters } => waiters.len(),
            IVarState::Full(_) => 0,
        }
    }
}

impl<T> std::fmt::Debug for IVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IVar")
            .field("full", &self.is_full())
            .finish()
    }
}

/// A reusable counting barrier for LGT-level phases.
///
/// The paper lists "synchronous global barriers" among the productivity
/// problems it wants to *limit*; this type exists mostly as the baseline
/// that the dataflow experiments beat.
pub struct PoolBarrier {
    parties: usize,
    arrived: Mutex<(usize, u64)>, // (count, generation)
    cv: Condvar,
}

impl PoolBarrier {
    /// A barrier for `parties` participants.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Self {
            parties,
            arrived: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    /// Arrive and wait for all parties. Returns `true` on the serial
    /// (last-arriving) participant.
    pub fn wait(&self) -> bool {
        let mut st = self.arrived.lock();
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.parties {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
            true
        } else {
            while st.1 == gen {
                self.cv.wait(&mut st);
            }
            false
        }
    }
}

/// A monotone event counter with blocking threshold waits; handy for tests
/// and for the monitor.
#[derive(Debug, Default)]
pub struct EventCount {
    count: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl EventCount {
    /// Zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment and wake waiters.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::AcqRel);
        let _g = self.lock.lock();
        self.cv.notify_all();
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Block until the counter reaches `target`.
    pub fn wait_for(&self, target: u64) {
        let mut g = self.lock.lock();
        while self.count.load(Ordering::Acquire) < target {
            self.cv.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sync_slot_fires_exactly_once() {
        let fired = Arc::new(AtomicUsize::new(0));
        let slot = SyncSlot::with_action(3, {
            let fired = fired.clone();
            move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(!slot.signal());
        assert!(!slot.signal());
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert!(slot.signal());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Over-signalling must not re-fire.
        assert!(!slot.signal());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn sync_slot_zero_count_fires_on_attach() {
        let fired = Arc::new(AtomicUsize::new(0));
        let slot = SyncSlot::new(0);
        slot.set_action({
            let fired = fired.clone();
            move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn sync_slot_signal_n_batches() {
        let fired = Arc::new(AtomicUsize::new(0));
        let slot = SyncSlot::with_action(10, {
            let fired = fired.clone();
            move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(!slot.signal_n(9));
        assert!(slot.signal_n(5));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    /// The documented "fires exactly once" contract: a continuation
    /// attached *after* the slot fired must not run — historically it ran
    /// immediately, so one slot could fire twice.
    #[test]
    fn sync_slot_post_fire_set_action_is_a_recorded_noop() {
        let fired = Arc::new(AtomicUsize::new(0));
        let slot = SyncSlot::with_action(1, {
            let fired = fired.clone();
            move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(slot.signal());
        assert!(slot.has_fired());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Late attach: dropped, recorded, reported.
        let late = fired.clone();
        assert!(!slot.set_action(move || {
            late.fetch_add(100, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "late action must not run");
        assert_eq!(slot.late_actions(), 1);
        // Further signals still cannot resurrect it.
        assert!(!slot.signal());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    /// Replacing a not-yet-fired action is still allowed (and the
    /// replacement is the one that runs).
    #[test]
    fn sync_slot_replace_before_fire_runs_replacement() {
        let fired = Arc::new(AtomicUsize::new(0));
        let slot = SyncSlot::with_action(1, {
            let fired = fired.clone();
            move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }
        });
        let f2 = fired.clone();
        assert!(slot.set_action(move || {
            f2.fetch_add(10, Ordering::SeqCst);
        }));
        assert!(slot.signal());
        assert_eq!(fired.load(Ordering::SeqCst), 10);
        assert_eq!(slot.late_actions(), 0);
    }

    /// A zero-count slot stays armable until its action has actually run:
    /// signalling an actionless slot must not burn the firing.
    #[test]
    fn sync_slot_unset_fire_does_not_spend_the_slot() {
        let fired = Arc::new(AtomicUsize::new(0));
        let slot = SyncSlot::new(1);
        assert!(slot.signal(), "threshold crossed with no action armed");
        assert!(!slot.has_fired(), "nothing ran yet");
        let f2 = fired.clone();
        assert!(slot.set_action(move || {
            f2.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(slot.has_fired());
    }

    #[test]
    fn sync_slot_concurrent_signals_fire_once() {
        for _ in 0..50 {
            let fired = Arc::new(AtomicUsize::new(0));
            let slot = SyncSlot::with_action(8, {
                let fired = fired.clone();
                move || {
                    fired.fetch_add(1, Ordering::SeqCst);
                }
            });
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let slot = slot.clone();
                    std::thread::spawn(move || {
                        slot.signal();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(fired.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn ivar_buffers_deferred_readers() {
        let iv: IVar<u32> = IVar::new();
        let seen = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let seen = seen.clone();
            iv.on_full(move |v| {
                seen.fetch_add(*v as usize, Ordering::SeqCst);
            });
        }
        assert_eq!(iv.deferred_readers(), 3);
        iv.put(5);
        assert_eq!(seen.load(Ordering::SeqCst), 15);
        assert_eq!(iv.deferred_readers(), 0);
        // Late reader runs immediately.
        let seen2 = seen.clone();
        iv.on_full(move |v| {
            seen2.fetch_add(*v as usize, Ordering::SeqCst);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "double write")]
    fn ivar_rejects_double_put() {
        let iv: IVar<u32> = IVar::new();
        iv.put(1);
        iv.put(2);
    }

    #[test]
    fn ivar_blocking_get_sees_producer() {
        let iv = Arc::new(IVar::<u64>::new());
        let reader = {
            let iv = iv.clone();
            std::thread::spawn(move || iv.get())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        iv.put(42);
        assert_eq!(reader.join().unwrap(), 42);
    }

    #[test]
    fn barrier_releases_all_parties() {
        let b = Arc::new(PoolBarrier::new(4));
        let serials = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                let serials = serials.clone();
                std::thread::spawn(move || {
                    if b.wait() {
                        serials.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(serials.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_is_reusable() {
        let b = Arc::new(PoolBarrier::new(2));
        let h = {
            let b = b.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    b.wait();
                }
            })
        };
        for _ in 0..10 {
            b.wait();
        }
        h.join().unwrap();
    }

    #[test]
    fn event_count_wait_for() {
        let ec = Arc::new(EventCount::new());
        let h = {
            let ec = ec.clone();
            std::thread::spawn(move || {
                ec.wait_for(5);
                ec.get()
            })
        };
        for _ in 0..5 {
            ec.add(1);
        }
        assert!(h.join().unwrap() >= 5);
    }
}
