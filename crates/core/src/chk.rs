//! The shim layer behind the `check` feature: one import site for every
//! concurrency primitive the lock-free spine is built on.
//!
//! `deque.rs`, `sleepers.rs`, `native.rs` and `sync.rs` take their
//! atomics, fences, mutexes and condvars from this module instead of
//! naming `std::sync::atomic` / `parking_lot` directly. In a normal build
//! these are plain re-exports — zero cost, zero behavior change. With
//! `--features check` they resolve to `htvm_check::prim`'s instrumented
//! versions, which yield to the deterministic schedule explorer at every
//! operation (see `crates/check` and ARCHITECTURE.md §verification).

#[cfg(feature = "check")]
pub(crate) use htvm_check::prim::{
    compiler_fence, fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU64, AtomicU8,
    AtomicUsize, Condvar, Mutex, MutexGuard,
};

#[cfg(not(feature = "check"))]
pub(crate) use std::sync::atomic::{
    compiler_fence, fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU64, AtomicU8,
    AtomicUsize,
};

#[cfg(not(feature = "check"))]
pub(crate) use parking_lot::{Condvar, Mutex, MutexGuard};

// Same type either way; re-exported so shim users need one import line.
pub(crate) use std::sync::atomic::Ordering;
