//! Identifiers for the entities of the thread hierarchy.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a large-grain thread.
    LgtId,
    "lgt"
);
id_type!(
    /// Identifier of a small-grain thread invocation.
    SgtId,
    "sgt"
);
id_type!(
    /// Identifier of a tiny-grain thread (fiber) within a TGT graph.
    TgtId,
    "tgt"
);
id_type!(
    /// Identifier of a native worker thread.
    WorkerId,
    "w"
);
id_type!(
    /// Identifier of a locality domain of the native pool (a group of
    /// workers mirroring one of the paper's thread-unit groups).
    DomainId,
    "dom"
);

/// A process-wide monotonic id generator (used for LGT/SGT ids so traces
/// from concurrent spawns stay unique).
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// A generator starting at 0.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Produce the next id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(LgtId(3).to_string(), "lgt3");
        assert_eq!(SgtId(7).to_string(), "sgt7");
        assert_eq!(format!("{:?}", TgtId(0)), "tgt0");
        assert_eq!(WorkerId(12).to_string(), "w12");
        assert_eq!(DomainId(2).to_string(), "dom2");
    }

    #[test]
    fn idgen_is_monotonic() {
        let g = IdGen::new();
        let a = g.next();
        let b = g.next();
        assert!(b > a);
    }
}
