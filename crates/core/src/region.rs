//! LGT private memory for the native runtime.
//!
//! The HTVM memory model gives each LGT "its own private memory space" that
//! the SGTs it invokes can all see (§3.1.1). On the native runtime this is a
//! [`SharedRegion`]: a word-granularity memory area that many SGTs may read
//! and write concurrently without locks (every word is an atomic). It plays
//! the role that the simulated runtime gives to scratchpad/on-chip regions
//! addressed through `htvm_sim::GAddr`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A lock-free, word-addressed memory region shared by the SGTs of one LGT.
#[derive(Debug, Clone)]
pub struct SharedRegion {
    words: Arc<Box<[AtomicU64]>>,
}

impl SharedRegion {
    /// A zeroed region of `n` 64-bit words.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        Self {
            words: Arc::new(v.into_boxed_slice()),
        }
    }

    /// Build from `f64` data.
    pub fn from_f64(data: &[f64]) -> Self {
        let r = Self::new(data.len());
        for (i, &x) in data.iter().enumerate() {
            r.write_f64(i, x);
        }
        r
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the region is zero-length.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read word `i`.
    pub fn read(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Write word `i`.
    pub fn write(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed);
    }

    /// Read word `i` as `f64`.
    pub fn read_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.read(i))
    }

    /// Write word `i` as `f64`.
    pub fn write_f64(&self, i: usize, v: f64) {
        self.write(i, v.to_bits());
    }

    /// Atomic add on word `i` (u64), returning the previous value.
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_add(v, Ordering::AcqRel)
    }

    /// Atomic add on word `i` interpreted as `f64` (CAS loop).
    pub fn fetch_add_f64(&self, i: usize, v: f64) {
        let w = &self.words[i];
        let mut cur = w.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match w.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copy out as `f64`s.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.read_f64(i)).collect()
    }

    /// Whether two handles alias the same underlying memory. Dependence
    /// analysis (LITL-X loop lowering) needs identity, not equality: two
    /// differently-named bindings of one region must be treated as the
    /// same array.
    pub fn same_region(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.words, &other.words)
    }

    /// The region's word slab, for run-at-a-time kernel execution.
    ///
    /// Compiled kernels iterate contiguous runs over this slice instead of
    /// calling [`SharedRegion::read_f64`] once per element: taking the
    /// slice once per run amortizes the `Arc` indirection, and iterating a
    /// subslice (or indexing it with a hoisted bounds proof) keeps the
    /// inner loop free of per-element checks. All element access is still
    /// relaxed-atomic — a `SharedRegion` may always be written concurrently
    /// (e.g. by a racing `spawn` block), so handing out plain `&[f64]`
    /// would be unsound no matter what the kernel proves about itself.
    pub fn atomics(&self) -> &[AtomicU64] {
        &self.words
    }

    /// Read word `i` as `f64` without a bounds check.
    ///
    /// # Safety
    ///
    /// `i < self.len()`. The LITL-X kernel compiler is the intended
    /// caller: it proves the bound at compile time (min/max of each affine
    /// index over the nest's rectangular iteration box) and routes every
    /// unprovable access to the checked fallback instead.
    #[inline]
    pub unsafe fn read_f64_unchecked(&self, i: usize) -> f64 {
        debug_assert!(i < self.words.len());
        f64::from_bits(self.words.get_unchecked(i).load(Ordering::Relaxed))
    }

    /// Write word `i` as `f64` without a bounds check.
    ///
    /// # Safety
    ///
    /// `i < self.len()` — same compile-time-proof contract as
    /// [`SharedRegion::read_f64_unchecked`].
    #[inline]
    pub unsafe fn write_f64_unchecked(&self, i: usize, v: f64) {
        debug_assert!(i < self.words.len());
        self.words
            .get_unchecked(i)
            .store(v.to_bits(), Ordering::Relaxed);
    }

    /// Non-atomic-RMW accumulate (`relaxed load + add + relaxed store`)
    /// without a bounds check — the compiled-kernel fast path for `+=`
    /// stores whose location is provably touched by only one thread at a
    /// time (the SSP executor serializes same-location accumulates through
    /// the wavefront; see `litlx::lang::compile`). Unlike
    /// [`SharedRegion::fetch_add_f64`] there is no CAS loop, so a *truly*
    /// concurrent writer could lose an update — never UB, but only
    /// sequential-equivalent under the executor's disjointness guarantee.
    ///
    /// # Safety
    ///
    /// `i < self.len()` — same compile-time-proof contract as
    /// [`SharedRegion::read_f64_unchecked`].
    #[inline]
    pub unsafe fn accum_f64_unchecked(&self, i: usize, v: f64) {
        debug_assert!(i < self.words.len());
        let w = self.words.get_unchecked(i);
        let cur = f64::from_bits(w.load(Ordering::Relaxed));
        w.store((cur + v).to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f64() {
        let r = SharedRegion::from_f64(&[1.0, 2.5, -3.0]);
        assert_eq!(r.read_f64(1), 2.5);
        r.write_f64(1, 7.25);
        assert_eq!(r.to_f64_vec(), vec![1.0, 7.25, -3.0]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn clones_alias_the_same_memory() {
        let a = SharedRegion::new(2);
        let b = a.clone();
        a.write(0, 99);
        assert_eq!(b.read(0), 99);
    }

    #[test]
    fn run_access_matches_checked_access() {
        let r = SharedRegion::from_f64(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.atomics().len(), 4);
        // SAFETY: indices < len by construction.
        unsafe {
            assert_eq!(r.read_f64_unchecked(2), 3.0);
            r.write_f64_unchecked(1, 9.5);
            r.accum_f64_unchecked(1, 0.5);
        }
        assert_eq!(r.read_f64(1), 10.0);
    }

    #[test]
    fn concurrent_f64_adds_do_not_lose_updates() {
        let r = SharedRegion::new(1);
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        r.fetch_add_f64(0, 0.5);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(r.read_f64(0), 2000.0);
    }
}
