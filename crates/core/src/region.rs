//! LGT private memory for the native runtime.
//!
//! The HTVM memory model gives each LGT "its own private memory space" that
//! the SGTs it invokes can all see (§3.1.1). On the native runtime this is a
//! [`SharedRegion`]: a word-granularity memory area that many SGTs may read
//! and write concurrently without locks (every word is an atomic). It plays
//! the role that the simulated runtime gives to scratchpad/on-chip regions
//! addressed through `htvm_sim::GAddr`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A lock-free, word-addressed memory region shared by the SGTs of one LGT.
#[derive(Debug, Clone)]
pub struct SharedRegion {
    words: Arc<Box<[AtomicU64]>>,
}

impl SharedRegion {
    /// A zeroed region of `n` 64-bit words.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        Self {
            words: Arc::new(v.into_boxed_slice()),
        }
    }

    /// Build from `f64` data.
    pub fn from_f64(data: &[f64]) -> Self {
        let r = Self::new(data.len());
        for (i, &x) in data.iter().enumerate() {
            r.write_f64(i, x);
        }
        r
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the region is zero-length.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read word `i`.
    pub fn read(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Write word `i`.
    pub fn write(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed);
    }

    /// Read word `i` as `f64`.
    pub fn read_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.read(i))
    }

    /// Write word `i` as `f64`.
    pub fn write_f64(&self, i: usize, v: f64) {
        self.write(i, v.to_bits());
    }

    /// Atomic add on word `i` (u64), returning the previous value.
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_add(v, Ordering::AcqRel)
    }

    /// Atomic add on word `i` interpreted as `f64` (CAS loop).
    pub fn fetch_add_f64(&self, i: usize, v: f64) {
        let w = &self.words[i];
        let mut cur = w.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match w.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copy out as `f64`s.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.read_f64(i)).collect()
    }

    /// Whether two handles alias the same underlying memory. Dependence
    /// analysis (LITL-X loop lowering) needs identity, not equality: two
    /// differently-named bindings of one region must be treated as the
    /// same array.
    pub fn same_region(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.words, &other.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f64() {
        let r = SharedRegion::from_f64(&[1.0, 2.5, -3.0]);
        assert_eq!(r.read_f64(1), 2.5);
        r.write_f64(1, 7.25);
        assert_eq!(r.to_f64_vec(), vec![1.0, 7.25, -3.0]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn clones_alias_the_same_memory() {
        let a = SharedRegion::new(2);
        let b = a.clone();
        a.write(0, 99);
        assert_eq!(b.read(0), 99);
    }

    #[test]
    fn concurrent_f64_adds_do_not_lose_updates() {
        let r = SharedRegion::new(1);
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        r.fetch_add_f64(0, 0.5);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(r.read_f64(0), 2000.0);
    }
}
