//! Cancellation and deadline tokens for work submitted to the pool.
//!
//! The serving layer (`htvm_serve`) needs a guarantee the batch runtime
//! never did: a request cancelled *while its job sits in an injector*
//! must resolve to **exactly one** of executed-or-cancelled — never
//! both (a response delivered after the client gave up) and never
//! neither (a leaked in-flight slot). The token is a three-state
//! machine enforced by a single compare-and-swap:
//!
//! ```text
//!            cancel() / deadline / parent       try_claim()
//!   PENDING ────────────────────────────► CANCELLED
//!      │
//!      └────────────────────────────────► CLAIMED
//! ```
//!
//! * [`CancelToken::cancel`] CASes `PENDING → CANCELLED`; the winner
//!   runs the armed [`CancelToken::on_cancelled`] hook, which owns the
//!   *cancelled* resolution of whatever the token guards.
//! * [`CancelToken::try_claim`] (called by the pool's worker loop at
//!   the grain boundary, just before a job body runs) CASes
//!   `PENDING → CLAIMED`; the winner runs the body, which owns the
//!   *completed* resolution.
//!
//! Both transitions leave `PENDING` exactly once, so exactly one side
//! wins no matter how the race interleaves — the property
//! `crates/check/tests/schedule_explore.rs` drives through every
//! schedule. Deadlines and parent-chain cancellation piggyback on the
//! same CAS: `try_claim` checks them first and resolves the token
//! cancelled (running the hook) instead of claiming.
//!
//! Tokens form a hierarchy via [`CancelToken::child`], mirroring the
//! LGT subtree a tenant owns: cancelling a parent does not atomically
//! resolve its children (each child still settles through its own
//! CAS), but every child observes the parent's request at its next
//! grain boundary — `try_claim` and [`CancelToken::cancel_requested`]
//! both walk the parent chain. That is the paper's grain-boundary
//! discipline: cancellation is a dataflow signal SGT waves poll
//! between grains, not a preemptive interrupt.
//!
//! All primitives come from `crate::chk`, so under `--features
//! check` the whole state machine runs on the deterministic-schedule
//! explorer's instrumented twins.

use std::sync::Arc;
use std::time::Instant;

use crate::chk::{AtomicBool, AtomicU8, Mutex, Ordering};

const PENDING: u8 = 0;
const CLAIMED: u8 = 1;
const CANCELLED: u8 = 2;

type Hook = Box<dyn FnOnce() + Send>;

struct Inner {
    /// The three-state machine; the only writes are the two CASes out
    /// of `PENDING`, so the terminal state is decided exactly once.
    state: AtomicU8,
    /// Sticky request flag, set by every `cancel()` call even when the
    /// CAS loses: a body already running (token `CLAIMED`) polls this
    /// through [`CancelToken::cancel_requested`] to stop early.
    requested: AtomicBool,
    /// At most one hook, armed under the lock and consumed exactly once
    /// by whichever path resolves the token cancelled (same discipline
    /// as `SyncSlot::set_action`).
    hook: Mutex<Option<Hook>>,
    parent: Option<Arc<Inner>>,
    deadline: Option<Instant>,
}

impl Inner {
    fn requested_here_or_above(&self) -> bool {
        let mut cur = Some(self);
        while let Some(inner) = cur {
            if inner.requested.load(Ordering::SeqCst) {
                return true;
            }
            if inner.deadline.is_some_and(|d| Instant::now() >= d) {
                return true;
            }
            cur = inner.parent.as_deref();
        }
        false
    }
}

/// A cloneable cancellation/deadline token guarding one unit of work
/// (see the [module docs](self) for the state machine and the
/// exactly-once argument).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.inner.state.load(Ordering::SeqCst) {
            CLAIMED => "claimed",
            CANCELLED => "cancelled",
            _ => "pending",
        };
        f.debug_struct("CancelToken")
            .field("state", &state)
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl CancelToken {
    /// A fresh, pending token with no deadline and no parent.
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A fresh token that resolves cancelled at its next grain boundary
    /// once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline), None)
    }

    fn build(deadline: Option<Instant>, parent: Option<Arc<Inner>>) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: AtomicU8::new(PENDING),
                requested: AtomicBool::new(false),
                hook: Mutex::new(None),
                parent,
                deadline,
            }),
        }
    }

    /// A child token: it settles through its own CAS, but observes this
    /// token's cancellation (and deadline) at every grain boundary —
    /// the SGT-subtree propagation path.
    pub fn child(&self) -> Self {
        Self::build(None, Some(self.inner.clone()))
    }

    /// A child token with its own (typically tighter) deadline.
    pub fn child_with_deadline(&self, deadline: Instant) -> Self {
        Self::build(Some(deadline), Some(self.inner.clone()))
    }

    /// Request cancellation. Returns `true` if this call resolved the
    /// token (the `PENDING → CANCELLED` CAS won, and the armed
    /// [`CancelToken::on_cancelled`] hook — if any — ran on this
    /// thread before returning); `false` if the token was already
    /// claimed or already cancelled. Even a losing call leaves the
    /// sticky request flag set for [`CancelToken::cancel_requested`]
    /// polls.
    pub fn cancel(&self) -> bool {
        self.inner.requested.store(true, Ordering::SeqCst);
        resolve_cancelled(&self.inner)
    }

    /// The grain-boundary checkpoint: try to claim the token for
    /// execution. Returns `true` if the `PENDING → CLAIMED` CAS won
    /// (the caller now owns the completed resolution and must run the
    /// body); `false` if the token is (or just became) cancelled — an
    /// expired deadline or a cancelled ancestor resolves the token
    /// cancelled *here*, running the hook on the calling thread.
    pub fn try_claim(&self) -> bool {
        if self.inner.requested_here_or_above() {
            resolve_cancelled(&self.inner);
            return false;
        }
        self.inner
            .state
            .compare_exchange(PENDING, CLAIMED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Whether cancellation has been requested on this token, an
    /// ancestor, or by an expired deadline — the cooperative poll a
    /// running body (token already `CLAIMED`) checks between grains.
    pub fn cancel_requested(&self) -> bool {
        self.inner.requested_here_or_above()
    }

    /// Whether the token has terminally resolved cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::SeqCst) == CANCELLED
    }

    /// Whether the token was claimed for execution.
    pub fn was_claimed(&self) -> bool {
        self.inner.state.load(Ordering::SeqCst) == CLAIMED
    }

    /// The token's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Arm `f` to run exactly once when (and if) the token resolves
    /// cancelled — from whichever thread wins that resolution. If the
    /// token is already cancelled, `f` runs immediately on this
    /// thread. If the token was already claimed, `f` is dropped and
    /// never runs. Arming replaces any previously armed, unfired hook.
    pub fn on_cancelled(&self, f: impl FnOnce() + Send + 'static) {
        {
            let mut slot = self.inner.hook.lock();
            match self.inner.state.load(Ordering::SeqCst) {
                CANCELLED => {} // fall through and run below, outside the lock
                CLAIMED => return,
                _ => {
                    *slot = Some(Box::new(f));
                    return;
                }
            }
        }
        f();
    }
}

/// The single cancelled-resolution path, shared by `cancel()` and the
/// deadline/parent branch of `try_claim()`: CAS out of `PENDING`, and
/// the winner consumes the armed hook under the lock (so it can never
/// race an `on_cancelled` arm) and runs it after unlocking.
fn resolve_cancelled(inner: &Arc<Inner>) -> bool {
    if inner
        .state
        .compare_exchange(PENDING, CANCELLED, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return false;
    }
    let hook = inner.hook.lock().take();
    if let Some(f) = hook {
        f();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering as StdOrdering};
    use std::time::Duration;

    #[test]
    fn claim_then_cancel_loses() {
        let t = CancelToken::new();
        assert!(t.try_claim());
        assert!(!t.cancel());
        assert!(t.was_claimed());
        assert!(!t.is_cancelled());
        // The request flag is still visible to a running body.
        assert!(t.cancel_requested());
    }

    #[test]
    fn cancel_then_claim_loses() {
        let t = CancelToken::new();
        assert!(t.cancel());
        assert!(!t.try_claim());
        assert!(t.is_cancelled());
        assert!(!t.was_claimed());
    }

    #[test]
    fn cancel_is_idempotent() {
        let t = CancelToken::new();
        assert!(t.cancel());
        assert!(!t.cancel());
    }

    #[test]
    fn second_claim_fails() {
        let t = CancelToken::new();
        assert!(t.try_claim());
        assert!(!t.try_claim());
    }

    #[test]
    fn armed_hook_runs_exactly_once_on_cancel() {
        let runs = Arc::new(AtomicU32::new(0));
        let t = CancelToken::new();
        let r = runs.clone();
        t.on_cancelled(move || {
            r.fetch_add(1, StdOrdering::SeqCst);
        });
        assert!(t.cancel());
        assert!(!t.cancel());
        assert_eq!(runs.load(StdOrdering::SeqCst), 1);
    }

    #[test]
    fn hook_armed_after_cancellation_runs_immediately() {
        let runs = Arc::new(AtomicU32::new(0));
        let t = CancelToken::new();
        t.cancel();
        let r = runs.clone();
        t.on_cancelled(move || {
            r.fetch_add(1, StdOrdering::SeqCst);
        });
        assert_eq!(runs.load(StdOrdering::SeqCst), 1);
    }

    #[test]
    fn hook_never_runs_after_claim() {
        let runs = Arc::new(AtomicU32::new(0));
        let t = CancelToken::new();
        let r = runs.clone();
        t.on_cancelled(move || {
            r.fetch_add(1, StdOrdering::SeqCst);
        });
        assert!(t.try_claim());
        t.cancel();
        assert_eq!(runs.load(StdOrdering::SeqCst), 0);
        // Arming after the claim drops the hook too.
        let r = runs.clone();
        t.on_cancelled(move || {
            r.fetch_add(1, StdOrdering::SeqCst);
        });
        assert_eq!(runs.load(StdOrdering::SeqCst), 0);
    }

    #[test]
    fn expired_deadline_resolves_at_claim() {
        let runs = Arc::new(AtomicU32::new(0));
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let r = runs.clone();
        t.on_cancelled(move || {
            r.fetch_add(1, StdOrdering::SeqCst);
        });
        assert!(t.cancel_requested());
        assert!(!t.try_claim());
        assert!(t.is_cancelled());
        assert_eq!(runs.load(StdOrdering::SeqCst), 1);
    }

    #[test]
    fn future_deadline_claims_normally() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.cancel_requested());
        assert!(t.try_claim());
    }

    #[test]
    fn parent_cancellation_propagates_to_children() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!grandchild.cancel_requested());
        parent.cancel();
        // The child settles through its own CAS, at its own boundary.
        assert!(!child.is_cancelled());
        assert!(grandchild.cancel_requested());
        assert!(!grandchild.try_claim());
        assert!(grandchild.is_cancelled());
        assert!(!child.try_claim());
    }

    #[test]
    fn child_deadline_is_independent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!child.try_claim());
        // The parent is untouched by the child's expiry.
        assert!(parent.try_claim());
    }

    #[test]
    fn racing_cancel_and_claim_resolve_exactly_once() {
        // A coarse native-thread race; the schedule explorer covers the
        // same property exhaustively under `--features check`.
        for _ in 0..200 {
            let t = CancelToken::new();
            let t2 = t.clone();
            let h = std::thread::spawn(move || t2.cancel());
            let claimed = t.try_claim();
            let cancelled = h.join().unwrap();
            assert!(
                claimed ^ cancelled,
                "exactly one side must win: claimed={claimed} cancelled={cancelled}"
            );
        }
    }
}
