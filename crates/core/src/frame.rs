//! SGT frame storage.
//!
//! "An SGT invocation will have its own private frame storage, where its
//! local state is stored. The TGTs within an SGT will share the frame
//! storage of the enclosing SGT invocation" (§3.1.1). A [`Frame`] is a
//! fixed-size array of 64-bit slots with typed accessors; TGTs of one graph
//! read and write slots directly — the "registers under the compiler
//! control" channel is modelled by the executor running fibers of one frame
//! on a single worker, so plain slot accesses need no synchronization
//! beyond the dataflow ordering enforced by the TGT graph.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size frame of 64-bit slots.
///
/// Slots are atomics so that *cross-frame* signalling code may also read
/// them; within one TGT graph the dataflow order makes Relaxed sufficient.
#[derive(Debug)]
pub struct Frame {
    slots: Box<[AtomicU64]>,
}

impl Frame {
    /// A frame with `n` zeroed slots.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the frame has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Read slot `i` as raw bits.
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }

    /// Write raw bits to slot `i`.
    pub fn set(&self, i: usize, v: u64) {
        self.slots[i].store(v, Ordering::Relaxed);
    }

    /// Read slot `i` as an `f64`.
    pub fn get_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.get(i))
    }

    /// Write an `f64` to slot `i`.
    pub fn set_f64(&self, i: usize, v: f64) {
        self.set(i, v.to_bits());
    }

    /// Read slot `i` as an `i64`.
    pub fn get_i64(&self, i: usize) -> i64 {
        self.get(i) as i64
    }

    /// Write an `i64` to slot `i`.
    pub fn set_i64(&self, i: usize, v: i64) {
        self.set(i, v as u64);
    }

    /// Atomically add to slot `i` interpreted as `u64`, returning the new
    /// value (used by reduction fibers).
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.slots[i].fetch_add(v, Ordering::Relaxed) + v
    }

    /// Atomically add to slot `i` interpreted as `f64` (CAS loop), returning
    /// the new value.
    pub fn fetch_add_f64(&self, i: usize, v: f64) -> f64 {
        let slot = &self.slots[i];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur) + v;
            match slot.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Copy all slots out (diagnostics).
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors_round_trip() {
        let f = Frame::new(4);
        f.set(0, 42);
        assert_eq!(f.get(0), 42);
        f.set_f64(1, -1.5);
        assert_eq!(f.get_f64(1), -1.5);
        f.set_i64(2, -7);
        assert_eq!(f.get_i64(2), -7);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn fetch_add_accumulates() {
        let f = Frame::new(1);
        assert_eq!(f.fetch_add(0, 5), 5);
        assert_eq!(f.fetch_add(0, 7), 12);
    }

    #[test]
    fn fetch_add_f64_accumulates_concurrently() {
        use std::sync::Arc;
        let f = Arc::new(Frame::new(1));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let f = f.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        f.fetch_add_f64(0, 1.0);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(f.get_f64(0), 4000.0);
    }

    #[test]
    fn snapshot_reflects_state() {
        let f = Frame::new(3);
        f.set(1, 9);
        assert_eq!(f.snapshot(), vec![0, 9, 0]);
    }
}
