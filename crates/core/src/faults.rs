//! Seeded fault injection: a deterministic fault plane for chaos testing.
//!
//! The runtime is system software — it must stay up while workloads come
//! and go. This module supplies the adversary that proves it: named
//! **fault points** compiled into the hot paths (`worker.steal`,
//! `worker.park`, `worker.body`, `serve.dispatch`, `serve.autopilot`,
//! `kernel.body`) that inject panics, delays, or thread-kills according to
//! a [`FaultPlan`] — a set of seeded probability rules parsed from the
//! `HTVM_FAULTS` environment variable or built programmatically.
//!
//! Injection is **replayable by seed**, in the spirit of the `htvm-check`
//! explorer: each rule keeps a per-rule occurrence counter, and whether
//! occurrence *n* fires is a pure function of `(seed, n)` (a splitmix64
//! hash compared against the probability threshold). Two runs that hit a
//! site the same number of times in the same order inject the same faults.
//!
//! Zero cost when off: an unarmed plane is a single `bool` load at each
//! fault point ([`FaultPlane::is_armed`] is `false` when the plan has no
//! rules, which is the default unless `HTVM_FAULTS` is set).
//!
//! ## Spec grammar
//!
//! ```text
//! HTVM_FAULTS = rule (';' rule)*
//! rule        = site ':' kind (':' attr)*
//! site        = dotted name; matches exactly or as a dot-prefix
//!               ("worker" matches "worker.body", "worker.steal", ...)
//! kind        = 'panic' | 'kill' | 'delay'
//! attr        = 'p=' float    — injection probability (default 1.0)
//!             | 'seed=' u64   — decision seed (default 0)
//!             | 'max=' u64    — cap on injections from this rule
//!             | 'ms=' u64     — delay duration (delay kind; default 1)
//! ```
//!
//! Example: `HTVM_FAULTS='worker.body:panic:p=0.01:seed=42;serve.dispatch:kill:p=0.001:seed=7:max=3'`
//!
//! ## Fault kinds and their blast radius
//!
//! * [`FaultKind::Panic`] — `panic_any(InjectedFault { kill: false, .. })`.
//!   At a site inside a `catch_unwind` boundary (a job body, a dispatcher
//!   pass) this is *contained*: it becomes a failed job / restarted pass.
//! * [`FaultKind::Kill`] — `panic_any(InjectedFault { kill: true, .. })`.
//!   Containment boundaries are expected to **rethrow** a kill payload so
//!   the unwind escapes and the OS thread dies, exercising supervision
//!   (worker respawn, dispatcher watchdog).
//! * [`FaultKind::Delay`] — sleep for the configured duration; perturbs
//!   timing without failing anything (a cheap schedule fuzzer).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an armed fault rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an [`InjectedFault`] payload (`kill: false`); contained
    /// by the nearest `catch_unwind` boundary.
    Panic,
    /// Panic with a `kill: true` payload; containment boundaries rethrow
    /// it so the hosting OS thread dies and supervision must heal.
    Kill,
    /// Sleep for the given duration, perturbing timing only.
    Delay(Duration),
}

/// The typed panic payload carried by injected panics and kills.
///
/// Supervision layers downcast unwind payloads to this type to classify
/// the failure (`site`) and to decide whether to rethrow (`kill`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault-point name that fired, e.g. `"worker.body"`.
    pub site: &'static str,
    /// `true` for [`FaultKind::Kill`]: boundaries must rethrow so the
    /// thread dies instead of containing the unwind.
    pub kill: bool,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} at {}",
            if self.kill { "kill" } else { "panic" },
            self.site
        )
    }
}

/// One seeded injection rule: *where*, *what*, *how often*.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Site to match: exact name or dot-prefix (`"worker"` matches
    /// `"worker.body"`).
    pub site: String,
    /// What to inject.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that a matching occurrence fires.
    pub p: f64,
    /// Seed for the per-occurrence decision hash.
    pub seed: u64,
    /// Optional cap on total injections from this rule.
    pub max: Option<u64>,
}

impl FaultRule {
    /// A rule that always fires (`p = 1.0`, seed 0, no cap).
    pub fn new(site: impl Into<String>, kind: FaultKind) -> Self {
        Self {
            site: site.into(),
            kind,
            p: 1.0,
            seed: 0,
            max: None,
        }
    }

    /// Set the injection probability.
    #[must_use]
    pub fn p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Set the decision seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap the number of injections from this rule.
    #[must_use]
    pub fn max(mut self, max: u64) -> Self {
        self.max = Some(max);
        self
    }

    fn matches(&self, site: &str) -> bool {
        site == self.site
            || (site.len() > self.site.len()
                && site.starts_with(self.site.as_str())
                && site.as_bytes()[self.site.len()] == b'.')
    }
}

/// A set of [`FaultRule`]s: the programmatic form of an `HTVM_FAULTS` spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The rules, checked in order at every matching fault point.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan (no injection anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parse a spec string (see module docs for the grammar).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            plan.rules.push(parse_rule(raw)?);
        }
        Ok(plan)
    }

    /// Parse `HTVM_FAULTS` from the environment; unset or empty yields the
    /// empty plan, a malformed spec panics (a chaos run with a typo'd spec
    /// silently testing nothing is worse than a crash).
    pub fn from_env() -> Self {
        match std::env::var("HTVM_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec)
                .unwrap_or_else(|e| panic!("malformed HTVM_FAULTS spec {spec:?}: {e}")),
            _ => Self::new(),
        }
    }
}

fn parse_rule(raw: &str) -> Result<FaultRule, String> {
    let mut parts = raw.split(':');
    let site = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("rule {raw:?}: missing site"))?;
    let kind_name = parts
        .next()
        .ok_or_else(|| format!("rule {raw:?}: missing kind"))?;
    let mut p = 1.0f64;
    let mut seed = 0u64;
    let mut max = None;
    let mut ms = 1u64;
    for attr in parts {
        let (key, val) = attr
            .split_once('=')
            .ok_or_else(|| format!("rule {raw:?}: attr {attr:?} is not key=value"))?;
        match key {
            "p" => {
                p = val
                    .parse::<f64>()
                    .map_err(|e| format!("rule {raw:?}: bad p: {e}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("rule {raw:?}: p={p} outside [0, 1]"));
                }
            }
            "seed" => {
                seed = parse_u64(val).map_err(|e| format!("rule {raw:?}: bad seed: {e}"))?;
            }
            "max" => {
                max = Some(parse_u64(val).map_err(|e| format!("rule {raw:?}: bad max: {e}"))?);
            }
            "ms" => {
                ms = parse_u64(val).map_err(|e| format!("rule {raw:?}: bad ms: {e}"))?;
            }
            other => return Err(format!("rule {raw:?}: unknown attr {other:?}")),
        }
    }
    let kind = match kind_name {
        "panic" => FaultKind::Panic,
        "kill" => FaultKind::Kill,
        "delay" => FaultKind::Delay(Duration::from_millis(ms)),
        other => return Err(format!("rule {raw:?}: unknown kind {other:?}")),
    };
    Ok(FaultRule {
        site: site.to_string(),
        kind,
        p,
        seed,
        max,
    })
}

fn parse_u64(val: &str) -> Result<u64, String> {
    if let Some(hex) = val.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        val.parse::<u64>().map_err(|e| e.to_string())
    }
}

/// The same mix the `htvm-check` scheduler uses: every injection decision
/// is `splitmix64(seed ^ mix(n))` compared against the probability
/// threshold, so a (plan, hit-order)-identical run replays identically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct ArmedRule {
    rule: FaultRule,
    /// Occurrences of matching sites seen so far (the decision index).
    hits: AtomicU64,
    /// Injections actually performed.
    injected: AtomicU64,
}

/// An armed [`FaultPlan`]: the object fault points consult at runtime.
///
/// One plane is owned per [`crate::Pool`] (shared with the serving layer
/// that drives the pool) so concurrent tests with different plans never
/// interfere. Construction arms the plan; [`FaultPlane::is_armed`] is the
/// single-load fast path every fault point checks first.
pub struct FaultPlane {
    rules: Vec<ArmedRule>,
}

impl fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlane")
            .field(
                "rules",
                &self.rules.iter().map(|r| &r.rule).collect::<Vec<_>>(),
            )
            .field("injected", &self.injected_total())
            .finish()
    }
}

impl Default for FaultPlane {
    fn default() -> Self {
        Self::off()
    }
}

impl FaultPlane {
    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            rules: plan
                .rules
                .into_iter()
                .map(|rule| ArmedRule {
                    rule,
                    hits: AtomicU64::new(0),
                    injected: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// The unarmed plane: every fault point is a single `false` check.
    pub fn off() -> Self {
        Self::new(FaultPlan::new())
    }

    /// Arm whatever `HTVM_FAULTS` specifies (unset → off).
    pub fn from_env() -> Self {
        Self::new(FaultPlan::from_env())
    }

    /// True if any rule is armed. Fault points check this first; when
    /// `false` the whole fault plane costs one branch.
    #[inline]
    pub fn is_armed(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Total injections performed across all rules.
    pub fn injected_total(&self) -> u64 {
        self.rules
            .iter()
            .map(|r| r.injected.load(Ordering::Relaxed))
            .sum()
    }

    /// Injections performed at fault points matching `site` (by the same
    /// prefix rule used for matching).
    pub fn injected_at(&self, site: &str) -> u64 {
        self.rules
            .iter()
            .filter(|r| r.rule.matches(site) || r.rule.site == site)
            .map(|r| r.injected.load(Ordering::Relaxed))
            .sum()
    }

    /// Hit a fault point. Returns normally (possibly after a delay) or
    /// panics with an [`InjectedFault`] payload.
    ///
    /// `site` must be a `'static` literal — it travels in the panic
    /// payload.
    #[inline]
    pub fn hit(&self, site: &'static str) {
        if self.is_armed() {
            self.hit_slow(site);
        }
    }

    #[cold]
    fn hit_slow(&self, site: &'static str) {
        for armed in &self.rules {
            if !armed.rule.matches(site) {
                continue;
            }
            let n = armed.hits.fetch_add(1, Ordering::Relaxed);
            if !decide(armed.rule.seed, n, armed.rule.p) {
                continue;
            }
            if let Some(cap) = armed.rule.max {
                // Reserve an injection slot; losers of the cap race undo.
                if armed.injected.fetch_add(1, Ordering::Relaxed) >= cap {
                    armed.injected.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
            } else {
                armed.injected.fetch_add(1, Ordering::Relaxed);
            }
            match armed.rule.kind {
                FaultKind::Delay(d) => std::thread::sleep(d),
                FaultKind::Panic => {
                    let fault = InjectedFault { site, kill: false };
                    LAST_INJECTED.with(|c| c.set(Some(fault)));
                    std::panic::panic_any(fault)
                }
                FaultKind::Kill => {
                    let fault = InjectedFault { site, kill: true };
                    LAST_INJECTED.with(|c| c.set(Some(fault)));
                    std::panic::panic_any(fault)
                }
            }
        }
    }
}

std::thread_local! {
    /// The fault most recently injected *on this thread*, recorded just
    /// before the panic is raised. Lets drop guards running during the
    /// resulting unwind — which see `std::thread::panicking()` but have
    /// no access to the payload — recover the typed fault.
    static LAST_INJECTED: std::cell::Cell<Option<InjectedFault>> =
        const { std::cell::Cell::new(None) };
}

/// Take (and clear) the fault most recently injected on this thread.
/// Intended for drop guards observing `std::thread::panicking()`: if the
/// unwind tearing them down came from a fault point on this thread, this
/// recovers the typed fault the `Drop` cannot otherwise see. The *take*
/// semantics keep a consumed fault from leaking into some later,
/// unrelated unwind on the same (pooled) thread.
pub fn take_last_injected() -> Option<InjectedFault> {
    LAST_INJECTED.with(|c| c.take())
}

/// Pure injection decision: does occurrence `n` under `seed` fire at
/// probability `p`?
fn decide(seed: u64, n: u64, p: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    let h = splitmix64(seed ^ splitmix64(n));
    // Compare the hash against p scaled to the u64 range. The f64→u64
    // rounding error is ~2^-53 relative — irrelevant at chaos-test rates.
    (h as f64) < p * (u64::MAX as f64)
}

/// Inspect an unwind payload: the injected fault, if that's what it is.
pub fn injected_from_payload(payload: &(dyn std::any::Any + Send)) -> Option<InjectedFault> {
    payload.downcast_ref::<InjectedFault>().copied()
}

/// Best-effort human-readable message from an unwind payload: injected
/// faults, `&str` and `String` panics render faithfully; anything else is
/// an opaque marker.
pub fn describe_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(f) = injected_from_payload(payload) {
        f.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Hit a fault point on a [`FaultPlane`]: `fault_point!(plane, "site")`.
///
/// Expands to the armed check plus the slow path — the off cost is one
/// branch on a plain `bool`-equivalent load.
#[macro_export]
macro_rules! fault_point {
    ($plane:expr, $site:literal) => {
        $plane.hit($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan =
            FaultPlan::parse("worker.body:panic:p=0.01:seed=42;serve.dispatch:kill:max=3").unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].site, "worker.body");
        assert_eq!(plan.rules[0].kind, FaultKind::Panic);
        assert!((plan.rules[0].p - 0.01).abs() < 1e-12);
        assert_eq!(plan.rules[0].seed, 42);
        assert_eq!(plan.rules[1].kind, FaultKind::Kill);
        assert_eq!(plan.rules[1].max, Some(3));
        assert!((plan.rules[1].p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("worker.body").is_err()); // no kind
        assert!(FaultPlan::parse("worker.body:explode").is_err());
        assert!(FaultPlan::parse("worker.body:panic:p=2.0").is_err());
        assert!(FaultPlan::parse("worker.body:panic:wat").is_err());
        assert!(FaultPlan::parse(":panic").is_err());
    }

    #[test]
    fn empty_specs_are_off() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ; ").unwrap().is_empty());
        assert!(!FaultPlane::off().is_armed());
    }

    #[test]
    fn prefix_matching_covers_subsites_not_substrings() {
        let r = FaultRule::new("worker", FaultKind::Panic);
        assert!(r.matches("worker"));
        assert!(r.matches("worker.body"));
        assert!(r.matches("worker.body.pre"));
        assert!(!r.matches("workers"));
        assert!(!r.matches("serve.dispatch"));
    }

    #[test]
    fn p1_always_fires_and_respects_max() {
        let plane =
            FaultPlane::new(FaultPlan::new().rule(FaultRule::new("x", FaultKind::Panic).max(2)));
        for i in 0..5 {
            let hit = catch_unwind(AssertUnwindSafe(|| plane.hit("x"))).is_err();
            assert_eq!(hit, i < 2, "occurrence {i}");
        }
        assert_eq!(plane.injected_total(), 2);
    }

    #[test]
    fn payload_is_typed_and_describable() {
        let plane = FaultPlane::new(FaultPlan::new().rule(FaultRule::new("x.y", FaultKind::Kill)));
        let err = catch_unwind(AssertUnwindSafe(|| plane.hit("x.y"))).unwrap_err();
        let f = injected_from_payload(err.as_ref()).expect("typed payload");
        assert_eq!(
            f,
            InjectedFault {
                site: "x.y",
                kill: true
            }
        );
        assert_eq!(describe_payload(err.as_ref()), "injected kill at x.y");
    }

    #[test]
    fn decisions_are_seed_deterministic_and_probability_shaped() {
        const N: u64 = 100_000;
        let count = |seed: u64, p: f64| (0..N).filter(|&n| decide(seed, n, p)).count();
        assert_eq!(count(42, 0.01), count(42, 0.01), "replayable");
        let c = count(42, 0.01) as f64;
        let expect = N as f64 * 0.01;
        assert!(
            (c - expect).abs() < expect * 0.3,
            "p=0.01 over {N}: got {c}, expected ~{expect}"
        );
        assert_ne!(count(1, 0.5), count(2, 0.5), "seed changes the schedule");
        assert_eq!(count(7, 1.0), N as usize);
        assert_eq!(count(7, 0.0), 0);
    }

    #[test]
    fn two_runs_of_one_plan_inject_identically() {
        let run = || {
            let plane = FaultPlane::new(
                FaultPlan::new().rule(FaultRule::new("a", FaultKind::Panic).p(0.05).seed(99)),
            );
            (0..1000)
                .map(|_| catch_unwind(AssertUnwindSafe(|| plane.hit("a"))).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn delay_returns_normally() {
        let plane = FaultPlane::new(FaultPlan::new().rule(FaultRule::new(
            "d",
            FaultKind::Delay(Duration::from_millis(1)),
        )));
        plane.hit("d"); // must not panic
        assert_eq!(plane.injected_total(), 1);
    }
}
