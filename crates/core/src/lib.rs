//! # htvm-core — the HTVM execution model
//!
//! Implements §3.1 of Gao et al. (IPDPS 2006): a **hierarchical threaded
//! virtual machine** with three thread grains and the memory and
//! synchronization models that tie them together.
//!
//! * **LGT** (large-grain thread) — a substantial computation with its own
//!   private memory, sharing a global address space with other LGTs.
//!   Spawned via [`Htvm::lgt`]; backed by the work-stealing pool.
//! * **SGT** (small-grain thread) — a threaded function call in the
//!   Cilk/EARTH sense. Invoked from an LGT, sees the LGT's private memory,
//!   and owns a private [`Frame`] for its local state. Spawned via
//!   [`LgtCtx::spawn_sgt`].
//! * **TGT** (tiny-grain thread) — an EARTH fiber / CARE strand: shares the
//!   frame of its enclosing SGT invocation and communicates with sibling
//!   TGTs "by using registers under the compiler control", modelled here as
//!   direct frame-slot reads/writes inside one [`TgtGraph`].
//!
//! Synchronization is **dataflow style** throughout (the paper's
//! synchronization model): [`sync::SyncSlot`] is an EARTH-style counter that
//! fires a continuation when enough signals arrive; [`sync::IVar`] is a
//! write-once value with deferred readers (the substrate for LITL-X
//! futures); [`sync::PoolBarrier`] builds global barriers from sync slots so
//! they can also be *avoided* (the paper's complaint about "synchronous
//! global barriers").
//!
//! Two runtimes execute the model:
//!
//! * [`native`] — a work-stealing pool over OS threads, built on the
//!   first-party lock-free [`deque`] spine (Chase–Lev worker deques plus
//!   segmented MPMC injectors — no locks anywhere on the spawn/steal hot
//!   path), for real parallel execution and wall-clock benchmarks. Its
//!   workers
//!   are grouped into **locality domains** ([`topology::Topology`])
//!   mirroring the paper's thread-unit groups; idle workers steal in
//!   proximity order (domain siblings before remote domains) and LGTs can
//!   pin their SGT subtree to a home domain ([`Htvm::lgt_in`]).
//! * [`simrt`] — a mapping of the hierarchy onto the `htvm-sim`
//!   function-accurate machine, for experiments that must control memory
//!   latency, spawn costs and thread-unit counts.
//!
//! ```
//! use htvm_core::{Htvm, HtvmConfig};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let htvm = Htvm::new(HtvmConfig::default());
//! let sum = Arc::new(AtomicU64::new(0));
//! let lgt = htvm.lgt({
//!     let sum = sum.clone();
//!     move |lgt| {
//!         for i in 0..8u64 {
//!             let sum = sum.clone();
//!             lgt.spawn_sgt(move |_sgt| {
//!                 sum.fetch_add(i, Ordering::Relaxed);
//!             });
//!         }
//!     }
//! });
//! lgt.join();
//! assert_eq!(sum.load(Ordering::Relaxed), 28);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cancel;
pub(crate) mod chk;
pub mod deque;
pub mod faults;
pub mod frame;
pub mod ids;
pub mod machine;
pub mod native;
pub mod region;
pub mod runtime;
pub mod simrt;
pub mod sleepers;
pub mod sync;
pub mod tgt;
pub mod topology;

pub use admission::{AdmissionQueue, AdmitError};
pub use cancel::CancelToken;
pub use faults::{FaultKind, FaultPlan, FaultPlane, FaultRule, InjectedFault};
pub use frame::Frame;
pub use ids::{DomainId, LgtId, SgtId, TgtId, WorkerId};
pub use machine::{Level, MachineTree};
pub use native::{Pool, PoolStats, PoolTag, QueueDepths, SpawnOpts, TagStats, WorkerCtx};
pub use region::SharedRegion;
pub use runtime::{Htvm, HtvmConfig, LgtCtx, LgtHandle, SgtCtx};
pub use sync::{IVar, PoolBarrier, SyncSlot};
pub use tgt::{TgtCtx, TgtGraph};
pub use topology::Topology;
