//! Inter-node network timing model.
//!
//! Nodes sit on a 2-D mesh; a message pays a fixed overhead, a per-hop
//! latency and NIC occupancy proportional to its size. Each node's egress
//! NIC is a contended resource, so bulk transfers delay later messages —
//! the effect that makes "reducing large message communications" (locality
//! management) and parcel-based work shipping interesting trade-offs.

use crate::config::NetworkConfig;
use crate::{Cycle, NodeId};

/// The network timing model.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    egress_free: Vec<Cycle>,
    messages: u64,
    bytes: u64,
}

impl Network {
    /// Build the model for `nodes` nodes.
    pub fn new(cfg: NetworkConfig, nodes: NodeId) -> Self {
        Self {
            cfg,
            egress_free: vec![0; nodes as usize],
            messages: 0,
            bytes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Mesh hop distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        if a == b {
            return 0;
        }
        let w = self.cfg.grid_width.max(1) as i64;
        let (ax, ay) = (a as i64 % w, a as i64 / w);
        let (bx, by) = (b as i64 % w, b as i64 / w);
        ((ax - bx).abs() + (ay - by).abs()) as u64
    }

    /// Pure latency (no contention) of a `size`-byte message `src → dst`.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, size: u32) -> Cycle {
        if src == dst {
            return 0;
        }
        self.cfg.message_overhead
            + self.cfg.hop_latency * self.hops(src, dst)
            + self.cfg.occupancy_per_64b * crate::payload_lines(size)
    }

    /// Charge a message of `size` bytes from `src` to `dst` injected at
    /// `now`; returns its arrival time. Same-node sends are free.
    pub fn send(&mut self, src: NodeId, dst: NodeId, size: u32, now: Cycle) -> Cycle {
        if src == dst {
            return now;
        }
        self.messages += 1;
        self.bytes += size as u64;
        let nic = &mut self.egress_free[src as usize];
        let start = now.max(*nic);
        let occupancy = self.cfg.occupancy_per_64b * crate::payload_lines(size);
        *nic = start + occupancy;
        start + occupancy + self.cfg.message_overhead + self.cfg.hop_latency * self.hops(src, dst)
    }

    /// Total messages injected so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes injected so far.
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetworkConfig::default(), 8)
    }

    #[test]
    fn same_node_is_free() {
        let mut n = net();
        assert_eq!(n.send(3, 3, 1 << 20, 42), 42);
        assert_eq!(n.message_count(), 0);
    }

    #[test]
    fn hops_follow_mesh_distance() {
        let n = net();
        // grid_width = 4: node ids 0..3 on row 0, 4..7 on row 1.
        assert_eq!(n.hops(0, 1), 1);
        assert_eq!(n.hops(0, 3), 3);
        assert_eq!(n.hops(0, 4), 1);
        assert_eq!(n.hops(0, 7), 4);
        assert_eq!(n.hops(5, 5), 0);
    }

    #[test]
    fn farther_nodes_take_longer() {
        let mut n = net();
        let near = n.send(0, 1, 64, 0);
        let mut n2 = net();
        let far = n2.send(0, 7, 64, 0);
        assert!(far > near);
    }

    #[test]
    fn bigger_messages_take_longer() {
        let mut n = net();
        let small = n.send(0, 1, 64, 0);
        let mut n2 = net();
        let big = n2.send(0, 1, 64 * 1024, 0);
        assert!(big > small);
    }

    #[test]
    fn nic_serializes_back_to_back_sends() {
        let mut n = net();
        let a = n.send(0, 1, 4096, 0);
        let b = n.send(0, 1, 4096, 0);
        assert!(b > a, "second send queues behind the first on the NIC");
        assert_eq!(n.message_count(), 2);
        assert_eq!(n.byte_count(), 8192);
    }

    #[test]
    fn different_sources_do_not_contend() {
        let mut n = net();
        // Nodes 1 and 3 are both one hop from node 2 on the 4-wide mesh.
        let a = n.send(1, 2, 4096, 0);
        let b = n.send(3, 2, 4096, 0);
        assert_eq!(a, b);
    }
}
