//! The discrete-event simulation engine.
//!
//! Units execute the effects of their running hardware thread inline until
//! it blocks (load, wait) or ends; the engine then charges a context switch
//! and resumes another ready hardware thread of the same unit. Blocked
//! threads are woken by timed events (memory replies, message arrivals,
//! signals). This yields the switch-on-long-latency-event execution
//! discipline of Cyclops-64 / HTMT-class machines that the paper targets.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::config::{MachineConfig, SpawnClass};
use crate::memory::MemorySystem;
use crate::network::Network;
use crate::stats::Stats;
use crate::task::{Effect, OnArrive, SignalId, SimThread, TaskCtx};
use crate::{Cycle, NodeId, UnitId};

/// Identifier of a simulated thread within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Where to place a spawned thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// On the same unit as the spawner (shares its scratchpad).
    Local,
    /// On a specific unit of a specific node.
    Unit(NodeId, UnitId),
    /// On the least-loaded unit of a specific node.
    Node(NodeId),
    /// On the least-loaded unit machine-wide.
    AnyWhere,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Ready,
    Running,
    Blocked,
    Finished,
}

struct TaskEntry {
    thread: Box<dyn SimThread>,
    state: TaskState,
    class: SpawnClass,
    node: NodeId,
    unit: UnitId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A blocked task becomes runnable again.
    Wake(TaskId),
    /// A network message arrives at its destination node.
    Deliver(u64),
}

#[derive(Default)]
struct UnitState {
    /// Tasks resident on this unit that are ready to run.
    ready: VecDeque<TaskId>,
    /// Tasks waiting for a free hardware-thread slot on this unit.
    parked: VecDeque<TaskId>,
    /// Hardware-thread slots currently occupied by live contexts.
    slots_in_use: usize,
    /// Number of live (not finished) tasks resident on this unit.
    resident: usize,
    /// Cycle up to which the unit has been simulated (busy until then).
    free_at: Cycle,
    /// Last task that occupied the pipeline (for switch accounting).
    last_run: Option<TaskId>,
    /// Cycle at which the unit went idle (for idle accounting).
    idle_since: Cycle,
    /// Whether the unit is currently idle and waiting for work.
    idle: bool,
}

struct SignalState {
    count: u64,
    waiters: VecDeque<TaskId>,
}

/// The simulator: machine state plus the event calendar.
pub struct Engine {
    cfg: MachineConfig,
    memory: MemorySystem,
    network: Network,
    tasks: Vec<TaskEntry>,
    units: Vec<UnitState>,
    signals: HashMap<u64, SignalState>,
    calendar: BinaryHeap<Reverse<(Cycle, u64, Ev)>>,
    in_flight: HashMap<u64, (NodeId, OnArrive)>,
    seq: u64,
    now: Cycle,
    stats: Stats,
    /// Round-robin cursor for `Placement::AnyWhere` / `Node` when loads tie.
    place_cursor: usize,
}

impl Engine {
    /// Build an engine for the given machine.
    pub fn new(cfg: MachineConfig) -> Self {
        let units = (0..cfg.total_units())
            .map(|_| UnitState::default())
            .collect();
        let memory = MemorySystem::new(cfg.memory.clone(), cfg.nodes);
        let network = Network::new(cfg.network.clone(), cfg.nodes);
        Self {
            cfg,
            memory,
            network,
            tasks: Vec::new(),
            units,
            signals: HashMap::new(),
            calendar: BinaryHeap::new(),
            in_flight: HashMap::new(),
            seq: 0,
            now: 0,
            stats: Stats::default(),
            place_cursor: 0,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Mutable access to the memory model (e.g. to drift DRAM latency
    /// between [`Engine::run_until`] calls).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    fn unit_index(&self, node: NodeId, unit: UnitId) -> usize {
        node as usize * self.cfg.units_per_node as usize + unit as usize
    }

    fn resolve_placement(&mut self, place: Placement, from: (NodeId, UnitId)) -> (NodeId, UnitId) {
        match place {
            Placement::Local => from,
            Placement::Unit(n, u) => (n, u),
            Placement::Node(n) => {
                let base = n as usize * self.cfg.units_per_node as usize;
                let upn = self.cfg.units_per_node as usize;
                let mut best = 0usize;
                let mut best_load = usize::MAX;
                for i in 0..upn {
                    let idx = base + (i + self.place_cursor) % upn;
                    let load = self.units[idx].resident;
                    if load < best_load {
                        best_load = load;
                        best = idx - base;
                    }
                }
                self.place_cursor = self.place_cursor.wrapping_add(1);
                (n, best as UnitId)
            }
            Placement::AnyWhere => {
                let total = self.units.len();
                let mut best = 0usize;
                let mut best_load = usize::MAX;
                for i in 0..total {
                    let idx = (i + self.place_cursor) % total;
                    let load = self.units[idx].resident;
                    if load < best_load {
                        best_load = load;
                        best = idx;
                    }
                }
                self.place_cursor = self.place_cursor.wrapping_add(1);
                (
                    (best / self.cfg.units_per_node as usize) as NodeId,
                    (best % self.cfg.units_per_node as usize) as UnitId,
                )
            }
        }
    }

    /// Spawn a boxed thread. Returns its id.
    pub fn spawn(
        &mut self,
        place: Placement,
        class: SpawnClass,
        task: Box<dyn SimThread>,
    ) -> TaskId {
        let (node, unit) = self.resolve_placement(place, (0, 0));
        self.admit(task, class, node, unit)
    }

    /// Spawn a closure-backed thread with SGT cost accounting.
    pub fn spawn_closure<F>(&mut self, place: Placement, f: F) -> TaskId
    where
        F: FnMut(&mut TaskCtx) -> Effect + Send + 'static,
    {
        self.spawn(place, SpawnClass::Sgt, Box::new(f))
    }

    fn admit(
        &mut self,
        thread: Box<dyn SimThread>,
        class: SpawnClass,
        node: NodeId,
        unit: UnitId,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u64);
        self.tasks.push(TaskEntry {
            thread,
            state: TaskState::Ready,
            class,
            node,
            unit,
        });
        self.stats.record_spawn(class);
        let idx = self.unit_index(node, unit);
        self.units[idx].resident += 1;
        // A context only becomes runnable once a hardware-thread slot is
        // free; excess tasks park until a resident context retires.
        if self.units[idx].slots_in_use < self.cfg.hw_threads_per_unit as usize {
            self.units[idx].slots_in_use += 1;
            self.units[idx].ready.push_back(id);
            self.wake_unit_if_idle(idx);
        } else {
            self.units[idx].parked.push_back(id);
        }
        id
    }

    /// Pre-load a signal with `amount` units (e.g. to model data already
    /// present).
    pub fn preload_signal(&mut self, sig: SignalId, amount: u64) {
        self.signal_entry(sig).count += amount;
    }

    fn signal_entry(&mut self, sig: SignalId) -> &mut SignalState {
        self.signals.entry(sig.0).or_insert_with(|| SignalState {
            count: 0,
            waiters: VecDeque::new(),
        })
    }

    fn post(&mut self, at: Cycle, ev: Ev) {
        self.seq += 1;
        self.calendar.push(Reverse((at, self.seq, ev)));
    }

    fn wake_unit_if_idle(&mut self, idx: usize) {
        if self.units[idx].idle {
            self.units[idx].idle = false;
            self.stats.idle_cycles += self.now.saturating_sub(self.units[idx].idle_since);
            self.units[idx].free_at = self.units[idx].free_at.max(self.now);
            self.run_unit(idx);
        }
    }

    fn signal(&mut self, sig: SignalId, amount: u32) {
        let entry = self.signal_entry(sig);
        entry.count += amount as u64;
        // Wake as many waiters as there are available units. Waking happens
        // after releasing the signal-table borrow; signal delivery within a
        // node is modelled as free, cross-node signalling pays network cost
        // on the Send path instead.
        let mut to_wake = Vec::new();
        while entry.count > 0 {
            match entry.waiters.pop_front() {
                Some(tid) => {
                    entry.count -= 1;
                    to_wake.push(tid);
                }
                None => break,
            }
        }
        for tid in to_wake {
            self.ready_task(tid);
        }
    }

    fn ready_task(&mut self, tid: TaskId) {
        let (node, unit) = {
            let t = &mut self.tasks[tid.0 as usize];
            debug_assert_ne!(t.state, TaskState::Finished);
            t.state = TaskState::Ready;
            (t.node, t.unit)
        };
        let idx = self.unit_index(node, unit);
        self.units[idx].ready.push_back(tid);
        self.wake_unit_if_idle(idx);
    }

    /// Execute the ready work of one unit, inline, starting at the unit's
    /// `free_at` time, until it has no runnable hardware thread.
    fn run_unit(&mut self, idx: usize) {
        loop {
            let Some(tid) = self.units[idx].ready.pop_front() else {
                if !self.units[idx].idle {
                    self.units[idx].idle = true;
                    self.units[idx].idle_since = self.units[idx].free_at.max(self.now);
                }
                return;
            };
            let mut t_now = self.units[idx].free_at.max(self.now);
            // Charge a hardware-thread switch when the pipeline changes
            // occupant (in-stream switching: a few cycles by default).
            if self.units[idx].last_run != Some(tid) && self.units[idx].last_run.is_some() {
                t_now += self.cfg.switch_cost;
                self.stats.switch_cycles += self.cfg.switch_cost;
                self.stats.switches += 1;
            }
            self.units[idx].last_run = Some(tid);
            self.tasks[tid.0 as usize].state = TaskState::Running;
            self.drive_task(idx, tid, &mut t_now);
            self.units[idx].free_at = t_now;
            // Loop to pick the next ready hardware thread of this unit.
        }
    }

    /// Run one task until it blocks, yields or finishes.
    fn drive_task(&mut self, idx: usize, tid: TaskId, t_now: &mut Cycle) {
        let (node, unit) = {
            let t = &self.tasks[tid.0 as usize];
            (t.node, t.unit)
        };
        loop {
            let mut ctx = TaskCtx {
                now: *t_now,
                node,
                unit,
                task: tid,
            };
            // Split borrow: take the thread out to call resume without
            // holding a borrow of `self`.
            let mut thread = std::mem::replace(
                &mut self.tasks[tid.0 as usize].thread,
                Box::new(|_: &mut TaskCtx| Effect::Done),
            );
            let eff = thread.resume(&mut ctx);
            self.tasks[tid.0 as usize].thread = thread;
            match eff {
                Effect::Compute(c) => {
                    *t_now += c;
                    self.stats.busy_cycles += c;
                }
                Effect::Signal(sig, amount) => {
                    self.signal(sig, amount);
                }
                Effect::Spawn { task, place, class } => {
                    let cost = self.cfg.spawn_cost(class);
                    *t_now += cost;
                    self.stats.busy_cycles += cost;
                    let (n, u) = self.resolve_placement(place, (node, unit));
                    self.admit(task, class, n, u);
                }
                Effect::Store { addr, size } => {
                    *t_now += self.cfg.mem_issue_cost;
                    self.stats.busy_cycles += self.cfg.mem_issue_cost;
                    let done = self.access_time(node, addr, size, *t_now);
                    let level = addr.level_from(node, unit);
                    self.stats.record_access(level, done - *t_now);
                    if self.cfg.blocking_stores {
                        self.block_until(tid, done);
                        return;
                    }
                }
                Effect::Load { addr, size } => {
                    *t_now += self.cfg.mem_issue_cost;
                    self.stats.busy_cycles += self.cfg.mem_issue_cost;
                    let done = self.access_time(node, addr, size, *t_now);
                    let level = addr.level_from(node, unit);
                    self.stats.record_access(level, done - *t_now);
                    if done <= *t_now {
                        // Fast local hit: charge inline, no switch.
                        *t_now = done;
                    } else {
                        self.block_until(tid, done);
                        return;
                    }
                }
                Effect::Send { dst, size, action } => {
                    *t_now += self.cfg.mem_issue_cost;
                    self.stats.busy_cycles += self.cfg.mem_issue_cost;
                    let arrive = self.network.send(node, dst, size, *t_now);
                    self.seq += 1;
                    let msg_id = self.seq;
                    self.in_flight.insert(msg_id, (dst, action));
                    self.post(arrive, Ev::Deliver(msg_id));
                }
                Effect::Wait(sig) => {
                    let entry = self.signal_entry(sig);
                    if entry.count > 0 {
                        entry.count -= 1;
                    } else {
                        entry.waiters.push_back(tid);
                        self.tasks[tid.0 as usize].state = TaskState::Blocked;
                        return;
                    }
                }
                Effect::Yield => {
                    self.tasks[tid.0 as usize].state = TaskState::Ready;
                    self.units[idx].ready.push_back(tid);
                    return;
                }
                Effect::Done => {
                    let class = self.tasks[tid.0 as usize].class;
                    let cost = self.cfg.reap_cost(class);
                    *t_now += cost;
                    self.stats.busy_cycles += cost;
                    self.tasks[tid.0 as usize].state = TaskState::Finished;
                    self.units[idx].resident -= 1;
                    self.stats.tasks_completed += 1;
                    // Hand the freed hardware-thread slot to a parked task.
                    if let Some(next) = self.units[idx].parked.pop_front() {
                        self.units[idx].ready.push_back(next);
                    } else {
                        self.units[idx].slots_in_use -= 1;
                    }
                    return;
                }
            }
        }
    }

    /// Completion time of an access to `addr` issued from `node` at `t`.
    /// Remote accesses pay request + home access + response.
    fn access_time(&mut self, node: NodeId, addr: crate::GAddr, size: u32, t: Cycle) -> Cycle {
        if addr.node == node {
            self.memory.access(addr, size, t)
        } else {
            let req_arrive = self.network.send(node, addr.node, 32, t);
            let served = self.memory.access(addr, size, req_arrive);
            self.network.send(addr.node, node, size, served)
        }
    }

    fn block_until(&mut self, tid: TaskId, at: Cycle) {
        self.tasks[tid.0 as usize].state = TaskState::Blocked;
        self.post(at, Ev::Wake(tid));
    }

    fn deliver(&mut self, msg_id: u64) {
        let Some((dst, action)) = self.in_flight.remove(&msg_id) else {
            return;
        };
        match action {
            OnArrive::Signal(sig, amount) => self.signal(sig, amount),
            OnArrive::Spawn(task, place, class) => {
                self.stats.parcels += 1;
                let (n, u) = self.resolve_placement(place, (dst, 0));
                // Force the parcel onto its destination node even when the
                // placement was expressed relative to the sender.
                let (n, u) = if n == dst { (n, u) } else { (dst, 0) };
                self.admit(task, class, n, u);
            }
        }
    }

    /// Run until the calendar drains and all units are quiescent, or until
    /// `limit` cycles. Returns the final statistics snapshot.
    pub fn run_until(&mut self, limit: Cycle) -> Stats {
        // Kick off any units with ready work.
        for idx in 0..self.units.len() {
            if !self.units[idx].ready.is_empty() {
                self.run_unit(idx);
            } else if !self.units[idx].idle {
                self.units[idx].idle = true;
                self.units[idx].idle_since = self.units[idx].free_at;
            }
        }
        while let Some(&Reverse((at, _, _))) = self.calendar.peek() {
            if at > limit {
                break;
            }
            let Reverse((at, _, ev)) = self.calendar.pop().unwrap();
            self.now = at;
            match ev {
                Ev::Wake(tid) => {
                    if self.tasks[tid.0 as usize].state == TaskState::Blocked {
                        self.ready_task(tid);
                    }
                }
                Ev::Deliver(msg) => self.deliver(msg),
            }
        }
        self.finish_stats();
        self.stats.clone()
    }

    /// Run to quiescence.
    pub fn run(&mut self) -> Stats {
        self.run_until(Cycle::MAX)
    }

    fn finish_stats(&mut self) {
        // Close idle intervals and set the makespan to the latest unit time.
        let end = self
            .units
            .iter()
            .map(|u| u.free_at)
            .max()
            .unwrap_or(0)
            .max(self.now);
        for u in &mut self.units {
            if u.idle {
                self.stats.idle_cycles += end.saturating_sub(u.idle_since.min(end));
                u.idle_since = end;
            }
        }
        self.now = end;
        self.stats.now = end;
        // Network traffic counters come from the transport model so that
        // remote loads/stores (request+response) are included alongside
        // explicit sends.
        self.stats.messages = self.network.message_count();
        self.stats.message_bytes = self.network.byte_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GAddr, MemLevel};

    fn small() -> Engine {
        Engine::new(MachineConfig::small())
    }

    #[test]
    fn compute_only_task_finishes() {
        let mut e = small();
        let mut left = 3;
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            if left == 0 {
                Effect::Done
            } else {
                left -= 1;
                Effect::Compute(100)
            }
        });
        let s = e.run();
        assert_eq!(s.tasks_completed, 1);
        // 3×100 compute + SGT reap cost.
        assert_eq!(s.now, 300 + MachineConfig::small().reap_cost_sgt);
    }

    #[test]
    fn load_blocks_for_dram_latency() {
        let mut e = small();
        let mut step = 0;
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            step += 1;
            match step {
                1 => Effect::Load {
                    addr: GAddr::dram(0, 0),
                    size: 8,
                },
                _ => Effect::Done,
            }
        });
        let s = e.run();
        let cfg = MachineConfig::small();
        assert!(s.now >= cfg.memory.dram_latency);
        assert_eq!(s.mem.get(&MemLevel::Dram).unwrap().accesses, 1);
    }

    #[test]
    fn two_hw_threads_overlap_memory_latency() {
        // One thread leaves the unit stalled on DRAM; a second hardware
        // thread should fill the gap, so two tasks take much less than 2×.
        let makespan = |tasks: usize| {
            let mut e = small();
            for t in 0..tasks {
                let mut i = 0;
                e.spawn_closure(Placement::Unit(0, 0), move |_| {
                    i += 1;
                    if i > 50 {
                        Effect::Done
                    } else {
                        Effect::Load {
                            addr: GAddr::dram(0, (t * 8192 + i * 64) as u64),
                            size: 8,
                        }
                    }
                });
            }
            e.run().now
        };
        let one = makespan(1);
        let two = makespan(2);
        assert!(
            (two as f64) < (one as f64) * 1.5,
            "two hw threads should overlap latency: one={one}, two={two}"
        );
    }

    #[test]
    fn signals_synchronize_producer_consumer() {
        let mut e = small();
        let sig = SignalId(1);
        let mut cstep = 0;
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            cstep += 1;
            match cstep {
                1 => Effect::Wait(sig),
                _ => Effect::Done,
            }
        });
        let mut pstep = 0;
        e.spawn_closure(Placement::Unit(0, 1), move |_| {
            pstep += 1;
            match pstep {
                1 => Effect::Compute(500),
                2 => Effect::Signal(sig, 1),
                _ => Effect::Done,
            }
        });
        let s = e.run();
        assert_eq!(s.tasks_completed, 2);
        assert!(s.now >= 500);
    }

    #[test]
    fn preloaded_signal_does_not_block() {
        let mut e = small();
        let sig = SignalId(9);
        e.preload_signal(sig, 1);
        let mut step = 0;
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            step += 1;
            match step {
                1 => Effect::Wait(sig),
                _ => Effect::Done,
            }
        });
        let s = e.run();
        assert_eq!(s.tasks_completed, 1);
    }

    #[test]
    fn parcel_spawns_at_destination() {
        let mut cfg = MachineConfig::small();
        cfg.nodes = 2;
        let mut e = Engine::new(cfg);
        let sig = SignalId(7);
        let mut step = 0;
        // Sender on node 0 ships a parcel to node 1; the parcel signals on
        // completion; the sender waits for the ack signal.
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            step += 1;
            match step {
                1 => {
                    let mut pstep = 0;
                    let parcel = Box::new(move |ctx: &mut TaskCtx| {
                        pstep += 1;
                        match pstep {
                            1 => {
                                assert_eq!(ctx.node, 1, "parcel must run at destination");
                                Effect::Compute(50)
                            }
                            2 => Effect::Signal(sig, 1),
                            _ => Effect::Done,
                        }
                    });
                    Effect::Send {
                        dst: 1,
                        size: 64,
                        action: OnArrive::Spawn(parcel, Placement::Node(1), SpawnClass::Sgt),
                    }
                }
                2 => Effect::Wait(sig),
                _ => Effect::Done,
            }
        });
        let s = e.run();
        assert_eq!(s.tasks_completed, 2);
        assert_eq!(s.parcels, 1);
        assert!(s.messages >= 1);
    }

    #[test]
    fn spawn_charges_class_costs() {
        let run = |class: SpawnClass| {
            let mut e = small();
            let mut step = 0;
            e.spawn_closure(Placement::Unit(0, 0), move |_| {
                step += 1;
                match step {
                    1 => Effect::Spawn {
                        task: Box::new(|_: &mut TaskCtx| Effect::Done),
                        place: Placement::Local,
                        class,
                    },
                    _ => Effect::Done,
                }
            });
            e.run().now
        };
        assert!(run(SpawnClass::Lgt) > run(SpawnClass::Sgt));
        assert!(run(SpawnClass::Sgt) > run(SpawnClass::Tgt));
    }

    #[test]
    fn placement_node_prefers_less_loaded_units() {
        let mut e = small();
        // Pin three tasks to unit 0, then ask for Node placement: it should
        // not choose unit 0.
        for _ in 0..3 {
            e.spawn_closure(Placement::Unit(0, 0), |_| Effect::Done);
        }
        let id = e.spawn_closure(Placement::Node(0), |_| Effect::Done);
        let t = &e.tasks[id.0 as usize];
        assert_ne!(t.unit, 0);
    }

    #[test]
    fn yield_interleaves_two_tasks_on_one_slot_budget() {
        let mut e = small();
        for _ in 0..2 {
            let mut i = 0;
            e.spawn_closure(Placement::Unit(0, 0), move |_| {
                i += 1;
                if i > 3 {
                    Effect::Done
                } else {
                    Effect::Yield
                }
            });
        }
        let s = e.run();
        assert_eq!(s.tasks_completed, 2);
        assert!(
            s.switches > 0,
            "yielding must cause hardware-thread switches"
        );
    }

    #[test]
    fn run_until_stops_early() {
        let mut e = small();
        let mut i: u64 = 0;
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            i += 1;
            if i > 1_000 {
                Effect::Done
            } else {
                Effect::Load {
                    addr: GAddr::dram(0, i * 64),
                    size: 8,
                }
            }
        });
        let s = e.run_until(500);
        assert_eq!(s.tasks_completed, 0);
        let s2 = e.run();
        assert_eq!(s2.tasks_completed, 1);
    }

    #[test]
    fn remote_loads_cost_more_than_local() {
        let mut cfg = MachineConfig::small();
        cfg.nodes = 2;
        let once = |addr: GAddr, cfg: &MachineConfig| {
            let mut e = Engine::new(cfg.clone());
            let mut step = 0;
            e.spawn_closure(Placement::Unit(0, 0), move |_| {
                step += 1;
                match step {
                    1 => Effect::Load { addr, size: 8 },
                    _ => Effect::Done,
                }
            });
            e.run().now
        };
        let local = once(GAddr::dram(0, 0), &cfg);
        let remote = once(GAddr::dram(1, 0), &cfg);
        assert!(remote > local * 2, "remote={remote} local={local}");
    }

    #[test]
    fn utilization_reported() {
        let mut e = small();
        let mut left = 10;
        e.spawn_closure(Placement::Unit(0, 0), move |_| {
            if left == 0 {
                Effect::Done
            } else {
                left -= 1;
                Effect::Compute(1000)
            }
        });
        let s = e.run();
        let util = s.utilization(e.config().total_units());
        assert!(util > 0.0 && util <= 1.0);
    }
}
