//! Pre-built simulated-thread shapes used throughout the experiments.
//!
//! Hand-writing `resume` state machines is flexible but verbose; the
//! workloads of the evaluation mostly need two shapes: pure compute, and a
//! compute/memory-access loop over a strided region. Both are provided here.

use crate::task::{Effect, SimThread, TaskCtx};
use crate::{Cycle, GAddr};

/// A thread that computes for `cycles` and finishes.
pub fn compute_task(cycles: Cycle) -> impl SimThread {
    let mut fired = false;
    move |_: &mut TaskCtx| {
        if fired {
            Effect::Done
        } else {
            fired = true;
            Effect::Compute(cycles)
        }
    }
}

/// A loop kernel: per iteration, `compute` cycles, one load of
/// `access_bytes` from a strided address, and optionally one store.
///
/// This is the memory-bound/compute-bound dial used by the latency-tolerance
/// experiment (E1) and many others: `compute ≪ memory latency` makes it
/// memory-bound.
#[derive(Debug, Clone)]
pub struct StridedKernel {
    /// Iterations remaining.
    pub iters: u64,
    /// Compute cycles per iteration.
    pub compute: Cycle,
    /// Base address of the region.
    pub base: GAddr,
    /// Stride between consecutive accesses, bytes.
    pub stride: u64,
    /// Bytes per load.
    pub access_bytes: u32,
    /// Whether each iteration also stores back.
    pub store_back: bool,
    i: u64,
    phase: u8,
}

/// Construct a [`StridedKernel`].
pub fn strided_kernel(
    iters: u64,
    compute: Cycle,
    base: GAddr,
    stride: u64,
    access_bytes: u32,
) -> StridedKernel {
    StridedKernel {
        iters,
        compute,
        base,
        stride,
        access_bytes,
        store_back: false,
        i: 0,
        phase: 0,
    }
}

impl StridedKernel {
    /// Enable a store-back per iteration.
    pub fn with_store_back(mut self) -> Self {
        self.store_back = true;
        self
    }

    fn addr(&self) -> GAddr {
        self.base.add(self.i * self.stride)
    }
}

impl SimThread for StridedKernel {
    fn resume(&mut self, _ctx: &mut TaskCtx) -> Effect {
        loop {
            if self.i >= self.iters {
                return Effect::Done;
            }
            match self.phase {
                0 => {
                    self.phase = 1;
                    return Effect::Load {
                        addr: self.addr(),
                        size: self.access_bytes,
                    };
                }
                1 => {
                    self.phase = if self.store_back { 2 } else { 3 };
                    if self.compute > 0 {
                        return Effect::Compute(self.compute);
                    }
                }
                2 => {
                    self.phase = 3;
                    return Effect::Store {
                        addr: self.addr(),
                        size: self.access_bytes,
                    };
                }
                _ => {
                    self.i += 1;
                    self.phase = 0;
                }
            }
        }
    }

    fn label(&self) -> &str {
        "strided-kernel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, MachineConfig, Placement};

    #[test]
    fn compute_task_runs_once() {
        let mut e = Engine::new(MachineConfig::small());
        e.spawn_closure(Placement::Unit(0, 0), {
            let mut t = compute_task(123);
            move |ctx| t.resume(ctx)
        });
        let s = e.run();
        assert_eq!(s.tasks_completed, 1);
        assert!(s.busy_cycles >= 123);
    }

    #[test]
    fn strided_kernel_touches_each_iteration() {
        let mut e = Engine::new(MachineConfig::small());
        let k = strided_kernel(10, 5, GAddr::dram(0, 0), 64, 8);
        e.spawn(Placement::Unit(0, 0), crate::SpawnClass::Sgt, Box::new(k));
        let s = e.run();
        assert_eq!(s.tasks_completed, 1);
        assert_eq!(s.total_accesses(), 10);
    }

    #[test]
    fn store_back_doubles_accesses() {
        let mut e = Engine::new(MachineConfig::small());
        let k = strided_kernel(10, 5, GAddr::dram(0, 0), 64, 8).with_store_back();
        e.spawn(Placement::Unit(0, 0), crate::SpawnClass::Sgt, Box::new(k));
        let s = e.run();
        assert_eq!(s.total_accesses(), 20);
    }

    #[test]
    fn memory_bound_kernel_is_dominated_by_latency() {
        let run = |compute: u64| {
            let mut e = Engine::new(MachineConfig::small());
            let k = strided_kernel(100, compute, GAddr::dram(0, 0), 64, 8);
            e.spawn(Placement::Unit(0, 0), crate::SpawnClass::Sgt, Box::new(k));
            e.run().now
        };
        let memory_bound = run(1);
        let compute_bound = run(10_000);
        assert!(compute_bound > memory_bound * 5);
    }
}
