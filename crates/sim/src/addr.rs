//! The global address space of the simulated machine.
//!
//! The paper (feature 3 of §1) requires "architecture support for large
//! shared address space across nodes": every byte of every node's memory is
//! addressable from anywhere. A [`GAddr`] names a node, a region of its
//! hierarchy (per-unit scratchpad, banked on-chip SRAM, off-chip DRAM) and a
//! byte offset within that region.

use serde::{Deserialize, Serialize};

use crate::{NodeId, UnitId};

/// The level of the memory hierarchy an access resolves to, from the point
/// of view of the *issuing* unit. Used for statistics and by the locality
/// adaptation machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemLevel {
    /// The issuing unit's own scratchpad.
    LocalSpm,
    /// Another unit's scratchpad on the same node.
    PeerSpm,
    /// On-chip shared SRAM of the local node.
    OnChip,
    /// Off-chip DRAM of the local node.
    Dram,
    /// Any memory of a different node (reached through the network).
    Remote,
}

impl MemLevel {
    /// All levels, in increasing-latency order.
    pub const ALL: [MemLevel; 5] = [
        MemLevel::LocalSpm,
        MemLevel::PeerSpm,
        MemLevel::OnChip,
        MemLevel::Dram,
        MemLevel::Remote,
    ];
}

/// A region of one node's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// The scratchpad memory private to one thread unit.
    Spm(UnitId),
    /// The node's banked, shared on-chip SRAM.
    OnChip,
    /// The node's off-chip DRAM.
    Dram,
}

/// A global address: `(node, region, offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GAddr {
    /// Home node of the addressed memory.
    pub node: NodeId,
    /// Which memory region of the home node.
    pub region: Region,
    /// Byte offset within the region.
    pub offset: u64,
}

impl GAddr {
    /// An address in `unit`'s scratchpad on `node`.
    pub fn spm(node: NodeId, unit: UnitId, offset: u64) -> Self {
        Self {
            node,
            region: Region::Spm(unit),
            offset,
        }
    }

    /// An address in `node`'s on-chip SRAM.
    pub fn onchip(node: NodeId, offset: u64) -> Self {
        Self {
            node,
            region: Region::OnChip,
            offset,
        }
    }

    /// An address in `node`'s DRAM.
    pub fn dram(node: NodeId, offset: u64) -> Self {
        Self {
            node,
            region: Region::Dram,
            offset,
        }
    }

    /// The address `bytes` further into the same region.
    // Named like pointer::add, intentionally not the `Add` operator: the
    // operand is a byte displacement, not another address.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Self {
        Self {
            offset: self.offset + bytes,
            ..self
        }
    }

    /// Classify this address as seen from a unit on `(from_node, from_unit)`.
    pub fn level_from(&self, from_node: NodeId, from_unit: UnitId) -> MemLevel {
        if self.node != from_node {
            return MemLevel::Remote;
        }
        match self.region {
            Region::Spm(u) if u == from_unit => MemLevel::LocalSpm,
            Region::Spm(_) => MemLevel::PeerSpm,
            Region::OnChip => MemLevel::OnChip,
            Region::Dram => MemLevel::Dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_classification() {
        let a = GAddr::spm(0, 3, 64);
        assert_eq!(a.level_from(0, 3), MemLevel::LocalSpm);
        assert_eq!(a.level_from(0, 1), MemLevel::PeerSpm);
        assert_eq!(a.level_from(1, 3), MemLevel::Remote);
        assert_eq!(GAddr::onchip(0, 0).level_from(0, 0), MemLevel::OnChip);
        assert_eq!(GAddr::dram(0, 0).level_from(0, 0), MemLevel::Dram);
        assert_eq!(GAddr::dram(2, 0).level_from(0, 0), MemLevel::Remote);
    }

    #[test]
    fn add_offsets_within_region() {
        let a = GAddr::dram(1, 100).add(28);
        assert_eq!(a.offset, 128);
        assert_eq!(a.node, 1);
        assert_eq!(a.region, Region::Dram);
    }

    #[test]
    fn levels_are_ordered_by_distance() {
        for w in MemLevel::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
