//! Execution statistics collected by the engine.
//!
//! These counters are the raw material of the paper's §4.2 "monitoring of
//! application execution": the `htvm-adapt` monitor samples them during a
//! run and feeds the adaptive runtime.

use std::collections::BTreeMap;

use crate::addr::MemLevel;
use crate::config::SpawnClass;
use crate::Cycle;

/// Per-memory-level access accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Number of loads+stores resolved at this level.
    pub accesses: u64,
    /// Sum of observed (contended) latencies of blocking accesses.
    pub total_latency: Cycle,
}

impl LevelStats {
    /// Mean observed latency, or 0 if no accesses.
    pub fn mean_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }
}

/// Machine-wide statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Simulated time at which the run ended (makespan).
    pub now: Cycle,
    /// Cycles thread units spent executing compute or issue work.
    pub busy_cycles: Cycle,
    /// Cycles units spent switching hardware threads.
    pub switch_cycles: Cycle,
    /// Cycles units sat idle with no ready hardware thread.
    pub idle_cycles: Cycle,
    /// Number of hardware-thread context switches.
    pub switches: u64,
    /// Tasks spawned, per grain class.
    pub spawns: BTreeMap<SpawnClass, u64>,
    /// Tasks completed (all classes).
    pub tasks_completed: u64,
    /// Load/store accounting per memory level, as seen from issuing units.
    pub mem: BTreeMap<MemLevel, LevelStats>,
    /// Messages delivered across the network.
    pub messages: u64,
    /// Payload bytes moved across the network.
    pub message_bytes: u64,
    /// Parcels (spawn-on-arrival messages) delivered.
    pub parcels: u64,
}

impl Stats {
    /// Fraction of unit-cycles spent busy, over all units.
    ///
    /// `units` is the unit count the run used; utilization is
    /// `busy / (units × makespan)`.
    pub fn utilization(&self, units: usize) -> f64 {
        if self.now == 0 || units == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / (self.now as f64 * units as f64)
    }

    /// Total memory accesses across all levels.
    pub fn total_accesses(&self) -> u64 {
        self.mem.values().map(|l| l.accesses).sum()
    }

    /// Fraction of accesses resolved remotely (over the network).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        let remote = self.mem.get(&MemLevel::Remote).map_or(0, |l| l.accesses);
        remote as f64 / total as f64
    }

    /// Record an access (engine-internal).
    pub(crate) fn record_access(&mut self, level: MemLevel, latency: Cycle) {
        let e = self.mem.entry(level).or_default();
        e.accesses += 1;
        e.total_latency += latency;
    }

    /// Record a spawn (engine-internal).
    pub(crate) fn record_spawn(&mut self, class: SpawnClass) {
        *self.spawns.entry(class).or_insert(0) += 1;
    }

    /// Spawn count of a class.
    pub fn spawned(&self, class: SpawnClass) -> u64 {
        self.spawns.get(&class).copied().unwrap_or(0)
    }

    /// Mean observed latency at one level.
    pub fn mean_latency(&self, level: MemLevel) -> f64 {
        self.mem.get(&level).map_or(0.0, |l| l.mean_latency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_bounded() {
        let mut s = Stats {
            now: 1000,
            busy_cycles: 1500,
            ..Default::default()
        };
        assert!((s.utilization(2) - 0.75).abs() < 1e-9);
        s.busy_cycles = 0;
        assert_eq!(s.utilization(2), 0.0);
        assert_eq!(Stats::default().utilization(4), 0.0);
    }

    #[test]
    fn remote_fraction_counts_levels() {
        let mut s = Stats::default();
        s.record_access(MemLevel::Dram, 80);
        s.record_access(MemLevel::Remote, 400);
        s.record_access(MemLevel::Remote, 420);
        assert!((s.remote_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.total_accesses(), 3);
        assert!((s.mean_latency(MemLevel::Remote) - 410.0).abs() < 1e-9);
    }

    #[test]
    fn spawn_counters_track_classes() {
        let mut s = Stats::default();
        s.record_spawn(SpawnClass::Sgt);
        s.record_spawn(SpawnClass::Sgt);
        s.record_spawn(SpawnClass::Tgt);
        assert_eq!(s.spawned(SpawnClass::Sgt), 2);
        assert_eq!(s.spawned(SpawnClass::Tgt), 1);
        assert_eq!(s.spawned(SpawnClass::Lgt), 0);
    }
}
