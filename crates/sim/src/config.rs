//! Machine configuration: topology, cycle costs, contention parameters.
//!
//! Defaults are calibrated to published Cyclops-64 figures (160 thread units
//! per chip, ~2-cycle scratchpad, ~20-cycle on-chip SRAM, ~36–80-cycle
//! off-chip DRAM) and to the paper's qualitative cost ordering for the three
//! thread classes (LGT ≫ SGT ≫ TGT invocation cost, §3.1.1).

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// The three thread grain classes of the HTVM hierarchy (paper §3.1.1).
///
/// The simulator only needs their *costs*; their semantics live in
/// `htvm-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpawnClass {
    /// Large-grain thread: "considerable cost associated with such a coarse
    /// thread invocation and management, even with architectural support".
    Lgt,
    /// Small-grain thread: threaded function calls (Cilk/EARTH), parcels
    /// (HTMT/Cascade); "cost of their invocation and management is much
    /// lower".
    Sgt,
    /// Tiny-grain thread: fibers (EARTH) / strands (CARE); "much lighter
    /// weight than SGTs".
    Tgt,
}

/// Cycle costs of the memory hierarchy and its contention resources.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Latency of a scratchpad (per-unit SPM) access.
    pub spm_latency: Cycle,
    /// Latency of an on-chip shared SRAM access (no contention).
    pub onchip_latency: Cycle,
    /// Number of interleaved on-chip SRAM banks per node.
    pub onchip_banks: u32,
    /// Cycles a bank stays occupied per access (pipelined occupancy).
    pub onchip_occupancy: Cycle,
    /// Interleave granularity in bytes for bank selection.
    pub interleave_bytes: u64,
    /// Latency of an off-chip DRAM access (row hit, uncontended).
    pub dram_latency: Cycle,
    /// Number of DRAM channels per node.
    pub dram_channels: u32,
    /// Cycles a DRAM channel stays occupied per access.
    pub dram_occupancy: Cycle,
    /// Extra occupancy per 64B of payload on DRAM (bandwidth model).
    pub dram_occupancy_per_64b: Cycle,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            spm_latency: 2,
            onchip_latency: 20,
            onchip_banks: 16,
            onchip_occupancy: 2,
            interleave_bytes: 64,
            dram_latency: 80,
            dram_channels: 4,
            dram_occupancy: 8,
            dram_occupancy_per_64b: 4,
        }
    }
}

/// Inter-node network parameters (global address space transport).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Per-hop wire+router latency.
    pub hop_latency: Cycle,
    /// Fixed per-message overhead (injection, header processing).
    pub message_overhead: Cycle,
    /// NIC occupancy per 64 bytes of payload (inverse bandwidth). Inter-node
    /// links are an order of magnitude slower than a local DRAM channel
    /// (`MemoryConfig::dram_occupancy_per_64b`) — the asymmetry that makes
    /// "move the work to the data" (parcels, §3.2) pay off for large blocks.
    pub occupancy_per_64b: Cycle,
    /// Nodes are arranged on a `grid_width × ⌈nodes/grid_width⌉` 2-D mesh
    /// for hop-count purposes.
    pub grid_width: u16,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            hop_latency: 50,
            message_overhead: 100,
            occupancy_per_64b: 32,
            grid_width: 4,
        }
    }
}

/// Full machine description handed to [`crate::Engine::new`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of nodes (chips) in the machine.
    pub nodes: u16,
    /// Thread units per node.
    pub units_per_node: u16,
    /// Hardware thread slots per unit (contexts switched in-stream).
    pub hw_threads_per_unit: u16,
    /// Cost of switching between hardware threads of a unit, charged on each
    /// switch. The paper's in-stream switching makes this a handful of
    /// cycles; set it to thousands to emulate OS-level context switching
    /// (the baseline LITL-X argues against, §3.2).
    pub switch_cost: Cycle,
    /// Issue cost charged to a thread for initiating a memory operation.
    pub mem_issue_cost: Cycle,
    /// Whether stores block the issuing thread until completion. The default
    /// models a store buffer: stores retire immediately, contention is still
    /// charged at the target module.
    pub blocking_stores: bool,
    /// Invocation cost (cycles charged to the spawner) per thread class.
    pub spawn_cost_lgt: Cycle,
    /// See [`MachineConfig::spawn_cost_lgt`].
    pub spawn_cost_sgt: Cycle,
    /// See [`MachineConfig::spawn_cost_lgt`].
    pub spawn_cost_tgt: Cycle,
    /// Termination/management cost charged when a thread of each class ends.
    pub reap_cost_lgt: Cycle,
    /// See [`MachineConfig::reap_cost_lgt`].
    pub reap_cost_sgt: Cycle,
    /// See [`MachineConfig::reap_cost_lgt`].
    pub reap_cost_tgt: Cycle,
    /// Memory hierarchy parameters.
    pub memory: MemoryConfig,
    /// Network parameters.
    pub network: NetworkConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            nodes: 1,
            units_per_node: 16,
            hw_threads_per_unit: 4,
            switch_cost: 4,
            mem_issue_cost: 1,
            blocking_stores: false,
            spawn_cost_lgt: 2_000,
            spawn_cost_sgt: 120,
            spawn_cost_tgt: 8,
            reap_cost_lgt: 500,
            reap_cost_sgt: 40,
            reap_cost_tgt: 2,
            memory: MemoryConfig::default(),
            network: NetworkConfig::default(),
        }
    }
}

impl MachineConfig {
    /// A small machine for unit tests: 1 node, 4 units, 2 hw threads.
    pub fn small() -> Self {
        Self {
            units_per_node: 4,
            hw_threads_per_unit: 2,
            ..Self::default()
        }
    }

    /// A Cyclops-64-class chip: 1 node with 160 thread units and deep
    /// multithreading, per del Cuvillo et al. (paper refs \[7\]/\[8\]).
    pub fn c64() -> Self {
        Self {
            nodes: 1,
            units_per_node: 160,
            hw_threads_per_unit: 2,
            ..Self::default()
        }
    }

    /// A multi-node HEC system of `nodes` C64-style chips.
    pub fn cluster(nodes: u16) -> Self {
        Self {
            nodes,
            units_per_node: 32,
            hw_threads_per_unit: 4,
            ..Self::default()
        }
    }

    /// Spawn cost for a thread class.
    pub fn spawn_cost(&self, class: SpawnClass) -> Cycle {
        match class {
            SpawnClass::Lgt => self.spawn_cost_lgt,
            SpawnClass::Sgt => self.spawn_cost_sgt,
            SpawnClass::Tgt => self.spawn_cost_tgt,
        }
    }

    /// Termination cost for a thread class.
    pub fn reap_cost(&self, class: SpawnClass) -> Cycle {
        match class {
            SpawnClass::Lgt => self.reap_cost_lgt,
            SpawnClass::Sgt => self.reap_cost_sgt,
            SpawnClass::Tgt => self.reap_cost_tgt,
        }
    }

    /// Total number of thread units in the machine.
    pub fn total_units(&self) -> usize {
        self.nodes as usize * self.units_per_node as usize
    }

    /// Total number of hardware thread slots in the machine.
    pub fn total_slots(&self) -> usize {
        self.total_units() * self.hw_threads_per_unit as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reflect_grain_ordering() {
        let c = MachineConfig::default();
        assert!(c.spawn_cost(SpawnClass::Lgt) > c.spawn_cost(SpawnClass::Sgt));
        assert!(c.spawn_cost(SpawnClass::Sgt) > c.spawn_cost(SpawnClass::Tgt));
        assert!(c.reap_cost(SpawnClass::Lgt) > c.reap_cost(SpawnClass::Tgt));
    }

    #[test]
    fn c64_preset_has_160_units() {
        let c = MachineConfig::c64();
        assert_eq!(c.total_units(), 160);
        assert_eq!(c.total_slots(), 320);
    }

    #[test]
    fn cluster_counts_units_across_nodes() {
        let c = MachineConfig::cluster(4);
        assert_eq!(c.total_units(), 128);
    }

    #[test]
    fn memory_hierarchy_latency_ordering() {
        let m = MemoryConfig::default();
        assert!(m.spm_latency < m.onchip_latency);
        assert!(m.onchip_latency < m.dram_latency);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let c = MachineConfig::c64();
        let s = serde_json_like(&c);
        assert!(s.contains("units_per_node"));
    }

    // serde_json is not an allowed dependency; a token check on Debug output
    // stands in for round-trip coverage of the Serialize derive.
    fn serde_json_like(c: &MachineConfig) -> String {
        format!("{c:?}")
    }
}
