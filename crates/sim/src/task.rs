//! Simulated threads and the effects they yield.
//!
//! A [`SimThread`] is a resumable state machine: each call to
//! [`SimThread::resume`] returns the next [`Effect`] the thread performs.
//! Long-latency effects (loads, waits) suspend the thread; the engine then
//! switches the unit to another ready hardware thread — this is how the
//! simulator reproduces "thread context-switching built in the application's
//! instruction stream … for keeping the processors busy in the presence of
//! remote requests" (paper §3.2).

use crate::config::SpawnClass;
use crate::engine::Placement;
use crate::{Cycle, GAddr, NodeId};

/// Identifier of a counting synchronization signal.
///
/// Signals are the simulator-level substrate on which `htvm-core` builds the
/// EARTH-style dataflow sync slots of the HTVM synchronization model: a
/// signal is a counter; [`Effect::Wait`] consumes one unit, blocking until
/// one is available; [`Effect::Signal`] and message arrival produce units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub u64);

/// What happens at the destination node when a message arrives.
pub enum OnArrive {
    /// Increment a signal by the given amount (data-arrival sync).
    Signal(SignalId, u32),
    /// Spawn the carried thread at the destination: this is a **parcel** in
    /// the HTMT/Cascade sense — the message carries work to the data
    /// (paper §3.2, "parcel-driven split-transaction computation").
    Spawn(Box<dyn SimThread>, Placement, SpawnClass),
}

impl std::fmt::Debug for OnArrive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnArrive::Signal(sig, n) => write!(f, "Signal({sig:?}, {n})"),
            OnArrive::Spawn(_, place, class) => write!(f, "Spawn(<task>, {place:?}, {class:?})"),
        }
    }
}

/// One step of behaviour yielded by a simulated thread.
pub enum Effect {
    /// Execute for the given number of cycles, occupying the unit.
    Compute(Cycle),
    /// Issue a load of `size` bytes from `addr`; the thread blocks until the
    /// reply returns (the unit switches to another hardware thread).
    Load {
        /// Address to read.
        addr: GAddr,
        /// Request size in bytes.
        size: u32,
    },
    /// Issue a store of `size` bytes to `addr`. With the default store
    /// buffer model the thread continues immediately.
    Store {
        /// Address to write.
        addr: GAddr,
        /// Payload size in bytes.
        size: u32,
    },
    /// Send a message of `size` bytes to node `dst`; `action` runs on
    /// arrival. The sender does not block (split transaction).
    Send {
        /// Destination node.
        dst: NodeId,
        /// Payload size in bytes.
        size: u32,
        /// Arrival behaviour (signal or parcel-spawn).
        action: OnArrive,
    },
    /// Spawn a new simulated thread, charging the invocation cost of the
    /// given class to the spawner.
    Spawn {
        /// The thread to start.
        task: Box<dyn SimThread>,
        /// Where to place it.
        place: Placement,
        /// Grain class whose costs are charged.
        class: SpawnClass,
    },
    /// Increment a local signal (free of network cost).
    Signal(SignalId, u32),
    /// Consume one unit from a signal, blocking until available.
    Wait(SignalId),
    /// Give up the unit voluntarily; the thread is requeued as ready.
    Yield,
    /// The thread has finished.
    Done,
}

impl std::fmt::Debug for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Effect::Compute(c) => write!(f, "Compute({c})"),
            Effect::Load { addr, size } => write!(f, "Load({addr:?}, {size})"),
            Effect::Store { addr, size } => write!(f, "Store({addr:?}, {size})"),
            Effect::Send { dst, size, action } => write!(f, "Send(n{dst}, {size}, {action:?})"),
            Effect::Spawn { place, class, .. } => write!(f, "Spawn({place:?}, {class:?})"),
            Effect::Signal(sig, n) => write!(f, "Signal({sig:?}, {n})"),
            Effect::Wait(sig) => write!(f, "Wait({sig:?})"),
            Effect::Yield => write!(f, "Yield"),
            Effect::Done => write!(f, "Done"),
        }
    }
}

/// Read-only view of the executing thread's situation, passed to
/// [`SimThread::resume`].
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx {
    /// Current simulated time.
    pub now: Cycle,
    /// Node the thread is running on.
    pub node: NodeId,
    /// Unit (node-local index) the thread is running on.
    pub unit: u16,
    /// The thread's own id.
    pub task: crate::engine::TaskId,
}

/// A resumable simulated thread.
pub trait SimThread: Send {
    /// Produce the next effect. Called again after each effect completes
    /// (for blocking effects, after the thread is woken).
    fn resume(&mut self, ctx: &mut TaskCtx) -> Effect;

    /// Short label used in traces and per-task statistics.
    fn label(&self) -> &str {
        "task"
    }
}

impl<F> SimThread for F
where
    F: FnMut(&mut TaskCtx) -> Effect + Send,
{
    fn resume(&mut self, ctx: &mut TaskCtx) -> Effect {
        self(ctx)
    }
}

impl SimThread for Box<dyn SimThread> {
    fn resume(&mut self, ctx: &mut TaskCtx) -> Effect {
        (**self).resume(ctx)
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_sim_threads() {
        let mut left = 2;
        let mut t = move |_: &mut TaskCtx| {
            if left == 0 {
                Effect::Done
            } else {
                left -= 1;
                Effect::Compute(10)
            }
        };
        let mut ctx = TaskCtx {
            now: 0,
            node: 0,
            unit: 0,
            task: crate::engine::TaskId(0),
        };
        assert!(matches!(t.resume(&mut ctx), Effect::Compute(10)));
        assert!(matches!(t.resume(&mut ctx), Effect::Compute(10)));
        assert!(matches!(t.resume(&mut ctx), Effect::Done));
    }

    #[test]
    fn effect_debug_is_compact() {
        let e = Effect::Compute(5);
        assert_eq!(format!("{e:?}"), "Compute(5)");
        let w = Effect::Wait(SignalId(7));
        assert_eq!(format!("{w:?}"), "Wait(SignalId(7))");
    }
}
