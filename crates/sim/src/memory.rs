//! Timing model of the memory hierarchy.
//!
//! Each contended resource (SRAM bank, DRAM channel) tracks the cycle at
//! which it next becomes free; an access occupies its resource for a
//! configurable service time, so bursts of concurrent accesses queue up —
//! the "number of concurrent accesses and the available memory bandwidth"
//! dependence that §2's *latency adaptation* reacts to.

use crate::addr::{GAddr, Region};
use crate::config::MemoryConfig;
use crate::{Cycle, NodeId};

/// Per-node banked memory state.
#[derive(Debug, Clone)]
struct NodeMemory {
    onchip_bank_free: Vec<Cycle>,
    dram_channel_free: Vec<Cycle>,
}

/// The machine-wide memory timing model.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemoryConfig,
    nodes: Vec<NodeMemory>,
    /// Multiplier (×1000) applied to DRAM latency; the latency-adaptation
    /// experiments drift this at run time to emulate changing load from
    /// other jobs on the machine.
    dram_latency_milli_scale: u64,
}

impl MemorySystem {
    /// Build the model for `nodes` nodes with the given parameters.
    pub fn new(cfg: MemoryConfig, nodes: NodeId) -> Self {
        let node = NodeMemory {
            onchip_bank_free: vec![0; cfg.onchip_banks.max(1) as usize],
            dram_channel_free: vec![0; cfg.dram_channels.max(1) as usize],
        };
        Self {
            cfg,
            nodes: vec![node; nodes as usize],
            dram_latency_milli_scale: 1000,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Scale DRAM latency by `scale` (1.0 = configured value). Used by the
    /// latency-drift experiments; takes effect for subsequent accesses.
    pub fn set_dram_latency_scale(&mut self, scale: f64) {
        self.dram_latency_milli_scale = (scale.max(0.0) * 1000.0) as u64;
    }

    fn dram_latency(&self) -> Cycle {
        self.cfg.dram_latency * self.dram_latency_milli_scale / 1000
    }

    /// Uncontended latency of an access to `addr` from its *home node*
    /// perspective (network cost excluded).
    pub fn base_latency(&self, addr: GAddr) -> Cycle {
        match addr.region {
            Region::Spm(_) => self.cfg.spm_latency,
            Region::OnChip => self.cfg.onchip_latency,
            Region::Dram => self.dram_latency(),
        }
    }

    /// Charge an access of `size` bytes to `addr` issued at `now` (already
    /// arrived at the home node); returns the completion time. Mutates the
    /// contention state of the touched bank/channel.
    pub fn access(&mut self, addr: GAddr, size: u32, now: Cycle) -> Cycle {
        let lat = self.base_latency(addr);
        match addr.region {
            Region::Spm(_) => now + lat,
            Region::OnChip => {
                let node = &mut self.nodes[addr.node as usize];
                let bank = (addr.offset / self.cfg.interleave_bytes.max(1)) as usize
                    % node.onchip_bank_free.len();
                let start = now.max(node.onchip_bank_free[bank]);
                let service = self.cfg.onchip_occupancy * crate::payload_lines(size);
                node.onchip_bank_free[bank] = start + service;
                start + service + lat
            }
            Region::Dram => {
                let node = &mut self.nodes[addr.node as usize];
                let chan = (addr.offset / self.cfg.interleave_bytes.max(1)) as usize
                    % node.dram_channel_free.len();
                let start = now.max(node.dram_channel_free[chan]);
                let service = self.cfg.dram_occupancy
                    + self.cfg.dram_occupancy_per_64b
                        * crate::payload_lines(size).saturating_sub(1);
                node.dram_channel_free[chan] = start + service;
                start + service + lat
            }
        }
    }

    /// Earliest cycle at which any DRAM channel of `node` is free — a cheap
    /// congestion probe for the monitor.
    pub fn dram_backlog(&self, node: NodeId, now: Cycle) -> Cycle {
        self.nodes[node as usize]
            .dram_channel_free
            .iter()
            .map(|&f| f.saturating_sub(now))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemoryConfig::default(), 2)
    }

    #[test]
    fn spm_is_fast_and_uncontended() {
        let mut m = sys();
        let a = GAddr::spm(0, 0, 0);
        assert_eq!(m.access(a, 8, 100), 100 + m.config().spm_latency);
        assert_eq!(m.access(a, 8, 100), 100 + m.config().spm_latency);
    }

    #[test]
    fn same_bank_accesses_queue() {
        let mut m = sys();
        let a = GAddr::onchip(0, 0);
        let t1 = m.access(a, 8, 0);
        let t2 = m.access(a, 8, 0);
        assert!(t2 > t1, "second access to the same bank must queue");
    }

    #[test]
    fn different_banks_do_not_queue() {
        let mut m = sys();
        let a = GAddr::onchip(0, 0);
        let b = GAddr::onchip(0, 64); // next bank under 64B interleave
        let t1 = m.access(a, 8, 0);
        let t2 = m.access(b, 8, 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn dram_slower_than_onchip() {
        let mut m = sys();
        let on = m.access(GAddr::onchip(0, 0), 8, 0);
        let off = m.access(GAddr::dram(0, 0), 8, 0);
        assert!(off > on);
    }

    #[test]
    fn large_payloads_occupy_longer() {
        let mut m = sys();
        let small_done = m.access(GAddr::dram(0, 0), 64, 0);
        let mut m2 = sys();
        let big_done = m2.access(GAddr::dram(0, 0), 4096, 0);
        assert!(big_done > small_done);
    }

    #[test]
    fn latency_scale_drifts_dram() {
        let mut m = sys();
        let base = m.access(GAddr::dram(0, 0), 8, 0);
        m.set_dram_latency_scale(4.0);
        let mut m2 = sys();
        m2.set_dram_latency_scale(4.0);
        let scaled = m2.access(GAddr::dram(0, 0), 8, 0);
        assert!(scaled > base);
    }

    #[test]
    fn nodes_have_independent_banks() {
        let mut m = sys();
        let t1 = m.access(GAddr::onchip(0, 0), 8, 0);
        let t2 = m.access(GAddr::onchip(1, 0), 8, 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn backlog_reports_queueing() {
        let mut m = sys();
        assert_eq!(m.dram_backlog(0, 0), 0);
        for i in 0..32 {
            m.access(GAddr::dram(0, i * 64), 64, 0);
        }
        assert!(m.dram_backlog(0, 0) > 0);
    }
}
