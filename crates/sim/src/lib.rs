//! # htvm-sim — a function-accurate simulator for a Cyclops-64-class HEC machine
//!
//! This crate is the machine substrate of the HTVM reproduction (Gao et al.,
//! IPDPS 2006, §5.1). The paper's experimental testbed was the IBM Cyclops-64
//! software infrastructure and its *function-accurate* simulator; neither is
//! publicly available, so this crate implements the closest open equivalent:
//! a discrete-event simulator of a multi-node machine in which each node is a
//! chip with many in-order **thread units**, each holding several **hardware
//! thread slots** that are switched *in the application instruction stream*
//! (a few cycles per switch, not an OS trap), a **scratchpad / on-chip SRAM /
//! off-chip DRAM** memory hierarchy with banked contention, and an
//! inter-node network forming a **global shared address space**.
//!
//! Simulated work is expressed as [`SimThread`]s: state machines that yield
//! [`Effect`]s (compute, load, store, send, spawn, wait, …). The engine
//! charges cycle costs from the [`MachineConfig`], models queueing contention
//! on memory banks / DRAM channels / NICs, and interleaves the hardware
//! threads of each unit so that memory latency can be hidden by
//! multithreading — the central phenomenon the paper builds on.
//!
//! ```
//! use htvm_sim::{Engine, MachineConfig, Effect, GAddr, Placement};
//!
//! let mut engine = Engine::new(MachineConfig::small());
//! let addr = GAddr::dram(0, 0x1000);
//! let mut remaining = 8u32;
//! engine.spawn_closure(Placement::Unit(0, 0), move |_ctx| {
//!     if remaining == 0 {
//!         return Effect::Done;
//!     }
//!     remaining -= 1;
//!     Effect::Load { addr, size: 8 }
//! });
//! let stats = engine.run();
//! assert_eq!(stats.tasks_completed, 1);
//! assert!(stats.now > 0);
//! ```

pub mod addr;
pub mod builtin;
pub mod config;
pub mod engine;
pub mod memory;
pub mod network;
pub mod stats;
pub mod task;

pub use addr::{GAddr, MemLevel, Region};
pub use builtin::{compute_task, strided_kernel, StridedKernel};
pub use config::{MachineConfig, MemoryConfig, NetworkConfig, SpawnClass};
pub use engine::{Engine, Placement, TaskId};
pub use memory::MemorySystem;
pub use network::Network;
pub use stats::Stats;
pub use task::{Effect, OnArrive, SignalId, SimThread, TaskCtx};

/// A simulated time stamp, in machine clock cycles.
pub type Cycle = u64;

/// Number of 64-byte lines a payload occupies (≥1) — the unit both the
/// memory system and the network charge occupancy in.
pub(crate) fn payload_lines(size: u32) -> u64 {
    (size.max(1) as u64).div_ceil(64)
}

/// A node (chip) identifier within the simulated machine.
pub type NodeId = u16;

/// A thread-unit identifier within a node.
pub type UnitId = u16;
