//! Public-API smoke test: build a small machine, spawn work, step the
//! engine to completion, and read coherent statistics. Keeps
//! `cargo test -p htvm-sim` meaningful from outside the crate.

use htvm_sim::{compute_task, Engine, MachineConfig, Placement, SpawnClass};

#[test]
fn engine_runs_spawned_tasks_to_completion() {
    let mut e = Engine::new(MachineConfig::small());
    for t in 0..4u16 {
        e.spawn(
            Placement::Unit(0, t % 2),
            SpawnClass::Sgt,
            Box::new(compute_task(1_000)),
        );
    }
    let stats = e.run();
    assert_eq!(stats.tasks_completed, 4);
    assert!(
        stats.now >= 1_000,
        "cycles advance at least one task's work"
    );
    assert!(stats.busy_cycles >= 4 * 1_000, "all work was executed");
}

#[test]
fn engine_is_deterministic_across_runs() {
    let run = || {
        let mut e = Engine::new(MachineConfig::small());
        e.spawn(
            Placement::Unit(0, 0),
            SpawnClass::Sgt,
            Box::new(compute_task(500)),
        );
        let s = e.run();
        (s.now, s.busy_cycles, s.tasks_completed)
    };
    assert_eq!(run(), run());
}
