//! Synthetic workload generators shared by the experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A unit of CPU-bound work calibrated in abstract "work units"; each unit
/// is a handful of FLOPs. Returns a value that must be consumed (prevents
/// the optimizer from deleting the loop).
#[inline]
pub fn spin_work(units: u64) -> f64 {
    let mut x = 1.000000001f64;
    for i in 0..units {
        x = x * 1.0000001 + (i as f64) * 1e-12;
        x -= x.floor();
        // Keep x in a sane range so the loop cannot be strength-reduced.
        x += 0.5;
        x *= 0.75;
    }
    x
}

/// A task with a cost, a home affinity and a spawn time — raw material for
/// the load-adaptation experiments on the native runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticTask {
    /// Work units.
    pub cost: u64,
    /// Preferred worker/node.
    pub home: u32,
}

/// Generate `n` tasks with `skew` fraction pinned to home 0, costs uniform
/// in `[1, 2·mean]`.
pub fn skewed_tasks(n: usize, homes: u32, mean: u64, skew: f64, seed: u64) -> Vec<SyntheticTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| SyntheticTask {
            cost: rng.gen_range(1..=2 * mean.max(1)),
            home: if rng.gen_bool(skew.clamp(0.0, 1.0)) {
                0
            } else {
                rng.gen_range(0..homes.max(1))
            },
        })
        .collect()
}

/// A fork-join task tree of the given depth and fanout; returns per-leaf
/// costs. Total leaves = `fanout^depth`.
pub fn task_tree_costs(depth: u32, fanout: u32, mean: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let leaves = (fanout as u64).pow(depth);
    (0..leaves)
        .map(|_| rng.gen_range(1..=2 * mean.max(1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_work_scales_linearly_ish() {
        let t = |units| {
            let s = std::time::Instant::now();
            std::hint::black_box(spin_work(units));
            s.elapsed()
        };
        let small = t(100_000);
        let large = t(1_000_000);
        assert!(
            large > small,
            "10x work must take longer: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn spin_work_returns_finite() {
        assert!(spin_work(10_000).is_finite());
        assert!(spin_work(0).is_finite());
    }

    #[test]
    fn skewed_tasks_respect_skew() {
        let tasks = skewed_tasks(10_000, 8, 100, 0.75, 3);
        let at_zero = tasks.iter().filter(|t| t.home == 0).count();
        let frac = at_zero as f64 / tasks.len() as f64;
        assert!(frac > 0.7 && frac < 0.85, "skew fraction {frac}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            skewed_tasks(100, 4, 10, 0.5, 9),
            skewed_tasks(100, 4, 10, 0.5, 9)
        );
        assert_eq!(task_tree_costs(3, 4, 10, 1), task_tree_costs(3, 4, 10, 1));
    }

    #[test]
    fn task_tree_size() {
        assert_eq!(task_tree_costs(3, 4, 10, 1).len(), 64);
        assert_eq!(task_tree_costs(0, 4, 10, 1).len(), 1);
    }
}
