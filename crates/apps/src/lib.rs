//! # htvm-apps — the paper's driver applications
//!
//! §5.2 of Gao et al. (IPDPS 2006) selects two codes to validate the HTVM
//! system software: "the computational neuroscience, which simulates large
//! networks of biological neurons, and the fine grain molecular dynamics,
//! which simulates relatively modest sized molecules … in water with
//! multiple ion species".
//!
//! * [`neuro`] — a synthetic PGENESIS-class neocortex model: regions →
//!   columns → neurons → compartments → channels, time-stepped with
//!   delayed spike delivery. Its HTVM mapping follows Fig. 2: regions to
//!   LGT domains, neurons/columns to SGTs, per-compartment updates to a
//!   TGT dataflow graph.
//! * [`md`] — fine-grain molecular dynamics: a protein-bead cluster in
//!   water with Na⁺/Cl⁻ ions, Lennard-Jones + cutoff Coulomb forces over
//!   cell lists, velocity-Verlet integration; cells map to SGTs.
//! * [`workloads`] — synthetic load generators shared by the experiments.
//!
//! Neither application depends on proprietary inputs: both generate their
//! systems deterministically from a seed (see DESIGN.md §4 substitutions).
//!
//! # Example
//!
//! Run a few MD steps sequentially and the same system in parallel on the
//! HTVM runtime — the parallel force pass is bit-faithful:
//!
//! ```
//! use htvm_apps::md::integrate::{run_md, Thermostat};
//! use htvm_apps::md::parallel::{run_md_parallel, MdGrain};
//! use htvm_apps::md::system::{MdSystem, SystemSpec};
//! use htvm_apps::md::ForceParams;
//!
//! let spec = SystemSpec::tiny();
//! let params = ForceParams::default();
//! let mut seq = MdSystem::build(&spec);
//! run_md(&mut seq, &params, 0.001, 3, Thermostat::None);
//! let par = run_md_parallel(
//!     MdSystem::build(&spec), &params, 0.001, 3, 2, MdGrain::PerCell, Thermostat::None,
//! );
//! assert_eq!(par.system, seq);
//! ```

pub mod md;
pub mod neuro;
pub mod workloads;
