//! # htvm-apps — the paper's driver applications
//!
//! §5.2 of Gao et al. (IPDPS 2006) selects two codes to validate the HTVM
//! system software: "the computational neuroscience, which simulates large
//! networks of biological neurons, and the fine grain molecular dynamics,
//! which simulates relatively modest sized molecules … in water with
//! multiple ion species".
//!
//! * [`neuro`] — a synthetic PGENESIS-class neocortex model: regions →
//!   columns → neurons → compartments → channels, time-stepped with
//!   delayed spike delivery. Its HTVM mapping follows Fig. 2: regions to
//!   LGT domains, neurons/columns to SGTs, per-compartment updates to a
//!   TGT dataflow graph.
//! * [`md`] — fine-grain molecular dynamics: a protein-bead cluster in
//!   water with Na⁺/Cl⁻ ions, Lennard-Jones + cutoff Coulomb forces over
//!   cell lists, velocity-Verlet integration; cells map to SGTs.
//! * [`workloads`] — synthetic load generators shared by the experiments.
//!
//! Neither application depends on proprietary inputs: both generate their
//! systems deterministically from a seed (see DESIGN.md §4 substitutions).

pub mod md;
pub mod neuro;
pub mod workloads;
