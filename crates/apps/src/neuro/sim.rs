//! Sequential reference simulation with delayed spike delivery.
//!
//! A circular event wheel of `max_delay` slots buffers (target, comp,
//! weight) deliveries — the standard discrete-time network simulation
//! loop. The parallel runner in [`super::htvm_map`] must produce exactly
//! the same spike counts (determinism is part of E14's validation).

use super::network::Network;

/// The time-stepped simulator.
#[derive(Debug, Clone)]
pub struct NetworkSim {
    /// The network being simulated (owned).
    pub net: Network,
    /// Event wheel: wheel[t % len] = deliveries due at step t.
    wheel: Vec<Vec<(u32, u8, f64)>>,
    /// Current step.
    pub step_no: u64,
    /// Total spikes so far.
    pub total_spikes: u64,
    /// Integration timestep.
    pub dt: f64,
}

impl NetworkSim {
    /// Wrap a network for simulation.
    pub fn new(net: Network) -> Self {
        let wheel_len = net.spec.max_delay as usize + 1;
        Self {
            net,
            wheel: vec![Vec::new(); wheel_len],
            step_no: 0,
            total_spikes: 0,
            dt: 0.05,
        }
    }

    /// Advance one step; returns the indices of neurons that spiked.
    pub fn step(&mut self) -> Vec<u32> {
        let slot = (self.step_no as usize) % self.wheel.len();
        // 1. Deliver due events in canonical order, so parallel runners
        //    (which fill the wheel in nondeterministic order) accumulate
        //    synaptic currents with the exact same float rounding.
        let mut due = std::mem::take(&mut self.wheel[slot]);
        due.sort_by_key(|&(t, c, w)| (t, c, w.to_bits()));
        for (target, comp, weight) in due {
            self.net.neurons[target as usize].inject(comp as usize, weight);
        }
        // 2. Background drive.
        let drive = self.net.spec.drive;
        for &d in &self.net.driven {
            self.net.neurons[d as usize].inject(0, drive);
        }
        // 3. Update all neurons.
        let params = self.net.params.clone();
        let mut spiked = Vec::new();
        for (i, n) in self.net.neurons.iter_mut().enumerate() {
            if n.step(self.dt, &params) {
                spiked.push(i as u32);
            }
        }
        // 4. Enqueue outgoing spikes.
        for &s in &spiked {
            // Split borrows: clone the (small) out-list head info.
            let outs = self.net.synapses[s as usize].clone();
            for syn in outs {
                let at = (self.step_no as usize + syn.delay as usize) % self.wheel.len();
                self.wheel[at].push((syn.target, syn.comp, syn.weight));
            }
        }
        self.total_spikes += spiked.len() as u64;
        self.step_no += 1;
        spiked
    }

    /// Run `steps` steps; returns total spikes emitted during them.
    pub fn run(&mut self, steps: u64) -> u64 {
        let before = self.total_spikes;
        for _ in 0..steps {
            self.step();
        }
        self.total_spikes - before
    }

    /// Mean firing rate in spikes/neuron/step so far.
    pub fn mean_rate(&self) -> f64 {
        if self.step_no == 0 {
            return 0.0;
        }
        self.total_spikes as f64 / (self.step_no as f64 * self.net.neurons.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuro::network::NetworkSpec;

    #[test]
    fn driven_network_produces_spikes() {
        let mut sim = NetworkSim::new(Network::build(NetworkSpec::default()));
        let spikes = sim.run(600);
        assert!(spikes > 0, "background drive must elicit activity");
    }

    #[test]
    fn undriven_network_is_silent() {
        let spec = NetworkSpec {
            drive_fraction: 0.0,
            ..NetworkSpec::tiny()
        };
        let mut sim = NetworkSim::new(Network::build(spec));
        assert_eq!(sim.run(300), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = NetworkSim::new(Network::build(NetworkSpec::default()));
            sim.run(400);
            sim.total_spikes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spikes_propagate_through_synapses() {
        // Drive only; propagation should make undriven neurons spike too.
        // Recruitment needs strong coupling: driven neurons fire at ~1/270
        // steps, so an undriven neuron sees only ~0.03 deliveries/step; at
        // weight 120 that sustains a mean synaptic current of ~3.3 (≈33 mV
        // of steady depolarization) and the lumpier barrages cross the
        // threshold ~68 mV above rest.
        let spec = NetworkSpec {
            weight: 120.0,
            fanout: 32,
            ..NetworkSpec::default()
        };
        let mut sim = NetworkSim::new(Network::build(spec));
        sim.run(800);
        let driven: std::collections::HashSet<u32> = sim.net.driven.iter().copied().collect();
        let undriven_spikers = sim
            .net
            .neurons
            .iter()
            .enumerate()
            .filter(|(i, n)| !driven.contains(&(*i as u32)) && n.spike_count > 0)
            .count();
        assert!(
            undriven_spikers > 0,
            "synaptic propagation must recruit undriven neurons"
        );
    }

    #[test]
    fn rate_is_bounded_by_refractory() {
        let mut sim = NetworkSim::new(Network::build(NetworkSpec::default()));
        sim.run(500);
        let max_rate = 1.0 / (sim.net.params.refractory_steps as f64 + 1.0);
        assert!(
            sim.mean_rate() <= max_rate + 1e-9,
            "rate {} exceeds refractory bound {max_rate}",
            sim.mean_rate()
        );
    }
}
