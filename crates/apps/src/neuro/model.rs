//! Single-neuron biophysics: multi-compartment cable with an active soma.
//!
//! Compartment 0 is the soma and carries Hodgkin–Huxley-style Na/K channel
//! gates (m, h, n); the remaining compartments form a passive dendrite
//! chain. Units are arbitrary-but-consistent (the experiments care about
//! computational structure and determinism, not biophysical fidelity; see
//! DESIGN.md §4).

/// Parameters shared by a population of neurons.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuronParams {
    /// Membrane capacitance per compartment.
    pub c_m: f64,
    /// Leak conductance.
    pub g_leak: f64,
    /// Leak reversal potential.
    pub e_leak: f64,
    /// Axial (inter-compartment) conductance.
    pub g_axial: f64,
    /// Peak Na conductance (soma only).
    pub g_na: f64,
    /// Na reversal.
    pub e_na: f64,
    /// Peak K conductance (soma only).
    pub g_k: f64,
    /// K reversal.
    pub e_k: f64,
    /// Spike detection threshold (on soma voltage).
    pub v_thresh: f64,
    /// Refractory period in steps.
    pub refractory_steps: u32,
}

impl Default for NeuronParams {
    fn default() -> Self {
        Self {
            c_m: 1.0,
            g_leak: 0.1,
            e_leak: -65.0,
            g_axial: 0.5,
            g_na: 35.0,
            e_na: 55.0,
            g_k: 9.0,
            e_k: -90.0,
            v_thresh: 0.0,
            refractory_steps: 20,
        }
    }
}

/// One compartment's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Compartment {
    /// Membrane voltage.
    pub v: f64,
    /// Synaptic input current accumulated for the next step.
    pub i_syn: f64,
}

impl Compartment {
    /// Resting compartment.
    pub fn rest(e_leak: f64) -> Self {
        Self {
            v: e_leak,
            i_syn: 0.0,
        }
    }
}

/// A multi-compartment neuron.
#[derive(Debug, Clone, PartialEq)]
pub struct Neuron {
    /// Compartments; index 0 is the soma.
    pub comps: Vec<Compartment>,
    /// HH gates (soma).
    pub m: f64,
    /// Na inactivation gate.
    pub h: f64,
    /// K activation gate.
    pub n: f64,
    /// Steps remaining in refractory.
    pub refractory: u32,
    /// Total spikes emitted.
    pub spike_count: u64,
}

impl Neuron {
    /// A resting neuron with `n_comps` compartments.
    pub fn new(n_comps: usize, p: &NeuronParams) -> Self {
        Self {
            comps: vec![Compartment::rest(p.e_leak); n_comps.max(1)],
            m: 0.05,
            h: 0.6,
            n: 0.3,
            refractory: 0,
            spike_count: 0,
        }
    }

    /// Inject synaptic current into a compartment (delivered next step).
    pub fn inject(&mut self, comp: usize, current: f64) {
        let idx = comp.min(self.comps.len() - 1);
        self.comps[idx].i_syn += current;
    }

    /// Advance one step of `dt`; returns `true` if the soma spiked.
    ///
    /// The update is deliberately compute-dense (exponential gate
    /// kinetics): this is the per-neuron "fine grain" work of the paper's
    /// application.
    pub fn step(&mut self, dt: f64, p: &NeuronParams) -> bool {
        let n_comp = self.comps.len();
        // Axial currents from the cable graph (chain).
        let mut axial = vec![0.0f64; n_comp];
        for (i, a) in axial.iter_mut().enumerate() {
            if i > 0 {
                *a += p.g_axial * (self.comps[i - 1].v - self.comps[i].v);
            }
            if i + 1 < n_comp {
                *a += p.g_axial * (self.comps[i + 1].v - self.comps[i].v);
            }
        }
        // Soma active currents (HH-style).
        let v0 = self.comps[0].v;
        let (m_inf, tau_m) = gate_dynamics(v0, -40.0, 9.0, 0.2);
        let (h_inf, tau_h) = gate_dynamics(v0, -62.0, -7.0, 2.0);
        let (n_inf, tau_n) = gate_dynamics(v0, -53.0, 15.0, 1.0);
        self.m += dt * (m_inf - self.m) / tau_m;
        self.h += dt * (h_inf - self.h) / tau_h;
        self.n += dt * (n_inf - self.n) / tau_n;
        self.m = self.m.clamp(0.0, 1.0);
        self.h = self.h.clamp(0.0, 1.0);
        self.n = self.n.clamp(0.0, 1.0);

        let refractory = self.refractory;
        for (i, (c, a)) in self.comps.iter_mut().zip(&axial).enumerate() {
            let mut i_total = p.g_leak * (p.e_leak - c.v) + *a + c.i_syn;
            if i == 0 && refractory == 0 {
                let i_na = p.g_na * self.m.powi(3) * self.h * (p.e_na - c.v);
                let i_k = p.g_k * self.n.powi(4) * (p.e_k - c.v);
                i_total += i_na + i_k;
            }
            c.v += dt * i_total / p.c_m;
            c.i_syn = 0.0;
        }

        if self.refractory > 0 {
            self.refractory -= 1;
            // Clamp the soma during refractory.
            self.comps[0].v = p.e_leak;
            return false;
        }
        if self.comps[0].v >= p.v_thresh {
            self.refractory = p.refractory_steps;
            self.comps[0].v = p.e_leak;
            self.spike_count += 1;
            return true;
        }
        false
    }

    /// Soma voltage.
    pub fn soma_v(&self) -> f64 {
        self.comps[0].v
    }
}

/// Sigmoid steady state and voltage-dependent time constant for a gate.
fn gate_dynamics(v: f64, v_half: f64, slope: f64, tau_base: f64) -> (f64, f64) {
    let x = (v - v_half) / slope;
    let inf = 1.0 / (1.0 + (-x).exp());
    let tau = tau_base + 4.0 * tau_base / (1.0 + x * x);
    (inf, tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> NeuronParams {
        NeuronParams::default()
    }

    #[test]
    fn resting_neuron_stays_at_rest() {
        // The soma's true rest sits a few mV below e_leak (the resting K
        // current): what matters is that it is *stable* and silent.
        let mut n = Neuron::new(4, &p());
        for _ in 0..500 {
            assert!(!n.step(0.05, &p()));
        }
        let v_mid = n.soma_v();
        for _ in 0..500 {
            assert!(!n.step(0.05, &p()));
        }
        assert!(
            n.soma_v() > p().e_leak - 6.0 && n.soma_v() < p().e_leak + 1.0,
            "v = {}",
            n.soma_v()
        );
        assert!(
            (n.soma_v() - v_mid).abs() < 0.05,
            "membrane must have settled: {} -> {}",
            v_mid,
            n.soma_v()
        );
        assert_eq!(n.spike_count, 0);
    }

    #[test]
    fn strong_input_causes_spike() {
        let mut n = Neuron::new(4, &p());
        let mut spiked = false;
        for _ in 0..2000 {
            n.inject(0, 30.0);
            if n.step(0.05, &p()) {
                spiked = true;
                break;
            }
        }
        assert!(spiked, "30-unit soma current must elicit a spike");
    }

    #[test]
    fn refractory_blocks_immediate_respike() {
        let params = p();
        let mut n = Neuron::new(2, &params);
        // Drive to spike.
        while !{
            n.inject(0, 50.0);
            n.step(0.05, &params)
        } {}
        // During refractory, even huge input cannot respike.
        for _ in 0..params.refractory_steps {
            n.inject(0, 500.0);
            assert!(!n.step(0.05, &params));
        }
    }

    #[test]
    fn dendritic_input_propagates_to_soma() {
        // Compare against an undriven control so the soma's intrinsic
        // settling (toward its sub-e_leak rest) doesn't mask the cable
        // propagation being tested.
        let params = p();
        let mut driven = Neuron::new(6, &params);
        let mut control = Neuron::new(6, &params);
        for _ in 0..600 {
            driven.inject(5, 20.0); // distal dendrite
            driven.step(0.05, &params);
            control.step(0.05, &params);
        }
        assert!(
            driven.soma_v() > control.soma_v() + 1.0,
            "distal input must depolarize the soma vs control: {} vs {}",
            driven.soma_v(),
            control.soma_v()
        );
    }

    #[test]
    fn determinism() {
        let params = p();
        let mut a = Neuron::new(3, &params);
        let mut b = Neuron::new(3, &params);
        for i in 0..500 {
            a.inject(1, (i % 7) as f64);
            b.inject(1, (i % 7) as f64);
            a.step(0.05, &params);
            b.step(0.05, &params);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn gates_stay_in_range() {
        let params = p();
        let mut n = Neuron::new(2, &params);
        for i in 0..3000 {
            n.inject(0, ((i % 11) as f64) * 5.0);
            n.step(0.05, &params);
            assert!((0.0..=1.0).contains(&n.m));
            assert!((0.0..=1.0).contains(&n.h));
            assert!((0.0..=1.0).contains(&n.n));
            assert!(n.soma_v().is_finite());
        }
    }
}
