//! Large-scale neuron-network simulation (the paper's neuroscience driver,
//! §5.2 and the Fig. 2 case study).
//!
//! The model is a synthetic stand-in for the PGENESIS neocortex code the
//! authors used (which is not redistributable): multi-compartment neurons
//! with an active Hodgkin–Huxley-style soma and passive dendrite cable,
//! grouped into columns and regions, connected by delayed synapses. All of
//! the structure that drives the Fig. 2 mapping is present:
//!
//! * **regions** — coarse domains with dense intra-region connectivity
//!   (LGT-level work partitions);
//! * **neurons** — medium-grain state machines (SGT-level tasks);
//! * **compartments/channels** — fine-grain updates with dataflow
//!   dependencies along the dendrite cable (TGT-level fibers).
//!
//! [`sim::NetworkSim`] is the sequential reference; [`htvm_map`] runs the
//! same network on the HTVM runtime with either the hierarchical mapping
//! of Fig. 2 or a deliberately flat mapping (experiment E14's baseline).

pub mod htvm_map;
pub mod model;
pub mod network;
pub mod sim;

pub use htvm_map::{run_parallel, run_parallel_on, run_parallel_topo, Mapping, ParallelRunReport};
pub use model::{Compartment, Neuron, NeuronParams};
pub use network::{Network, NetworkSpec, Synapse};
pub use sim::NetworkSim;
