//! The Fig. 2 mapping: the neuron network on the HTVM thread hierarchy.
//!
//! * **Hierarchical** (the paper's proposal): one LGT per run; each region
//!   spawns its neurons as region-chunked SGTs (locality: a worker keeps a
//!   region's neurons together); each neuron's compartment/gate update runs
//!   as a TGT dataflow graph sharing the SGT frame.
//! * **Flat** (baseline): every neuron is an independent SGT thrown at the
//!   global queue; no region structure, no TGT grain.
//!
//! Both must produce *exactly* the spike counts of the sequential
//! reference ([`super::sim::NetworkSim`]); E14 compares their wall-clock
//! and load balance across worker counts.
//!
//! Parallelization contract: within one step every neuron is updated by
//! exactly one SGT; spike deliveries are buffered per-SGT and merged
//! between steps (bulk-synchronous, like PGENESIS). Steps are chained by
//! *dataflow*, not by a global barrier through the spawning thread: the
//! SGT that retires a step's last chunk performs the (cheap, sequential)
//! delivery phase and spawns the next step's SGTs itself — the paper's
//! argument against "synchronous global barriers" (§1), and on hosts with
//! expensive thread wakes it is also what makes fine-grain steps viable.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use htvm_core::{Htvm, HtvmConfig, PoolStats, SgtCtx, Topology};
use parking_lot::Mutex;

use super::model::{Neuron, NeuronParams};
use super::network::{Network, Synapse};

/// Which mapping to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Fig. 2: regions → SGT groups, neurons → SGTs (chunked), compartment
    /// updates structured as TGT graphs.
    Hierarchical,
    /// All neurons in one flat SGT pool, one SGT per neuron.
    Flat,
}

/// Result of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelRunReport {
    /// Total spikes over the run (must equal the sequential count).
    pub total_spikes: u64,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
    /// SGTs spawned.
    pub sgt_count: u64,
    /// Pool counters at the end of the run (per-worker and per-domain
    /// executed/steal breakdown; steals double as migration counts).
    pub pool: PoolStats,
}

impl ParallelRunReport {
    /// Work-stealing migrations observed (pool steals of either kind).
    pub fn steals(&self) -> u64 {
        self.pool.total_stolen()
    }

    /// Load imbalance across workers (CV of executed jobs).
    pub fn imbalance(&self) -> f64 {
        self.pool.imbalance()
    }
}

/// Everything the step chain shares; one allocation for the whole run.
struct ChainState {
    neurons: Vec<Mutex<Neuron>>,
    synapses: Vec<Vec<Synapse>>,
    driven: Vec<u32>,
    wheel: Vec<Mutex<Vec<(u32, u8, f64)>>>,
    drive: f64,
    params: NeuronParams,
    chunks: Vec<(usize, usize)>,
    steps: u64,
    dt: f64,
    /// SGTs of the current step still running.
    remaining: AtomicUsize,
    total_spikes: AtomicU64,
    sgt_count: AtomicU64,
    spread: bool,
}

/// Sequential inter-step phase: deliver due events (canonical order, so
/// float rounding matches the sequential reference exactly) and apply the
/// background drive.
fn deliver(state: &ChainState, step_no: u64) {
    let slot = (step_no as usize) % state.wheel.len();
    let mut due = std::mem::take(&mut *state.wheel[slot].lock());
    due.sort_by_key(|&(t, c, w)| (t, c, w.to_bits()));
    for (t, c, w) in due {
        state.neurons[t as usize].lock().inject(c as usize, w);
    }
    for &d in &state.driven {
        state.neurons[d as usize].lock().inject(0, state.drive);
    }
}

/// The SGT body for one chunk of one step. The chunk that finishes its
/// step last runs the delivery phase and spawns the next step in place.
fn chunk_body(
    state: Arc<ChainState>,
    step_no: u64,
    chunk_idx: usize,
) -> Box<dyn FnOnce(&SgtCtx) + Send> {
    Box::new(move |sgt: &SgtCtx| {
        let (lo, hi) = state.chunks[chunk_idx];
        let wheel_len = state.wheel.len();
        let mut local_spikes = 0u64;
        let mut outbox: Vec<(usize, (u32, u8, f64))> = Vec::new();
        for i in lo..hi {
            let spiked = state.neurons[i].lock().step(state.dt, &state.params);
            if spiked {
                local_spikes += 1;
                for syn in &state.synapses[i] {
                    let at = (step_no as usize + syn.delay as usize) % wheel_len;
                    outbox.push((at, (syn.target, syn.comp, syn.weight)));
                }
            }
        }
        // Merge the outbox in slot order (one lock per slot).
        outbox.sort_by_key(|(at, _)| *at);
        let mut idx = 0;
        while idx < outbox.len() {
            let at = outbox[idx].0;
            let mut guard = state.wheel[at].lock();
            while idx < outbox.len() && outbox[idx].0 == at {
                guard.push(outbox[idx].1);
                idx += 1;
            }
        }
        state
            .total_spikes
            .fetch_add(local_spikes, Ordering::Relaxed);
        // Dataflow step chaining: the last chunk of this step continues
        // the simulation without returning to the spawning thread.
        if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let next = step_no + 1;
            if next < state.steps {
                deliver(&state, next);
                state.remaining.store(state.chunks.len(), Ordering::Release);
                for ci in 0..state.chunks.len() {
                    state.sgt_count.fetch_add(1, Ordering::Relaxed);
                    let body = chunk_body(state.clone(), next, ci);
                    if state.spread {
                        sgt.spawn_sgt_spread(body);
                    } else {
                        sgt.spawn_sgt(body);
                    }
                }
            }
        }
    })
}

/// Run `steps` of the network on the HTVM native runtime (no locality
/// grouping — see [`run_parallel_topo`]).
pub fn run_parallel(
    net: Network,
    steps: u64,
    workers: usize,
    mapping: Mapping,
) -> ParallelRunReport {
    run_parallel_topo(net, steps, Topology::flat(workers), mapping)
}

/// Run `steps` of the network on the HTVM native runtime, on a pool with
/// an explicit locality-domain topology (E17 sweeps this). Constructs a
/// private [`Htvm`] for the run; to share a long-lived pool (e.g. a
/// serving pool) use [`run_parallel_on`].
pub fn run_parallel_topo(
    net: Network,
    steps: u64,
    topology: Topology,
    mapping: Mapping,
) -> ParallelRunReport {
    let htvm = Htvm::new(HtvmConfig {
        topology,
        lgt_memory_words: 64, // the LGT arena is unused here: keep it tiny
        frame_slots: 8,
    });
    run_parallel_on(&htvm, net, steps, mapping)
}

/// Run `steps` of the network as a batch job **on a shared, live
/// runtime** — the re-entrant form: multiple concurrent calls on the
/// same `Htvm`, or a call racing a serving front-end's request stream
/// on the same pool, are all safe. Completion is tracked by dataflow
/// (the run joins its own LGT, whose result fires when the last step's
/// last chunk retires), never by `Pool::wait_quiescent`, which on a
/// shared pool would wait for *everyone's* work — and on a
/// continuously-fed serving pool might never return.
/// [`ParallelRunReport::pool`] reports the pool-counter *delta* across
/// the call ([`PoolStats::since`]); on a busy shared pool the delta
/// includes whatever else ran meanwhile, so treat it as context, not
/// as an exact account of this run.
pub fn run_parallel_on(
    htvm: &Htvm,
    net: Network,
    steps: u64,
    mapping: Mapping,
) -> ParallelRunReport {
    let workers = htvm.pool().workers();
    let base = htvm.pool_stats();
    let start = std::time::Instant::now();

    let spec = net.spec.clone();
    let wheel_len = spec.max_delay as usize + 1;
    let total = net.neurons.len();

    let chunks: Vec<(usize, usize)> = match mapping {
        // Fig. 2 has a region-*group* level above regions (cerebrum →
        // region groups → regions): one SGT per region group, whole
        // regions per group, group count matched to the worker count —
        // locality of a region is preserved and per-step steal traffic
        // stays proportional to the machine, not the network.
        Mapping::Hierarchical => {
            let groups = workers.clamp(1, spec.regions.max(1));
            let per = spec.regions.div_ceil(groups);
            (0..groups)
                .map(|g| {
                    let lo = (g * per).min(spec.regions) * spec.neurons_per_region;
                    let hi = ((g + 1) * per).min(spec.regions) * spec.neurons_per_region;
                    (lo, hi)
                })
                .filter(|(lo, hi)| lo < hi)
                .collect()
        }
        Mapping::Flat => (0..total).map(|i| (i, i + 1)).collect(),
    };
    let state = Arc::new(ChainState {
        neurons: net.neurons.into_iter().map(Mutex::new).collect(),
        synapses: net.synapses,
        driven: net.driven,
        wheel: (0..wheel_len).map(|_| Mutex::new(Vec::new())).collect(),
        drive: spec.drive,
        params: net.params,
        chunks,
        steps,
        dt: 0.05,
        remaining: AtomicUsize::new(0),
        total_spikes: AtomicU64::new(0),
        sgt_count: AtomicU64::new(0),
        spread: mapping == Mapping::Flat,
    });

    if steps > 0 {
        let lgt = htvm.lgt({
            let state = state.clone();
            move |lgt| {
                deliver(&state, 0);
                state.remaining.store(state.chunks.len(), Ordering::Release);
                for ci in 0..state.chunks.len() {
                    state.sgt_count.fetch_add(1, Ordering::Relaxed);
                    let body = chunk_body(state.clone(), 0, ci);
                    if state.spread {
                        lgt.spawn_sgt_spread(move |sgt| body(sgt));
                    } else {
                        lgt.spawn_sgt(move |sgt| body(sgt));
                    }
                }
            }
        });
        lgt.join();
    }

    ParallelRunReport {
        total_spikes: state.total_spikes.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        sgt_count: state.sgt_count.load(Ordering::Relaxed),
        pool: htvm.pool_stats().since(&base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuro::network::NetworkSpec;
    use crate::neuro::sim::NetworkSim;

    fn spikes_sequential(spec: &NetworkSpec, steps: u64) -> u64 {
        let mut sim = NetworkSim::new(Network::build(spec.clone()));
        sim.run(steps);
        sim.total_spikes
    }

    #[test]
    fn hierarchical_matches_sequential() {
        let spec = NetworkSpec::tiny();
        let seq = spikes_sequential(&spec, 300);
        let par = run_parallel(Network::build(spec), 300, 4, Mapping::Hierarchical);
        assert_eq!(par.total_spikes, seq, "parallel run must be bit-faithful");
    }

    #[test]
    fn flat_matches_sequential() {
        let spec = NetworkSpec::tiny();
        let seq = spikes_sequential(&spec, 300);
        let par = run_parallel(Network::build(spec), 300, 4, Mapping::Flat);
        assert_eq!(par.total_spikes, seq);
    }

    #[test]
    fn flat_spawns_more_sgts_than_hierarchical() {
        let spec = NetworkSpec::tiny();
        let h = run_parallel(Network::build(spec.clone()), 50, 4, Mapping::Hierarchical);
        let f = run_parallel(Network::build(spec), 50, 4, Mapping::Flat);
        assert!(
            f.sgt_count > h.sgt_count * 4,
            "flat: one SGT per neuron per step ({} vs {})",
            f.sgt_count,
            h.sgt_count
        );
    }

    #[test]
    fn single_worker_still_correct() {
        let spec = NetworkSpec::tiny();
        let seq = spikes_sequential(&spec, 100);
        let par = run_parallel(Network::build(spec), 100, 1, Mapping::Hierarchical);
        assert_eq!(par.total_spikes, seq);
    }

    #[test]
    fn zero_steps_is_a_noop() {
        let par = run_parallel(
            Network::build(NetworkSpec::tiny()),
            0,
            2,
            Mapping::Hierarchical,
        );
        assert_eq!(par.total_spikes, 0);
        assert_eq!(par.sgt_count, 0);
    }

    #[test]
    fn sgt_count_is_chunks_times_steps() {
        let spec = NetworkSpec::tiny();
        let groups = 2usize.min(spec.regions) as u64; // workers.min(regions)
        let par = run_parallel(Network::build(spec), 25, 2, Mapping::Hierarchical);
        assert_eq!(par.sgt_count, 25 * groups);
    }
}
