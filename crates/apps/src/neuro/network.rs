//! Network construction: regions, populations, synapses, delays.
//!
//! The generator is deterministic from a seed and mirrors the structure of
//! the Fig. 2 case study: a handful of brain regions, each holding columns
//! of neurons; connectivity is dense within a region and sparse between
//! regions; synapses carry (weight, delay, target compartment).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::model::{Neuron, NeuronParams};

/// A synapse from a source neuron to a target neuron.
#[derive(Debug, Clone, PartialEq)]
pub struct Synapse {
    /// Target neuron (global index).
    pub target: u32,
    /// Target compartment on that neuron.
    pub comp: u8,
    /// Synaptic weight (current injected per spike).
    pub weight: f64,
    /// Delivery delay in steps (≥ 1).
    pub delay: u16,
}

/// Specification of a synthetic neocortex network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Number of regions (Fig. 2's top level).
    pub regions: usize,
    /// Neurons per region.
    pub neurons_per_region: usize,
    /// Compartments per neuron (soma + dendrite cable).
    pub compartments: usize,
    /// Outgoing synapses per neuron.
    pub fanout: usize,
    /// Probability an edge stays inside its source region.
    pub intra_region_p: f64,
    /// Mean synaptic weight.
    pub weight: f64,
    /// Maximum synaptic delay in steps.
    pub max_delay: u16,
    /// Fraction of neurons receiving steady background drive.
    pub drive_fraction: f64,
    /// Background drive current.
    pub drive: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        Self {
            regions: 4,
            neurons_per_region: 64,
            compartments: 5,
            fanout: 16,
            intra_region_p: 0.85,
            weight: 6.0,
            max_delay: 8,
            drive_fraction: 0.2,
            drive: 26.0,
            seed: 42,
        }
    }
}

impl NetworkSpec {
    /// A small spec for unit tests.
    pub fn tiny() -> Self {
        Self {
            regions: 2,
            neurons_per_region: 16,
            compartments: 3,
            fanout: 4,
            ..Self::default()
        }
    }

    /// Total neurons.
    pub fn total_neurons(&self) -> usize {
        self.regions * self.neurons_per_region
    }
}

/// A built network: neurons plus static connectivity.
#[derive(Debug, Clone)]
pub struct Network {
    /// The specification it was built from.
    pub spec: NetworkSpec,
    /// Neuron states (region-major order).
    pub neurons: Vec<Neuron>,
    /// Outgoing synapses per neuron.
    pub synapses: Vec<Vec<Synapse>>,
    /// Indices of neurons with background drive.
    pub driven: Vec<u32>,
    /// Shared biophysics.
    pub params: NeuronParams,
}

impl Network {
    /// Build deterministically from a spec.
    pub fn build(spec: NetworkSpec) -> Network {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let params = NeuronParams::default();
        let total = spec.total_neurons();
        let neurons = (0..total)
            .map(|_| Neuron::new(spec.compartments, &params))
            .collect();
        let mut synapses = Vec::with_capacity(total);
        for src in 0..total {
            let src_region = src / spec.neurons_per_region;
            let mut out = Vec::with_capacity(spec.fanout);
            for _ in 0..spec.fanout {
                let region = if rng.gen_bool(spec.intra_region_p.clamp(0.0, 1.0)) {
                    src_region
                } else {
                    rng.gen_range(0..spec.regions)
                };
                let within = rng.gen_range(0..spec.neurons_per_region);
                let target = (region * spec.neurons_per_region + within) as u32;
                out.push(Synapse {
                    target,
                    comp: rng.gen_range(0..spec.compartments.min(255)) as u8,
                    weight: spec.weight * rng.gen_range(0.5..1.5),
                    delay: rng.gen_range(1..=spec.max_delay.max(1)),
                });
            }
            synapses.push(out);
        }
        let driven = (0..total as u32)
            .filter(|_| rng.gen_bool(spec.drive_fraction.clamp(0.0, 1.0)))
            .collect();
        Network {
            spec,
            neurons,
            synapses,
            driven,
            params,
        }
    }

    /// Region index of a neuron.
    pub fn region_of(&self, neuron: usize) -> usize {
        neuron / self.spec.neurons_per_region
    }

    /// Count synapses crossing region boundaries (communication volume of
    /// the Fig. 2 mapping).
    pub fn inter_region_edges(&self) -> usize {
        self.synapses
            .iter()
            .enumerate()
            .flat_map(|(src, outs)| {
                let r = self.region_of(src);
                outs.iter()
                    .filter(move |s| self.region_of(s.target as usize) != r)
            })
            .count()
    }

    /// Total synapse count.
    pub fn total_edges(&self) -> usize {
        self.synapses.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = Network::build(NetworkSpec::tiny());
        let b = Network::build(NetworkSpec::tiny());
        assert_eq!(a.synapses, b.synapses);
        assert_eq!(a.driven, b.driven);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Network::build(NetworkSpec::tiny());
        let b = Network::build(NetworkSpec {
            seed: 7,
            ..NetworkSpec::tiny()
        });
        assert_ne!(a.synapses, b.synapses);
    }

    #[test]
    fn connectivity_is_mostly_intra_region() {
        let n = Network::build(NetworkSpec::default());
        let inter = n.inter_region_edges();
        let total = n.total_edges();
        let frac = inter as f64 / total as f64;
        assert!(
            frac < 0.3,
            "with intra_region_p = 0.85 most edges stay local: {frac}"
        );
        assert_eq!(total, n.spec.total_neurons() * n.spec.fanout);
    }

    #[test]
    fn targets_and_delays_in_range() {
        let n = Network::build(NetworkSpec::default());
        for outs in &n.synapses {
            for s in outs {
                assert!((s.target as usize) < n.spec.total_neurons());
                assert!(s.delay >= 1 && s.delay <= n.spec.max_delay);
                assert!((s.comp as usize) < n.spec.compartments);
                assert!(s.weight > 0.0);
            }
        }
    }

    #[test]
    fn some_neurons_are_driven() {
        let n = Network::build(NetworkSpec::default());
        let frac = n.driven.len() as f64 / n.spec.total_neurons() as f64;
        assert!(frac > 0.05 && frac < 0.5, "driven fraction {frac}");
    }
}
