//! Velocity-Verlet integration with an optional Berendsen thermostat.

use super::cell_list::CellList;
use super::forces::{compute_forces, ForceParams};
use super::system::MdSystem;

/// Thermostat configuration.
#[derive(Debug, Clone, Copy)]
pub enum Thermostat {
    /// Microcanonical (no velocity rescaling).
    None,
    /// Berendsen weak coupling toward `target` with time constant `tau`
    /// (in units of the timestep).
    Berendsen {
        /// Target temperature.
        target: f64,
        /// Coupling time constant, in steps.
        tau: f64,
    },
}

/// One velocity-Verlet step; returns the potential energy after the step.
///
/// The cell list is rebuilt each step (particles move slowly at sane
/// timesteps, but correctness over speed here; the benches measure the
/// parallel force pass, which dominates anyway).
pub fn velocity_verlet_step(
    sys: &mut MdSystem,
    params: &ForceParams,
    dt: f64,
    thermostat: Thermostat,
) -> f64 {
    let n = sys.len();
    // Half-kick + drift using current forces.
    for i in 0..n {
        let m = sys.species[i].mass();
        for k in 0..3 {
            sys.vel[i][k] += 0.5 * dt * sys.force[i][k] / m;
            sys.pos[i][k] += dt * sys.vel[i][k];
        }
    }
    sys.wrap_positions();
    // New forces.
    let cl = CellList::build(sys, params.cutoff);
    let potential = compute_forces(sys, &cl, params);
    // Second half-kick.
    for i in 0..n {
        let m = sys.species[i].mass();
        for k in 0..3 {
            sys.vel[i][k] += 0.5 * dt * sys.force[i][k] / m;
        }
    }
    if let Thermostat::Berendsen { target, tau } = thermostat {
        let t = sys.temperature();
        if t > 1e-12 {
            let lambda = (1.0 + (1.0 / tau.max(1.0)) * (target / t - 1.0))
                .max(0.0)
                .sqrt();
            for v in sys.vel.iter_mut() {
                for x in v.iter_mut() {
                    *x *= lambda;
                }
            }
        }
    }
    potential
}

/// Run `steps` steps; returns (final potential, energy drift fraction)
/// where drift is |E_end − E_start| / |E_start| of the total energy.
pub fn run_md(
    sys: &mut MdSystem,
    params: &ForceParams,
    dt: f64,
    steps: usize,
    thermostat: Thermostat,
) -> (f64, f64) {
    // Prime forces.
    let cl = CellList::build(sys, params.cutoff);
    let mut potential = compute_forces(sys, &cl, params);
    let e0 = potential + sys.kinetic_energy();
    for _ in 0..steps {
        potential = velocity_verlet_step(sys, params, dt, thermostat);
    }
    let e1 = potential + sys.kinetic_energy();
    let drift = if e0.abs() > 1e-12 {
        (e1 - e0).abs() / e0.abs()
    } else {
        (e1 - e0).abs()
    };
    (potential, drift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::system::{MdSystem, SystemSpec};

    #[test]
    fn energy_drift_is_bounded_at_small_dt() {
        let mut s = MdSystem::build(&SystemSpec::tiny());
        let (_, drift) = run_md(
            &mut s,
            &ForceParams::default(),
            0.001,
            200,
            Thermostat::None,
        );
        assert!(drift < 0.05, "NVE drift {drift} too large for dt=1e-3");
    }

    #[test]
    fn larger_dt_drifts_more() {
        let drift_at = |dt| {
            let mut s = MdSystem::build(&SystemSpec::tiny());
            run_md(&mut s, &ForceParams::default(), dt, 100, Thermostat::None).1
        };
        let small = drift_at(0.0005);
        let large = drift_at(0.004);
        assert!(
            large >= small,
            "drift must not shrink with dt: {small} vs {large}"
        );
    }

    #[test]
    fn thermostat_pulls_temperature_to_target() {
        let mut s = MdSystem::build(&SystemSpec::tiny());
        // Heat the system artificially.
        for v in s.vel.iter_mut() {
            for x in v.iter_mut() {
                *x *= 3.0;
            }
        }
        let hot = s.temperature();
        run_md(
            &mut s,
            &ForceParams::default(),
            0.001,
            300,
            Thermostat::Berendsen {
                target: 1.0,
                tau: 20.0,
            },
        );
        let cooled = s.temperature();
        assert!(
            cooled < hot && (cooled - 1.0).abs() < 1.0,
            "thermostat: {hot} -> {cooled}"
        );
    }

    #[test]
    fn positions_stay_in_box() {
        let mut s = MdSystem::build(&SystemSpec::tiny());
        run_md(
            &mut s,
            &ForceParams::default(),
            0.002,
            100,
            Thermostat::None,
        );
        for p in &s.pos {
            for k in 0..3 {
                assert!(p[k] >= 0.0 && p[k] <= s.box_len, "particle escaped: {p:?}");
            }
        }
    }

    #[test]
    fn integration_is_deterministic() {
        let run = || {
            let mut s = MdSystem::build(&SystemSpec::tiny());
            run_md(&mut s, &ForceParams::default(), 0.001, 50, Thermostat::None);
            s
        };
        assert_eq!(run(), run());
    }
}
