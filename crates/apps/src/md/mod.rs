//! Fine-grain molecular dynamics (the paper's second driver, §5.2):
//! "relatively modest sized molecules, a single protein or protein complex
//! in water with multiple ion species".
//!
//! The production code the authors had in mind is not available, so the
//! system is synthetic but structurally faithful (DESIGN.md §4): a cubic
//! box of coarse water beads, Na⁺/Cl⁻ ions and one compact "protein"
//! cluster of heavier beads; Lennard-Jones plus cutoff Coulomb forces over
//! a cell list; velocity-Verlet integration with an optional Berendsen
//! thermostat.
//!
//! The HTVM mapping ([`parallel`]) assigns cells to SGTs — the fine-grain
//! parallelism the paper's title promises — and must agree with the
//! sequential reference to the last bit (each particle's force is computed
//! by exactly one task iterating its neighbours in a fixed order).

pub mod cell_list;
pub mod forces;
pub mod integrate;
pub mod parallel;
pub mod system;

pub use cell_list::CellList;
pub use forces::{compute_forces, ForceParams};
pub use integrate::{velocity_verlet_step, Thermostat};
pub use parallel::run_md_parallel;
pub use system::{MdSystem, Species, SystemSpec};
