//! Particle system construction: protein + water + ions in a periodic box.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Particle species.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Species {
    /// Coarse-grained water bead (neutral).
    Water,
    /// Sodium ion (+1).
    Na,
    /// Chloride ion (−1).
    Cl,
    /// Protein bead (heavier, mixed charge).
    Protein,
}

impl Species {
    /// Particle mass.
    pub fn mass(self) -> f64 {
        match self {
            Species::Water => 18.0,
            Species::Na => 23.0,
            Species::Cl => 35.5,
            Species::Protein => 110.0,
        }
    }

    /// Charge (elementary units).
    pub fn charge(self) -> f64 {
        match self {
            Species::Water => 0.0,
            Species::Na => 1.0,
            Species::Cl => -1.0,
            Species::Protein => 0.0,
        }
    }

    /// Lennard-Jones σ.
    pub fn sigma(self) -> f64 {
        match self {
            Species::Water => 1.0,
            Species::Na => 0.75,
            Species::Cl => 1.25,
            Species::Protein => 1.4,
        }
    }

    /// Lennard-Jones ε.
    pub fn epsilon(self) -> f64 {
        match self {
            Species::Water => 0.65,
            Species::Na => 0.3,
            Species::Cl => 0.4,
            Species::Protein => 1.0,
        }
    }
}

/// Specification of the synthetic box.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Cubic box edge length.
    pub box_len: f64,
    /// Number of water beads.
    pub waters: usize,
    /// Number of Na⁺/Cl⁻ *pairs*.
    pub ion_pairs: usize,
    /// Number of protein beads (clustered at the box centre).
    pub protein_beads: usize,
    /// Initial temperature (velocity scale).
    pub temperature: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for SystemSpec {
    fn default() -> Self {
        Self {
            box_len: 14.0,
            waters: 600,
            ion_pairs: 12,
            protein_beads: 40,
            temperature: 1.0,
            seed: 17,
        }
    }
}

impl SystemSpec {
    /// A small box for unit tests.
    pub fn tiny() -> Self {
        Self {
            box_len: 8.0,
            waters: 100,
            ion_pairs: 4,
            protein_beads: 10,
            ..Self::default()
        }
    }

    /// Total particle count.
    pub fn total(&self) -> usize {
        self.waters + 2 * self.ion_pairs + self.protein_beads
    }
}

/// The particle system (structure-of-arrays).
#[derive(Debug, Clone, PartialEq)]
pub struct MdSystem {
    /// Box edge.
    pub box_len: f64,
    /// Species per particle.
    pub species: Vec<Species>,
    /// Positions `[x,y,z]` per particle.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Forces (filled by the force kernels).
    pub force: Vec<[f64; 3]>,
}

impl MdSystem {
    /// Build deterministically from a spec: protein beads in a dense ball
    /// at the centre, ions and water uniformly elsewhere, Maxwell-ish
    /// velocities at the requested temperature (zero net momentum).
    pub fn build(spec: &SystemSpec) -> MdSystem {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut species = Vec::with_capacity(spec.total());
        let mut pos = Vec::with_capacity(spec.total());
        let centre = spec.box_len / 2.0;
        // Protein ball.
        for _ in 0..spec.protein_beads {
            species.push(Species::Protein);
            let r = 1.6 * (spec.protein_beads as f64).cbrt() * Species::Protein.sigma() / 2.0;
            loop {
                let p = [
                    centre + rng.gen_range(-r..=r),
                    centre + rng.gen_range(-r..=r),
                    centre + rng.gen_range(-r..=r),
                ];
                // Keep a minimum spacing inside the cluster.
                if pos
                    .iter()
                    .all(|q: &[f64; 3]| dist2_pbc(p, *q, spec.box_len) > 0.8)
                {
                    pos.push(p);
                    break;
                }
            }
        }
        // Solvent + ions.
        let place_free = |species_vec: &mut Vec<Species>,
                          pos: &mut Vec<[f64; 3]>,
                          s: Species,
                          rng: &mut StdRng| {
            species_vec.push(s);
            loop {
                let p = [
                    rng.gen_range(0.0..spec.box_len),
                    rng.gen_range(0.0..spec.box_len),
                    rng.gen_range(0.0..spec.box_len),
                ];
                if pos
                    .iter()
                    .all(|q: &[f64; 3]| dist2_pbc(p, *q, spec.box_len) > 0.6)
                {
                    pos.push(p);
                    break;
                }
            }
        };
        for _ in 0..spec.ion_pairs {
            place_free(&mut species, &mut pos, Species::Na, &mut rng);
            place_free(&mut species, &mut pos, Species::Cl, &mut rng);
        }
        for _ in 0..spec.waters {
            place_free(&mut species, &mut pos, Species::Water, &mut rng);
        }
        // Velocities: Gaussian-ish by CLT, scaled by sqrt(T/m).
        let n = species.len();
        let mut vel: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                let scale = (spec.temperature / species[i].mass()).sqrt();
                [
                    gaussian(&mut rng) * scale,
                    gaussian(&mut rng) * scale,
                    gaussian(&mut rng) * scale,
                ]
            })
            .collect();
        // Remove net momentum.
        let mut p_net = [0.0f64; 3];
        for (i, v) in vel.iter().enumerate() {
            for d in 0..3 {
                p_net[d] += species[i].mass() * v[d];
            }
        }
        let m_total: f64 = species.iter().map(|s| s.mass()).sum();
        for v in vel.iter_mut() {
            for d in 0..3 {
                v[d] -= p_net[d] / m_total;
            }
        }
        MdSystem {
            box_len: spec.box_len,
            species,
            pos,
            vel,
            force: vec![[0.0; 3]; n],
        }
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True if the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Minimum-image displacement `a − b`.
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let mut d = [0.0; 3];
        for k in 0..3 {
            let mut x = a[k] - b[k];
            x -= self.box_len * (x / self.box_len).round();
            d[k] = x;
        }
        d
    }

    /// Kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        self.species
            .iter()
            .zip(&self.vel)
            .map(|(s, v)| 0.5 * s.mass() * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Instantaneous temperature (per degree of freedom).
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.kinetic_energy() / (3.0 * self.len() as f64)
    }

    /// Net momentum magnitude (conservation check).
    pub fn net_momentum(&self) -> f64 {
        let mut p = [0.0f64; 3];
        for (s, v) in self.species.iter().zip(&self.vel) {
            for d in 0..3 {
                p[d] += s.mass() * v[d];
            }
        }
        (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()
    }

    /// Wrap positions into the box.
    pub fn wrap_positions(&mut self) {
        let l = self.box_len;
        for p in self.pos.iter_mut() {
            for x in p.iter_mut() {
                *x -= l * (*x / l).floor();
            }
        }
    }

    /// Net charge (must be zero: ions come in pairs).
    pub fn net_charge(&self) -> f64 {
        self.species.iter().map(|s| s.charge()).sum()
    }
}

fn dist2_pbc(a: [f64; 3], b: [f64; 3], l: f64) -> f64 {
    let mut s = 0.0;
    for k in 0..3 {
        let mut x = a[k] - b[k];
        x -= l * (x / l).round();
        s += x * x;
    }
    s
}

/// 12-uniform CLT gaussian (deterministic, no Box-Muller branch issues).
fn gaussian(rng: &mut StdRng) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
    s - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_and_complete() {
        let a = MdSystem::build(&SystemSpec::tiny());
        let b = MdSystem::build(&SystemSpec::tiny());
        assert_eq!(a, b);
        assert_eq!(a.len(), SystemSpec::tiny().total());
    }

    #[test]
    fn charge_neutral_and_momentum_free() {
        let s = MdSystem::build(&SystemSpec::tiny());
        assert!(s.net_charge().abs() < 1e-12);
        assert!(s.net_momentum() < 1e-9, "net momentum {}", s.net_momentum());
    }

    #[test]
    fn initial_temperature_near_target() {
        let spec = SystemSpec {
            waters: 2000,
            ..SystemSpec::default()
        };
        let s = MdSystem::build(&spec);
        let t = s.temperature();
        assert!(
            (t - spec.temperature).abs() / spec.temperature < 0.25,
            "temperature {t} vs target {}",
            spec.temperature
        );
    }

    #[test]
    fn protein_is_clustered() {
        let s = MdSystem::build(&SystemSpec::default());
        let centre = [s.box_len / 2.0; 3];
        for (i, sp) in s.species.iter().enumerate() {
            if *sp == Species::Protein {
                let d = s.min_image(s.pos[i], centre);
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                assert!(r < s.box_len / 2.5, "protein bead {i} strayed to r={r}");
            }
        }
    }

    #[test]
    fn min_image_is_short() {
        let s = MdSystem::build(&SystemSpec::tiny());
        let d = s.min_image([0.1, 0.1, 0.1], [7.9, 7.9, 7.9]);
        for axis in d {
            assert!(axis.abs() < 1.0, "wrap-around distance should be short");
        }
    }

    #[test]
    fn no_initial_overlaps() {
        let s = MdSystem::build(&SystemSpec::tiny());
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                let d = s.min_image(s.pos[i], s.pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                assert!(r2 > 0.3, "particles {i},{j} overlap: r² = {r2}");
            }
        }
    }
}
