//! Uniform-grid cell lists for O(n) neighbour finding.

use super::system::MdSystem;

/// A cell decomposition of the periodic box.
#[derive(Debug, Clone)]
pub struct CellList {
    /// Cells per box edge.
    pub dims: usize,
    /// Cell edge length.
    pub cell_len: f64,
    /// Particle indices per cell.
    pub cells: Vec<Vec<u32>>,
}

impl CellList {
    /// Build for interaction cutoff `cutoff` (cell edge ≥ cutoff).
    pub fn build(sys: &MdSystem, cutoff: f64) -> CellList {
        let dims = (sys.box_len / cutoff).floor().max(1.0) as usize;
        let cell_len = sys.box_len / dims as f64;
        let mut cells = vec![Vec::new(); dims * dims * dims];
        for (i, p) in sys.pos.iter().enumerate() {
            let c = Self::cell_of_pos(*p, sys.box_len, dims);
            cells[c].push(i as u32);
        }
        CellList {
            dims,
            cell_len,
            cells,
        }
    }

    /// Flat cell index of a position.
    pub fn cell_of_pos(p: [f64; 3], box_len: f64, dims: usize) -> usize {
        let mut idx = [0usize; 3];
        for k in 0..3 {
            let mut x = p[k] / box_len * dims as f64;
            // Wrap: positions may sit exactly on the upper boundary.
            if x < 0.0 {
                x += dims as f64;
            }
            idx[k] = (x as usize).min(dims - 1);
        }
        (idx[0] * dims + idx[1]) * dims + idx[2]
    }

    /// The 27 (self + neighbours) cell indices around cell `c`, with
    /// periodic wrap. Fewer when dims < 3 (cells coincide).
    pub fn neighbourhood(&self, c: usize) -> Vec<usize> {
        let d = self.dims;
        let z = c % d;
        let y = (c / d) % d;
        let x = c / (d * d);
        let mut out = Vec::with_capacity(27);
        for dx in [-1i64, 0, 1] {
            for dy in [-1i64, 0, 1] {
                for dz in [-1i64, 0, 1] {
                    let nx = ((x as i64 + dx).rem_euclid(d as i64)) as usize;
                    let ny = ((y as i64 + dy).rem_euclid(d as i64)) as usize;
                    let nz = ((z as i64 + dz).rem_euclid(d as i64)) as usize;
                    let idx = (nx * d + ny) * d + nz;
                    if !out.contains(&idx) {
                        out.push(idx);
                    }
                }
            }
        }
        out
    }

    /// All (i, j) candidate pairs with i < j within the cutoff
    /// neighbourhood structure (used by the brute-force cross-check).
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for c in 0..self.cells.len() {
            for &nc in &self.neighbourhood(c) {
                for &i in &self.cells[c] {
                    for &j in &self.cells[nc] {
                        if i < j {
                            out.push((i, j));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of non-empty cells.
    pub fn occupied(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::system::{MdSystem, SystemSpec};

    fn sys() -> MdSystem {
        MdSystem::build(&SystemSpec::tiny())
    }

    #[test]
    fn every_particle_is_in_exactly_one_cell() {
        let s = sys();
        let cl = CellList::build(&s, 2.0);
        let total: usize = cl.cells.iter().map(Vec::len).sum();
        assert_eq!(total, s.len());
        let mut seen = vec![false; s.len()];
        for cell in &cl.cells {
            for &i in cell {
                assert!(!seen[i as usize], "particle {i} in two cells");
                seen[i as usize] = true;
            }
        }
    }

    #[test]
    fn cell_list_finds_all_cutoff_pairs() {
        // Every pair within the cutoff must appear among candidate pairs —
        // the property-based guarantee the forces rely on.
        let s = sys();
        let cutoff = 2.0;
        let cl = CellList::build(&s, cutoff);
        let cands: std::collections::HashSet<(u32, u32)> =
            cl.candidate_pairs().into_iter().collect();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                let d = s.min_image(s.pos[i], s.pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < cutoff * cutoff {
                    assert!(
                        cands.contains(&(i as u32, j as u32)),
                        "pair ({i},{j}) at r={} missed",
                        r2.sqrt()
                    );
                }
            }
        }
    }

    #[test]
    fn neighbourhood_has_27_cells_when_big_enough() {
        let s = MdSystem::build(&SystemSpec::default());
        let cl = CellList::build(&s, 2.0);
        assert!(cl.dims >= 3);
        assert_eq!(cl.neighbourhood(0).len(), 27);
    }

    #[test]
    fn small_box_degenerates_gracefully() {
        let mut spec = SystemSpec::tiny();
        spec.box_len = 3.0;
        spec.waters = 20;
        spec.protein_beads = 0;
        spec.ion_pairs = 0;
        let s = MdSystem::build(&spec);
        let cl = CellList::build(&s, 2.0);
        assert_eq!(cl.dims, 1);
        assert_eq!(cl.neighbourhood(0), vec![0]);
    }

    #[test]
    fn occupancy_reasonable() {
        let s = MdSystem::build(&SystemSpec::default());
        let cl = CellList::build(&s, 2.0);
        assert!(cl.occupied() > cl.cells.len() / 4);
    }
}
