//! The HTVM mapping of the MD force pass: cells → SGTs.
//!
//! Each SGT computes the forces of the particles in one (or a few) cells;
//! because forces are accumulated per particle (no Newton-halving), tasks
//! write disjoint slots and the result is bitwise equal to the sequential
//! pass. The fine-grain/coarse-grain comparison of E15 contrasts SGT-per-
//! cell against SGT-per-big-chunk under a skewed particle distribution
//! (the protein cluster makes central cells much denser).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htvm_core::{Htvm, HtvmConfig, PoolStats, Topology};
use parking_lot::Mutex;

use super::cell_list::CellList;
use super::forces::{force_on_particle, ForceParams};
use super::integrate::Thermostat;
use super::system::MdSystem;

/// Report of a parallel MD run.
#[derive(Debug, Clone)]
pub struct MdRunReport {
    /// Steps executed.
    pub steps: usize,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
    /// Final potential energy.
    pub potential: f64,
    /// SGTs spawned over the run.
    pub sgt_count: u64,
    /// Pool counters at the end of the run (per-worker and per-domain
    /// executed/steal breakdown).
    pub pool: PoolStats,
    /// Final system state.
    pub system: MdSystem,
}

/// Granularity of the parallel force pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdGrain {
    /// One SGT per occupied cell (fine grain — the paper's pitch).
    PerCell,
    /// `chunks` equal particle-range SGTs (coarse LGT-style decomposition).
    Chunks(usize),
}

/// Run `steps` of MD with the force pass parallelized on HTVM (no
/// locality grouping — see [`run_md_parallel_topo`]).
pub fn run_md_parallel(
    sys: MdSystem,
    params: &ForceParams,
    dt: f64,
    steps: usize,
    workers: usize,
    grain: MdGrain,
    thermostat: Thermostat,
) -> MdRunReport {
    run_md_parallel_topo(
        sys,
        params,
        dt,
        steps,
        Topology::flat(workers),
        grain,
        thermostat,
    )
}

/// Run `steps` of MD with the force pass parallelized on HTVM, on a pool
/// with an explicit locality-domain topology (E17 sweeps this).
pub fn run_md_parallel_topo(
    mut sys: MdSystem,
    params: &ForceParams,
    dt: f64,
    steps: usize,
    topology: Topology,
    grain: MdGrain,
    thermostat: Thermostat,
) -> MdRunReport {
    let htvm = Htvm::new(HtvmConfig {
        topology,
        lgt_memory_words: 64,
        frame_slots: 8,
    });
    let start = std::time::Instant::now();
    let sgt_count = Arc::new(AtomicU64::new(0));
    // Prime forces.
    let cl = CellList::build(&sys, params.cutoff);
    let mut potential = parallel_force_pass(&htvm, &mut sys, &cl, params, grain, &sgt_count);
    for _ in 0..steps {
        let n = sys.len();
        for i in 0..n {
            let m = sys.species[i].mass();
            for k in 0..3 {
                sys.vel[i][k] += 0.5 * dt * sys.force[i][k] / m;
                sys.pos[i][k] += dt * sys.vel[i][k];
            }
        }
        sys.wrap_positions();
        let cl = CellList::build(&sys, params.cutoff);
        potential = parallel_force_pass(&htvm, &mut sys, &cl, params, grain, &sgt_count);
        for i in 0..n {
            let m = sys.species[i].mass();
            for k in 0..3 {
                sys.vel[i][k] += 0.5 * dt * sys.force[i][k] / m;
            }
        }
        if let Thermostat::Berendsen { target, tau } = thermostat {
            let t = sys.temperature();
            if t > 1e-12 {
                let lambda = (1.0 + (1.0 / tau.max(1.0)) * (target / t - 1.0))
                    .max(0.0)
                    .sqrt();
                for v in sys.vel.iter_mut() {
                    for x in v.iter_mut() {
                        *x *= lambda;
                    }
                }
            }
        }
    }
    MdRunReport {
        steps,
        elapsed: start.elapsed(),
        potential,
        sgt_count: sgt_count.load(Ordering::Relaxed),
        pool: htvm.pool_stats(),
        system: sys,
    }
}

/// Per-stripe accumulator: one `(force, potential)` slot per particle in
/// the stripe, mutex-guarded for interior mutability (stripes are owned by
/// single tasks, so the locks are uncontended).
type StripeSlots = Mutex<Vec<([f64; 3], f64)>>;

/// One parallel force pass; returns total potential energy.
fn parallel_force_pass(
    htvm: &Htvm,
    sys: &mut MdSystem,
    cl: &CellList,
    params: &ForceParams,
    grain: MdGrain,
    sgt_count: &Arc<AtomicU64>,
) -> f64 {
    let snapshot = Arc::new(sys.clone());
    let cl = Arc::new(cl.clone());
    let params = Arc::new(params.clone());
    let n = sys.len();
    // Output slots: one per particle — disjoint writes, no locks needed,
    // but Rust needs interior mutability; a mutex per stripe keeps it safe
    // and uncontended (tasks own whole stripes).
    let out: Arc<Vec<StripeSlots>> = Arc::new(match grain {
        MdGrain::PerCell => cl
            .cells
            .iter()
            .map(|c| Mutex::new(vec![([0.0; 3], 0.0); c.len()]))
            .collect(),
        MdGrain::Chunks(chunks) => {
            let per = n.div_ceil(chunks.max(1));
            (0..chunks.max(1))
                .map(|c| {
                    let lo = (c * per).min(n);
                    let hi = ((c + 1) * per).min(n);
                    Mutex::new(vec![([0.0; 3], 0.0); hi - lo])
                })
                .collect()
        }
    });

    let lgt = htvm.lgt({
        let snapshot = snapshot.clone();
        let cl2 = cl.clone();
        let params = params.clone();
        let out = out.clone();
        let sgt_count = sgt_count.clone();
        move |lgt| match grain {
            MdGrain::PerCell => {
                for (ci, cell) in cl2.cells.iter().enumerate() {
                    if cell.is_empty() {
                        continue;
                    }
                    let snapshot = snapshot.clone();
                    let cl3 = cl2.clone();
                    let params = params.clone();
                    let out = out.clone();
                    let cell = cell.clone();
                    sgt_count.fetch_add(1, Ordering::Relaxed);
                    lgt.spawn_sgt(move |_| {
                        let mut local = vec![([0.0; 3], 0.0); cell.len()];
                        for (slot, &i) in cell.iter().enumerate() {
                            local[slot] = force_on_particle(&snapshot, &cl3, &params, i as usize);
                        }
                        *out[ci].lock() = local;
                    });
                }
            }
            MdGrain::Chunks(chunks) => {
                let chunks = chunks.max(1);
                let n = snapshot.len();
                let per = n.div_ceil(chunks);
                for c in 0..chunks {
                    let lo = (c * per).min(n);
                    let hi = ((c + 1) * per).min(n);
                    if lo >= hi {
                        continue;
                    }
                    let snapshot = snapshot.clone();
                    let cl3 = cl2.clone();
                    let params = params.clone();
                    let out = out.clone();
                    sgt_count.fetch_add(1, Ordering::Relaxed);
                    lgt.spawn_sgt(move |_| {
                        let mut local = vec![([0.0; 3], 0.0); hi - lo];
                        for (slot, i) in (lo..hi).enumerate() {
                            local[slot] = force_on_particle(&snapshot, &cl3, &params, i);
                        }
                        *out[c].lock() = local;
                    });
                }
            }
        }
    });
    lgt.join();

    // Gather.
    let mut potential = 0.0;
    match grain {
        MdGrain::PerCell => {
            for (ci, cell) in cl.cells.iter().enumerate() {
                let local = out[ci].lock();
                for (slot, &i) in cell.iter().enumerate() {
                    sys.force[i as usize] = local[slot].0;
                    potential += local[slot].1;
                }
            }
        }
        MdGrain::Chunks(chunks) => {
            let per = n.div_ceil(chunks.max(1));
            for c in 0..chunks.max(1) {
                let lo = (c * per).min(n);
                let hi = ((c + 1) * per).min(n);
                let local = out[c].lock();
                for (slot, i) in (lo..hi).enumerate() {
                    sys.force[i] = local[slot].0;
                    potential += local[slot].1;
                }
            }
        }
    }
    potential
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::integrate::run_md;
    use crate::md::system::SystemSpec;

    #[test]
    fn parallel_forces_match_sequential_bitwise() {
        let spec = SystemSpec::tiny();
        let params = ForceParams::default();
        let mut seq = MdSystem::build(&spec);
        run_md(&mut seq, &params, 0.001, 20, Thermostat::None);
        let par = run_md_parallel(
            MdSystem::build(&spec),
            &params,
            0.001,
            20,
            4,
            MdGrain::PerCell,
            Thermostat::None,
        );
        assert_eq!(par.system, seq, "per-cell parallel MD must be bit-faithful");
    }

    #[test]
    fn chunked_grain_also_matches() {
        let spec = SystemSpec::tiny();
        let params = ForceParams::default();
        let mut seq = MdSystem::build(&spec);
        run_md(&mut seq, &params, 0.001, 10, Thermostat::None);
        let par = run_md_parallel(
            MdSystem::build(&spec),
            &params,
            0.001,
            10,
            4,
            MdGrain::Chunks(4),
            Thermostat::None,
        );
        assert_eq!(par.system, seq);
    }

    #[test]
    fn fine_grain_spawns_more_tasks() {
        let spec = SystemSpec::tiny();
        let params = ForceParams::default();
        let fine = run_md_parallel(
            MdSystem::build(&spec),
            &params,
            0.001,
            5,
            2,
            MdGrain::PerCell,
            Thermostat::None,
        );
        let coarse = run_md_parallel(
            MdSystem::build(&spec),
            &params,
            0.001,
            5,
            2,
            MdGrain::Chunks(2),
            Thermostat::None,
        );
        assert!(fine.sgt_count > coarse.sgt_count);
    }

    #[test]
    fn thermostatted_parallel_run_stays_finite() {
        let spec = SystemSpec::tiny();
        let par = run_md_parallel(
            MdSystem::build(&spec),
            &ForceParams::default(),
            0.002,
            30,
            4,
            MdGrain::PerCell,
            Thermostat::Berendsen {
                target: 1.0,
                tau: 10.0,
            },
        );
        assert!(par.potential.is_finite());
        for v in &par.system.vel {
            for x in v {
                assert!(x.is_finite());
            }
        }
    }
}
