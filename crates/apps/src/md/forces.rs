//! Lennard-Jones + cutoff Coulomb force kernels.
//!
//! Forces are computed *per particle*: each particle accumulates over its
//! neighbour cells in a fixed order. That doubles the pair work compared
//! with Newton's-third-law halving, but makes the parallel version
//! write-conflict-free and **bitwise identical** to the sequential one —
//! the property E15 verifies. (The paper's fine-grain MD motivates exactly
//! this style: many small independent tasks.)

use super::cell_list::CellList;
use super::system::{MdSystem, Species};

/// Force-field parameters.
#[derive(Debug, Clone)]
pub struct ForceParams {
    /// Interaction cutoff distance.
    pub cutoff: f64,
    /// Coulomb prefactor (k·q·q / r²).
    pub coulomb_k: f64,
    /// Softening added to r² (avoids singularities from close passes).
    pub softening: f64,
}

impl Default for ForceParams {
    fn default() -> Self {
        Self {
            cutoff: 2.5,
            coulomb_k: 8.0,
            softening: 1e-3,
        }
    }
}

/// Lorentz–Berthelot mixing.
#[inline]
fn mix(a: Species, b: Species) -> (f64, f64) {
    let sigma = 0.5 * (a.sigma() + b.sigma());
    let eps = (a.epsilon() * b.epsilon()).sqrt();
    (sigma, eps)
}

/// Force on particle `i` from particle `j` (vector pointing toward i's
/// acceleration direction) and the pair's potential energy.
#[inline]
pub fn pair_force(
    sys: &MdSystem,
    params: &ForceParams,
    i: usize,
    j: usize,
) -> Option<([f64; 3], f64)> {
    let d = sys.min_image(sys.pos[i], sys.pos[j]);
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + params.softening;
    if r2 >= params.cutoff * params.cutoff {
        return None;
    }
    let (sigma, eps) = mix(sys.species[i], sys.species[j]);
    let inv_r2 = 1.0 / r2;
    let s2 = sigma * sigma * inv_r2;
    let s6 = s2 * s2 * s2;
    let s12 = s6 * s6;
    // LJ: U = 4ε(s12 − s6); F·r̂/r = 24ε(2·s12 − s6)/r².
    let lj_scalar = 24.0 * eps * (2.0 * s12 - s6) * inv_r2;
    let mut energy = 4.0 * eps * (s12 - s6);
    // Coulomb (truncated): U = k·qi·qj/r; F = U/r².
    let qq = sys.species[i].charge() * sys.species[j].charge();
    let mut coul_scalar = 0.0;
    if qq != 0.0 {
        let r = r2.sqrt();
        let u_c = params.coulomb_k * qq / r;
        energy += u_c;
        coul_scalar = u_c * inv_r2;
    }
    let scalar = lj_scalar + coul_scalar;
    Some(([scalar * d[0], scalar * d[1], scalar * d[2]], energy))
}

/// Accumulate the total force on particle `i` over its neighbourhood,
/// returning `(force, potential_share)` where the potential share is half
/// of each pair energy (so the sum over particles is the total potential).
pub fn force_on_particle(
    sys: &MdSystem,
    cl: &CellList,
    params: &ForceParams,
    i: usize,
) -> ([f64; 3], f64) {
    let c = CellList::cell_of_pos(sys.pos[i], sys.box_len, cl.dims);
    let mut f = [0.0f64; 3];
    let mut e = 0.0f64;
    for nc in cl.neighbourhood(c) {
        for &j in &cl.cells[nc] {
            let j = j as usize;
            if j == i {
                continue;
            }
            if let Some((df, de)) = pair_force(sys, params, i, j) {
                f[0] += df[0];
                f[1] += df[1];
                f[2] += df[2];
                e += 0.5 * de;
            }
        }
    }
    (f, e)
}

/// Sequential force pass: fills `sys.force` and returns total potential.
pub fn compute_forces(sys: &mut MdSystem, cl: &CellList, params: &ForceParams) -> f64 {
    let mut potential = 0.0;
    let snapshot = sys.clone();
    for i in 0..sys.len() {
        let (f, e) = force_on_particle(&snapshot, cl, params, i);
        sys.force[i] = f;
        potential += e;
    }
    potential
}

/// Brute-force O(n²) reference (tests only — no cell list).
pub fn compute_forces_bruteforce(sys: &mut MdSystem, params: &ForceParams) -> f64 {
    let snapshot = sys.clone();
    let mut potential = 0.0;
    for i in 0..sys.len() {
        let mut f = [0.0f64; 3];
        for j in 0..sys.len() {
            if i == j {
                continue;
            }
            if let Some((df, de)) = pair_force(&snapshot, params, i, j) {
                f[0] += df[0];
                f[1] += df[1];
                f[2] += df[2];
                potential += 0.5 * de;
            }
        }
        sys.force[i] = f;
    }
    potential
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::system::{MdSystem, SystemSpec};

    fn sys() -> MdSystem {
        MdSystem::build(&SystemSpec::tiny())
    }

    #[test]
    fn cell_list_forces_match_bruteforce() {
        let params = ForceParams::default();
        let mut a = sys();
        let cl = CellList::build(&a, params.cutoff);
        let ea = compute_forces(&mut a, &cl, &params);
        let mut b = sys();
        let eb = compute_forces_bruteforce(&mut b, &params);
        // Same pairs, same per-particle iteration produces nearly identical
        // sums (order within the neighbourhood differs from brute force, so
        // allow float-roundoff tolerance).
        assert!(
            (ea - eb).abs() / eb.abs().max(1.0) < 1e-9,
            "potential {ea} vs {eb}"
        );
        for i in 0..a.len() {
            for k in 0..3 {
                assert!(
                    (a.force[i][k] - b.force[i][k]).abs() < 1e-6,
                    "force mismatch at particle {i} axis {k}"
                );
            }
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        // Newton's third law holds pairwise, so the net force vanishes.
        let params = ForceParams::default();
        let mut s = sys();
        let cl = CellList::build(&s, params.cutoff);
        compute_forces(&mut s, &cl, &params);
        let mut net = [0.0f64; 3];
        for f in &s.force {
            for k in 0..3 {
                net[k] += f[k];
            }
        }
        for (k, axis) in net.iter().enumerate() {
            assert!(axis.abs() < 1e-6, "net force axis {k}: {axis}");
        }
    }

    #[test]
    fn close_lj_pair_repels() {
        let mut s = sys();
        // Move particles 0 and 1 close together.
        s.pos[0] = [4.0, 4.0, 4.0];
        s.pos[1] = [4.0 + 0.8, 4.0, 4.0];
        let params = ForceParams::default();
        let (f, _) = pair_force(&s, &params, 0, 1).unwrap();
        // d = pos0 − pos1 = −0.8·x̂; under repulsion the force on 0 points
        // along d (away from 1): negative x.
        assert!(f[0] < 0.0, "close pair must repel: {f:?}");
    }

    #[test]
    fn opposite_charges_attract_at_moderate_range() {
        let mut s = sys();
        let (na, cl_ion) = {
            let na = s.species.iter().position(|&x| x == Species::Na).unwrap();
            let cl = s.species.iter().position(|&x| x == Species::Cl).unwrap();
            (na, cl)
        };
        s.pos[na] = [4.0, 4.0, 4.0];
        s.pos[cl_ion] = [4.0 + 2.0, 4.0, 4.0]; // outside LJ well dominance
        let params = ForceParams::default();
        let (f, e) = pair_force(&s, &params, na, cl_ion).unwrap();
        assert!(e < 0.0, "opposite charges: negative energy, got {e}");
        // Attraction: force on Na points toward Cl (+x).
        assert!(f[0] > 0.0, "Na must be pulled toward Cl: {f:?}");
    }

    #[test]
    fn beyond_cutoff_is_none() {
        let mut s = sys();
        s.pos[0] = [0.5, 0.5, 0.5];
        s.pos[1] = [4.0, 4.0, 4.0];
        let params = ForceParams::default();
        assert!(pair_force(&s, &params, 0, 1).is_none());
    }
}
