//! Criterion bench for the lock-free scheduling spine
//! (`htvm_core::deque`) against the mutex-shim baseline
//! (`crossbeam::deque`): owner push+pop, thief steal, injector publish
//! and batched drain — the four queue ops the native pool's spawn/steal
//! hot path is made of. The `e5c_queue_ops` report table measures the
//! same ops with the same pairing; this bench is the
//! criterion-harnessed twin for quick interactive runs.

use criterion::{criterion_group, criterion_main, Criterion};
use htvm_core::deque as lf;

const BURST: u64 = 256;

fn bench_deque_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque_ops");

    g.bench_function("push_pop_burst/mutex", |b| {
        let w = crossbeam::deque::Worker::new_lifo();
        b.iter(|| {
            for i in 0..BURST {
                w.push(i);
            }
            while w.pop().is_some() {}
        })
    });
    g.bench_function("push_pop_burst/lockfree", |b| {
        let w = lf::Worker::new_lifo();
        b.iter(|| {
            for i in 0..BURST {
                w.push(i);
            }
            while w.pop().is_some() {}
        })
    });

    g.bench_function("steal_drain/mutex", |b| {
        let w = crossbeam::deque::Worker::new_lifo();
        let s = w.stealer();
        b.iter(|| {
            for i in 0..BURST {
                w.push(i);
            }
            while s.steal().success().is_some() {}
        })
    });
    g.bench_function("steal_drain/lockfree", |b| {
        let w = lf::Worker::new_lifo();
        let s = w.stealer();
        b.iter(|| {
            for i in 0..BURST {
                w.push(i);
            }
            loop {
                match s.steal() {
                    lf::Steal::Success(_) => {}
                    lf::Steal::Retry => {}
                    lf::Steal::Empty => break,
                }
            }
        })
    });

    g.bench_function("injector_push_drain/mutex", |b| {
        let inj = crossbeam::deque::Injector::new();
        b.iter(|| {
            for i in 0..BURST {
                inj.push(i);
            }
            while inj.steal().success().is_some() {}
        })
    });
    g.bench_function("injector_push_drain/lockfree", |b| {
        let inj = lf::Injector::new();
        b.iter(|| {
            for i in 0..BURST {
                inj.push(i);
            }
            while inj.steal().success().is_some() {}
        })
    });

    // Batched publish + batched drain into a thief deque — the
    // `spawn_batch_in` → `find_work` pickup path.
    g.bench_function("injector_batch_cycle/mutex", |b| {
        let inj = crossbeam::deque::Injector::new();
        let dest = crossbeam::deque::Worker::new_lifo();
        b.iter(|| {
            for i in 0..BURST {
                inj.push(i);
            }
            while inj.steal_batch_and_pop(&dest).success().is_some() {
                while dest.pop().is_some() {}
            }
        })
    });
    g.bench_function("injector_batch_cycle/lockfree", |b| {
        let inj = lf::Injector::new();
        let dest = lf::Worker::new_lifo();
        b.iter(|| {
            inj.push_batch((0..BURST).collect());
            while inj.steal_batch_and_pop(&dest).success().is_some() {
                while dest.pop().is_some() {}
            }
        })
    });

    g.finish();
}

/// Short sampling: these run on small shared CI hosts; the authoritative
/// comparison table is `e5c_queue_ops` in the report binaries.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_deque_ops
);
criterion_main!(benches);
