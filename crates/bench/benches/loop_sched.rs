//! Criterion bench for E6/E9/E10/E12: adaptation machinery throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htvm_adapt::load::{simulate_load, LoadPolicy, LoadSimConfig};
use htvm_adapt::locality::{producer_consumer_trace, replay, LocalityCosts, LocalityPolicy};
use htvm_adapt::loop_sched::{evaluate_schedule, CostModel, IterationCosts, ScheduleKind};

fn bench_loop_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_loop_sched");
    let costs = IterationCosts::Random.generate(2_000, 100, 42);
    for kind in [
        ScheduleKind::StaticBlock,
        ScheduleKind::SelfSched(1),
        ScheduleKind::Guided,
        ScheduleKind::Factoring,
        ScheduleKind::Affinity,
    ] {
        g.bench_with_input(
            BenchmarkId::new("policy", kind.name()),
            &kind,
            |b, &kind| b.iter(|| evaluate_schedule(kind, &costs, 16, &CostModel::default())),
        );
    }
    g.finish();
}

fn bench_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_load_adaptation");
    for policy in LoadPolicy::PORTFOLIO {
        g.bench_with_input(
            BenchmarkId::new("policy", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    simulate_load(
                        policy,
                        &LoadSimConfig {
                            threads: 256,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_locality(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_locality");
    let trace = producer_consumer_trace(8, 64, 50, 0.3, 3);
    for policy in LocalityPolicy::PORTFOLIO {
        g.bench_with_input(
            BenchmarkId::new("policy", policy.name()),
            &policy,
            |b, &policy| b.iter(|| replay(policy, LocalityCosts::default(), &trace)),
        );
    }
    g.finish();
}

/// Short sampling: these benches run on small shared CI hosts; the
/// simulated-cycle tables (the actual experiment results) come from the
/// report binaries, so wall-clock here only needs to be indicative.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_loop_sched, bench_load, bench_locality
);
criterion_main!(benches);
