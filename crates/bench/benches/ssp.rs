//! Criterion bench for E7/E8: the SSP scheduler itself (compile-time cost
//! of level selection and modulo scheduling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htvm_ssp::ir::LoopNest;
use htvm_ssp::ssp::{schedule_all_levels, select_level, SspConfig};

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_ssp_scheduling");
    let nests = vec![
        LoopNest::matmul_like(32, 32, 32),
        LoopNest::stencil_like(32, 128),
        LoopNest::elementwise(64, 64),
    ];
    for nest in &nests {
        g.bench_with_input(
            BenchmarkId::new("select_level", &nest.name),
            nest,
            |b, nest| b.iter(|| select_level(nest, &SspConfig::default())),
        );
    }
    g.finish();
}

fn bench_all_levels(c: &mut Criterion) {
    let nest = LoopNest::matmul_like(64, 64, 64);
    c.bench_function("e7_schedule_all_levels_matmul64", |b| {
        b.iter(|| schedule_all_levels(&nest, &SspConfig::default()))
    });
}

/// Short sampling: these benches run on small shared CI hosts; the
/// simulated-cycle tables (the actual experiment results) come from the
/// report binaries, so wall-clock here only needs to be indicative.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_scheduling, bench_all_levels
);
criterion_main!(benches);
