//! Criterion bench for LITL-X kernel dispatch: the same lowered nest
//! executed point-at-a-time on the register tape (`Kernel::execute`),
//! run-at-a-time on the optimized tape (`CompiledKernel` with the `tape`
//! plan), and run-at-a-time through a monomorphized closure (`dot-accum`
//! / `fma-map`). Divide the per-iteration time by the point count in the
//! benchmark name to get per-point ns — the quantity the `e18` report
//! rows track at full scale.
//!
//! The `run_tape` matmul variant multiplies by a constant so the body
//! stays off the monomorphized shapes (5 body instructions): it does one
//! extra multiply per point versus the `compiled` variant, which is noise
//! next to the dispatch overhead being measured.

use criterion::{criterion_group, criterion_main, Criterion};
use htvm_core::SharedRegion;
use litlx::lang::{compile, lower_forall, parse, CompiledKernel, Expr, LoweredForall, Stmt, Value};

const N: usize = 24;

/// Lower the first `forall` of `main` with literal bounds.
fn lower_src(src: &str, bindings: &[(&str, Value)]) -> LoweredForall {
    let p = parse(src).unwrap();
    let main = p.get_fn("main").unwrap();
    let Stmt::Forall {
        var,
        from,
        to,
        body,
        ..
    } = main
        .body
        .iter()
        .find(|s| matches!(s, Stmt::Forall { .. }))
        .unwrap()
    else {
        unreachable!()
    };
    let resolve = |name: &str| -> Option<Value> {
        bindings
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
    };
    let f = |e: &Expr| match e {
        Expr::Num(n) => *n as i64,
        _ => panic!("bench bounds must be literal"),
    };
    lower_forall(var, f(from), f(to), body, &resolve).unwrap()
}

fn matmul_src(scale: bool) -> String {
    let rhs = if scale {
        "a[i * 24 + k] * b[k * 24 + j] * 2"
    } else {
        "a[i * 24 + k] * b[k * 24 + j]"
    };
    format!(
        "fn main() {{ forall i in 0..24 {{ forall j in 0..24 {{ for k in 0..24 {{
            c[i * 24 + j] += {rhs};
        }} }} }} }}"
    )
}

fn matmul_bindings() -> Vec<(&'static str, Value)> {
    let data: Vec<f64> = (0..N * N).map(|q| (q % 7) as f64 * 0.25).collect();
    vec![
        ("a", Value::Arr(SharedRegion::from_f64(&data))),
        ("b", Value::Arr(SharedRegion::from_f64(&data))),
        ("c", Value::Arr(SharedRegion::new(N * N))),
    ]
}

/// Sequentially drive a compiled kernel over the whole nest, one
/// innermost run per (outer…) prefix — what one SSP group does.
fn run_all(c: &CompiledKernel, trips: &[u64]) {
    let depth = trips.len();
    let combos: u64 = trips[..depth - 1].iter().product();
    let n_last = trips[depth - 1] as i64;
    let mut prefix = vec![0i64; depth - 1];
    for w in 0..combos {
        let mut rem = w;
        for (k, &n) in trips[..depth - 1].iter().enumerate().rev() {
            prefix[k] = (rem % n) as i64;
            rem /= n;
        }
        c.execute_run(&prefix, 0, n_last).expect("proven kernel");
    }
}

fn bench_kernel_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_dispatch");

    // Point-at-a-time tape interpretation — the pre-compile hot path.
    {
        let lowered = lower_src(&matmul_src(false), &matmul_bindings());
        let kernel = lowered.kernel;
        let n = N as i64;
        g.bench_function("matmul_13824pts/point_tape", move |b| {
            b.iter(|| {
                let mut idx = [0i64; 3];
                for i in 0..n {
                    idx[0] = i;
                    for j in 0..n {
                        idx[1] = j;
                        for k in 0..n {
                            idx[2] = k;
                            kernel.execute(&idx).expect("in bounds");
                        }
                    }
                }
            })
        });
    }

    // Run-at-a-time on the optimized tape (monomorphization declined).
    {
        let lowered = lower_src(&matmul_src(true), &matmul_bindings());
        let compiled = compile(&lowered.kernel, &lowered.nest.trip_counts);
        assert_eq!(
            compiled.info().plan,
            "tape",
            "scaled matmul must stay generic"
        );
        let trips = lowered.nest.trip_counts.clone();
        g.bench_function("matmul_13824pts/run_tape", move |b| {
            b.iter(|| run_all(&compiled, &trips))
        });
    }

    // Run-at-a-time through the monomorphized dot-accum closure.
    {
        let lowered = lower_src(&matmul_src(false), &matmul_bindings());
        let compiled = compile(&lowered.kernel, &lowered.nest.trip_counts);
        assert_eq!(compiled.info().plan, "dot-accum");
        let trips = lowered.nest.trip_counts.clone();
        g.bench_function("matmul_13824pts/compiled", move |b| {
            b.iter(|| run_all(&compiled, &trips))
        });
    }

    // The elementwise pair: tape interpretation vs the fma-map closure.
    let elt_src = "fn main() { forall i in 0..4096 { d[i] = a[i] * b[i]; } }";
    let elt_bindings = || {
        let data: Vec<f64> = (0..4096).map(|q| (q % 13) as f64 * 0.5).collect();
        vec![
            ("a", Value::Arr(SharedRegion::from_f64(&data))),
            ("b", Value::Arr(SharedRegion::from_f64(&data))),
            ("d", Value::Arr(SharedRegion::new(4096))),
        ]
    };
    {
        let lowered = lower_src(elt_src, &elt_bindings());
        let kernel = lowered.kernel;
        g.bench_function("elementwise_4096pts/point_tape", move |b| {
            b.iter(|| {
                let mut idx = [0i64; 1];
                for i in 0..4096 {
                    idx[0] = i;
                    kernel.execute(&idx).expect("in bounds");
                }
            })
        });
    }
    {
        let lowered = lower_src(elt_src, &elt_bindings());
        let compiled = compile(&lowered.kernel, &lowered.nest.trip_counts);
        assert_eq!(compiled.info().plan, "fma-map");
        g.bench_function("elementwise_4096pts/compiled", move |b| {
            b.iter(|| compiled.execute_run(&[], 0, 4096).expect("proven kernel"))
        });
    }

    g.finish();
}

/// Short sampling: these run on small shared CI hosts; the authoritative
/// comparison table is `e18` in the report binaries.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_kernel_dispatch
);
criterion_main!(benches);
