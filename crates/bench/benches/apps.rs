//! Criterion bench for E14/E15/E16: application kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htvm_apps::md::cell_list::CellList;
use htvm_apps::md::forces::{compute_forces, ForceParams};
use htvm_apps::md::system::{MdSystem, SystemSpec};
use htvm_apps::neuro::network::{Network, NetworkSpec};
use htvm_apps::neuro::sim::NetworkSim;

fn bench_neuro_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_neuro");
    for (label, spec) in [
        ("small", NetworkSpec::tiny()),
        (
            "medium",
            NetworkSpec {
                regions: 4,
                neurons_per_region: 64,
                ..Default::default()
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::new("step", label), &spec, |b, spec| {
            let mut sim = NetworkSim::new(Network::build(spec.clone()));
            b.iter(|| sim.step())
        });
    }
    g.finish();
}

fn bench_md_forces(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_md_force_pass");
    for (label, spec) in [
        ("tiny", SystemSpec::tiny()),
        ("default", SystemSpec::default()),
    ] {
        g.bench_with_input(BenchmarkId::new("cells", label), &spec, |b, spec| {
            let mut sys = MdSystem::build(spec);
            let params = ForceParams::default();
            let cl = CellList::build(&sys, params.cutoff);
            b.iter(|| compute_forces(&mut sys, &cl, &params))
        });
    }
    g.finish();
}

fn bench_litlx(c: &mut Criterion) {
    use litlx::lang::{parse, Interp};
    let src = r#"
        fn main() {
            let n = 500;
            let a = array(n);
            forall i in 0..n { a[i] = i * 2; }
            print(sum(a));
        }
    "#;
    let prog = parse(src).unwrap();
    c.bench_function("e16_litlx_forall_500", |b| {
        let interp = Interp::new(4);
        b.iter(|| interp.run(&prog).unwrap())
    });
    c.bench_function("e16_litlx_parse", |b| b.iter(|| parse(src).unwrap()));
}

/// Short sampling: these benches run on small shared CI hosts; the
/// simulated-cycle tables (the actual experiment results) come from the
/// report binaries, so wall-clock here only needs to be indicative.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_neuro_step, bench_md_forces, bench_litlx
);
criterion_main!(benches);
