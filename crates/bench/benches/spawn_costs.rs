//! Criterion bench for E5: native spawn costs of the three grains, plus
//! the pool-level spawn→first-execution round trip that prices the
//! park/wake protocol (the parked-pool p50 and the idle-cost watch are
//! reported by the `e5b_native_spawn` table, where park waits can be
//! excluded from the measurement).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use htvm_core::{Htvm, HtvmConfig, Pool, Topology};

fn bench_native_grains(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_native_grain_costs");

    // Pool floor: one external spawn to first execution (the first
    // iteration pays a futex wake for a parked worker; later iterations
    // usually catch the worker still spinning — together they price the
    // spawn path end to end).
    g.bench_function("pool_spawn_to_exec", |b| {
        let pool = Pool::with_topology(Topology::flat(2));
        let seq = Arc::new(AtomicU64::new(0));
        b.iter(|| {
            let expect = seq.load(Ordering::Acquire) + 1;
            let s2 = seq.clone();
            pool.spawn(move |_| {
                s2.store(expect, Ordering::Release);
            });
            // Yield, don't spin: on a single-CPU host a hard spin burns
            // the spawner's whole timeslice before the worker can run,
            // measuring the scheduler quantum instead of the wake.
            while seq.load(Ordering::Acquire) != expect {
                std::thread::yield_now();
            }
        })
    });

    // LGT: spawn + join a whole large-grain thread.
    g.bench_function("lgt_spawn_join", |b| {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(2)));
        b.iter(|| {
            htvm.lgt(|_| {}).join();
        })
    });

    // SGT: spawn + drain 100 small-grain threads from one LGT.
    g.bench_function("sgt_spawn_100", |b| {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(2)));
        b.iter(|| {
            let h = htvm.lgt(|lgt| {
                for _ in 0..100 {
                    lgt.spawn_sgt(|_| {});
                }
            });
            h.join();
        })
    });

    // TGT: run a 100-fiber dataflow graph inline (no pool round trip).
    g.bench_function("tgt_graph_100", |b| {
        b.iter(|| {
            let mut g = htvm_core::TgtGraph::new(4);
            let mut prev = None;
            for _ in 0..100 {
                let f = g.fiber(|c| {
                    c.frame.fetch_add(0, 1);
                });
                if let Some(p) = prev {
                    g.depends(f, p);
                }
                prev = Some(f);
            }
            g.run().get(0)
        })
    });

    g.finish();
}

/// Short sampling: these benches run on small shared CI hosts; the
/// simulated-cycle tables (the actual experiment results) come from the
/// report binaries, so wall-clock here only needs to be indicative.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_native_grains
);
criterion_main!(benches);
