//! Criterion bench for E5: spawn costs, with the native pool's
//! spawn→steal path and the simulated machine's grain costs reported as
//! *separate* benchmark groups — so the `e5c_queue_ops` table (which
//! decomposes the native path into queue ops) and the criterion numbers
//! measure the same code, and a simulator regression can never be
//! mistaken for a pool regression (or vice versa).
//!
//! Groups:
//! * `e5_pool_spawn_steal` — the native pool end to end: external
//!   spawn→first-execution, the batched domain publish, and a
//!   worker-side spawn fan-out that forces sibling steals. This is the
//!   code path the lock-free scheduling spine carries.
//! * `e5_runtime_grains` — the HTVM runtime layers above the pool
//!   (LGT spawn+join, SGT fan-out, TGT fiber graph).
//! * `e5_sim_grains` — the simulated machine's spawn+join round trip
//!   (the `SpawnPing` kernel the E5 report table prices in cycles),
//!   here priced in host wall-clock for trend-watching only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use htvm_core::simrt::{SignalAlloc, SpawnPing};
use htvm_core::{DomainId, Htvm, HtvmConfig, Pool, Topology};
use htvm_sim::{Engine, MachineConfig, Placement, SpawnClass};

fn bench_pool_spawn_steal(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_pool_spawn_steal");

    // Pool floor: one external spawn to first execution (the first
    // iteration pays a futex wake for a parked worker; later iterations
    // usually catch the worker still spinning — together they price the
    // spawn path end to end).
    g.bench_function("pool_spawn_to_exec", |b| {
        let pool = Pool::with_topology(Topology::flat(2));
        let seq = Arc::new(AtomicU64::new(0));
        b.iter(|| {
            let expect = seq.load(Ordering::Acquire) + 1;
            let s2 = seq.clone();
            pool.spawn(move |_| {
                s2.store(expect, Ordering::Release);
            });
            // Yield, don't spin: on a single-CPU host a hard spin burns
            // the spawner's whole timeslice before the worker can run,
            // measuring the scheduler quantum instead of the wake.
            while seq.load(Ordering::Acquire) != expect {
                std::thread::yield_now();
            }
        })
    });

    // Batched affinity publish: 64 jobs into 2 domains through the
    // segmented injectors (one claim per segment), drained by steals.
    g.bench_function("pool_spawn_batch_in_64", |b| {
        let pool = Pool::with_topology(Topology::domains(2, 1));
        let done = Arc::new(AtomicU64::new(0));
        b.iter(|| {
            let before = done.load(Ordering::Acquire);
            pool.spawn_batch_in((0..64u64).map(|i| {
                let done = done.clone();
                (DomainId(i % 2), move |_: &htvm_core::WorkerCtx| {
                    done.fetch_add(1, Ordering::AcqRel);
                })
            }));
            while done.load(Ordering::Acquire) < before + 64 {
                std::thread::yield_now();
            }
        })
    });

    // Worker-side fan-out: one root job pushes 64 children onto its own
    // deque; the sibling must steal to participate — spawn→steal, the
    // op pairing e5c prices at the queue level.
    g.bench_function("pool_spawn_fanout_steal_64", |b| {
        let pool = Pool::with_topology(Topology::domains(1, 2));
        let done = Arc::new(AtomicU64::new(0));
        b.iter(|| {
            let before = done.load(Ordering::Acquire);
            let d = done.clone();
            pool.spawn(move |ctx| {
                for _ in 0..64 {
                    let d = d.clone();
                    ctx.spawn(move |_| {
                        d.fetch_add(1, Ordering::AcqRel);
                    });
                }
            });
            while done.load(Ordering::Acquire) < before + 64 {
                std::thread::yield_now();
            }
        })
    });

    g.finish();
}

fn bench_runtime_grains(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_runtime_grains");

    // LGT: spawn + join a whole large-grain thread.
    g.bench_function("lgt_spawn_join", |b| {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(2)));
        b.iter(|| {
            htvm.lgt(|_| {}).join();
        })
    });

    // SGT: spawn + drain 100 small-grain threads from one LGT.
    g.bench_function("sgt_spawn_100", |b| {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(2)));
        b.iter(|| {
            let h = htvm.lgt(|lgt| {
                for _ in 0..100 {
                    lgt.spawn_sgt(|_| {});
                }
            });
            h.join();
        })
    });

    // TGT: run a 100-fiber dataflow graph inline (no pool round trip).
    g.bench_function("tgt_graph_100", |b| {
        b.iter(|| {
            let mut g = htvm_core::TgtGraph::new(4);
            let mut prev = None;
            for _ in 0..100 {
                let f = g.fiber(|c| {
                    c.frame.fetch_add(0, 1);
                });
                if let Some(p) = prev {
                    g.depends(f, p);
                }
                prev = Some(f);
            }
            g.run().get(0)
        })
    });

    g.finish();
}

fn bench_sim_grains(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_sim_grains");
    for (class, name) in [
        (SpawnClass::Tgt, "sim_tgt_ping_20"),
        (SpawnClass::Sgt, "sim_sgt_ping_20"),
        (SpawnClass::Lgt, "sim_lgt_ping_20"),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut e = Engine::new(MachineConfig::small());
                let mut sigs = SignalAlloc::new();
                let sig = sigs.fresh();
                e.spawn(
                    Placement::Unit(0, 0),
                    SpawnClass::Lgt,
                    Box::new(SpawnPing::new(class, 20, sig)),
                );
                criterion::black_box(e.run().now)
            })
        });
    }
    g.finish();
}

/// Short sampling: these benches run on small shared CI hosts; the
/// simulated-cycle tables (the actual experiment results) come from the
/// report binaries, so wall-clock here only needs to be indicative.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_pool_spawn_steal, bench_runtime_grains, bench_sim_grains
);
criterion_main!(benches);
