//! Criterion bench for E1/E2/E4: simulated-machine kernels (the measured
//! quantity is simulator wall time; simulated-cycle tables come from the
//! `e1_latency_tolerance`/`e2_parcels`/`e4_percolation` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htvm_sim::{strided_kernel, Engine, GAddr, MachineConfig, Placement, SpawnClass};

fn bench_latency_tolerance(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_latency_tolerance");
    for hw in [1u16, 4, 16] {
        g.bench_with_input(BenchmarkId::new("hw_threads", hw), &hw, |b, &hw| {
            b.iter(|| {
                let mut cfg = MachineConfig::small();
                cfg.units_per_node = 1;
                cfg.hw_threads_per_unit = hw;
                let mut e = Engine::new(cfg);
                for k in 0..hw as u64 {
                    let kern = strided_kernel(100, 10, GAddr::dram(0, k << 20), 64, 8);
                    e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(kern));
                }
                e.run().now
            })
        });
    }
    g.finish();
}

fn bench_parcels(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_parcels");
    for elems in [64u64, 1024] {
        g.bench_with_input(BenchmarkId::new("elems", elems), &elems, |b, &elems| {
            b.iter(|| {
                litlx::parcel::compare_strategies(
                    || {
                        let mut cfg = MachineConfig::small();
                        cfg.nodes = 2;
                        Engine::new(cfg)
                    },
                    elems,
                    2,
                )
            })
        });
    }
    g.finish();
}

fn bench_percolation(c: &mut Criterion) {
    use htvm_sim::SignalId;
    use litlx::percolate::{PercolateKernel, PercolationPlan};
    let mut g = c.benchmark_group("e4_percolation");
    for depth in [0u64, 4] {
        g.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut cfg = MachineConfig::small();
                cfg.hw_threads_per_unit = 16;
                let mut e = Engine::new(cfg);
                let plan = PercolationPlan {
                    src_base: GAddr::dram(0, 0),
                    tile_bytes: 4096,
                    tiles: 32,
                    compute_per_tile: 120,
                    depth,
                };
                e.spawn(
                    Placement::Unit(0, 0),
                    SpawnClass::Sgt,
                    Box::new(PercolateKernel::new(plan, SignalId(1))),
                );
                e.run().now
            })
        });
    }
    g.finish();
}

/// Short sampling: these benches run on small shared CI hosts; the
/// simulated-cycle tables (the actual experiment results) come from the
/// report binaries, so wall-clock here only needs to be indicative.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_latency_tolerance, bench_parcels, bench_percolation
);
criterion_main!(benches);
