//! Report plumbing shared by the `eNN_*` binaries: print tables to stdout
//! and, when asked, write a machine-readable JSON summary so future runs
//! can track the perf trajectory without scraping stdout.
//!
//! The JSON sink is selected by a `--json <path>` (or `--json=<path>`)
//! argument, with the `HTVM_BENCH_JSON` environment variable as fallback —
//! the binaries stay zero-dependency shells around the experiment
//! library.
//!
//! ```text
//! cargo run -p htvm-bench --release --bin e18_ssp_native -- --json e18.json
//! HTVM_BENCH_JSON=all.json cargo run -p htvm-bench --release --bin all
//! ```
//!
//! The summary is one object per experiment table (`id`, `columns`,
//! `rows`) plus the binary's invocation metadata.

use crate::table::Table;

/// Where the JSON summary should go, if anywhere.
///
/// Parsed from the process arguments (`--json <path>` / `--json=<path>`),
/// falling back to the `HTVM_BENCH_JSON` environment variable.
pub fn json_sink_from_env() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(p) = args.next() {
                return Some(p);
            }
        } else if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    std::env::var("HTVM_BENCH_JSON")
        .ok()
        .filter(|s| !s.is_empty())
}

/// The full JSON summary document for a set of tables.
pub fn summary_json(id: &str, tables: &[&Table]) -> String {
    let body = tables
        .iter()
        .map(|t| t.to_json())
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"experiment\":\"{id}\",\"tables\":[{body}]}}\n")
}

/// Print every table and honour the JSON sink. `id` is the experiment
/// binary's identity (e.g. `"e18_ssp_native"`).
pub fn emit(id: &str, tables: &[&Table]) {
    for t in tables {
        t.print();
    }
    if let Some(path) = json_sink_from_env() {
        match std::fs::write(&path, summary_json(id, tables)) {
            Ok(()) => eprintln!("wrote JSON summary to {path}"),
            Err(e) => eprintln!("failed to write JSON summary to {path}: {e}"),
        }
    }
}

/// Experiment tables that make up the pool's perf baseline: the spawn/
/// steal cost pyramid (E5 grain costs, E5b park/wake latency, E5c queue
/// ops) plus the topology, SSP, and elastic-placement end-to-end tables
/// (E17, E18, E20) that sit on top of it.
pub fn is_pool_baseline_table(t: &Table) -> bool {
    ["E5 ", "E5b", "E5c", "E17", "E18", "E20"]
        .iter()
        .any(|p| t.title.starts_with(p))
}

/// Where the pool baseline lives: the workspace root, regardless of the
/// invocation's working directory (a cwd-relative write would silently
/// strand the baseline wherever the binary happened to run). Resolved
/// from this crate's manifest dir at compile time; if that checkout path
/// no longer exists (an installed/copied binary), fall back to cwd.
/// Public so the trajectory guard reads the same file this module writes.
pub fn pool_baseline_path() -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    if root.is_dir() {
        root.join("BENCH_pool.json")
    } else {
        std::path::PathBuf::from("BENCH_pool.json")
    }
}

/// Write `BENCH_pool.json` — the machine-readable perf baseline future
/// PRs diff against. Filters `tables` down to the pool-trajectory set
/// ([`is_pool_baseline_table`]) and records the scale label so quick
/// and full baselines are never compared to each other by accident.
pub fn write_pool_baseline(scale: &str, tables: &[&Table]) {
    let picked: Vec<&Table> = tables
        .iter()
        .copied()
        .filter(|t| is_pool_baseline_table(t))
        .collect();
    let body = picked
        .iter()
        .map(|t| t.to_json())
        .collect::<Vec<_>>()
        .join(",");
    let doc =
        format!("{{\"experiment\":\"pool_baseline\",\"scale\":\"{scale}\",\"tables\":[{body}]}}\n");
    let path = pool_baseline_path();
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!("wrote pool perf baseline to {}", path.display()),
        Err(e) => eprintln!(
            "failed to write pool perf baseline to {}: {e}",
            path.display()
        ),
    }
}

/// Experiment tables that make up the serving-layer baseline: the E19
/// open-loop latency/conservation table and the E21 chaos table (clean
/// vs faulted serving under supervision).
pub fn is_serving_baseline_table(t: &Table) -> bool {
    ["E19", "E21"].iter().any(|p| t.title.starts_with(p))
}

/// Where the serving baseline lives (same resolution rules as
/// [`pool_baseline_path`]): the workspace root, falling back to cwd.
/// Public so the trajectory guard reads the same file this module writes.
pub fn serving_baseline_path() -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    if root.is_dir() {
        root.join("BENCH_serving.json")
    } else {
        std::path::PathBuf::from("BENCH_serving.json")
    }
}

/// Write `BENCH_serving.json` — the serving-layer latency/conservation
/// baseline (the E19 and E21 tables) future PRs diff against,
/// scale-labelled like the pool baseline.
///
/// Merges rather than clobbers: a single-experiment binary (`e19_serving`
/// or `e21_chaos`) refreshes its own table while same-scale tables it did
/// not re-run are carried over from the committed document, so the two
/// bins never erase each other's baseline.
pub fn write_serving_baseline(scale: &str, tables: &[&Table]) {
    let picked: Vec<&Table> = tables
        .iter()
        .copied()
        .filter(|t| is_serving_baseline_table(t))
        .collect();
    // Carry over committed same-scale tables the caller did not re-run.
    let path = serving_baseline_path();
    let carried: Vec<Table> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|doc| crate::trajectory::parse_baseline(&doc).ok())
        .filter(|b| b.scale == scale)
        .map(|b| {
            b.tables
                .into_iter()
                .filter(|t| {
                    is_serving_baseline_table(t) && !picked.iter().any(|p| p.title == t.title)
                })
                .collect()
        })
        .unwrap_or_default();
    let mut all: Vec<&Table> = carried.iter().chain(picked.iter().copied()).collect();
    all.sort_by(|a, b| a.title.cmp(&b.title));
    let body = all
        .iter()
        .map(|t| t.to_json())
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        "{{\"experiment\":\"serving_baseline\",\"scale\":\"{scale}\",\"tables\":[{body}]}}\n"
    );
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!("wrote serving baseline to {}", path.display()),
        Err(e) => eprintln!(
            "failed to write serving baseline to {}: {e}",
            path.display()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_wraps_tables() {
        let mut t = Table::new("E0 demo", &["k", "v"]);
        t.push(&["a", "1"]);
        let s = summary_json("e0", &[&t]);
        assert!(s.contains("\"experiment\":\"e0\""));
        assert!(s.contains("\"id\":\"E0 demo\""));
        assert!(s.contains("[\"a\",\"1\"]"));
    }

    #[test]
    fn json_escapes_delimiters() {
        let mut t = Table::new("quote \" and \\ back", &["c"]);
        t.push(&["line\nbreak"]);
        let j = t.to_json();
        assert!(j.contains("quote \\\" and \\\\ back"));
        assert!(j.contains("line\\nbreak"));
    }
}
