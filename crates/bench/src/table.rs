//! Minimal aligned-ASCII table rendering for experiment reports.

/// A simple table: header + rows, rendered with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (experiment id + name).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringify everything).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable items.
    pub fn push<I: std::fmt::Display>(&mut self, cells: &[I]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Find a cell by row predicate and column name (tests).
    pub fn cell(&self, col: &str, pred: impl Fn(&[String]) -> bool) -> Option<&str> {
        let ci = self.header.iter().position(|h| h == col)?;
        self.rows
            .iter()
            .find(|r| pred(r))
            .and_then(|r| r.get(ci))
            .map(String::as_str)
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// Parse a column as f64 (ignoring unparsable cells).
    pub fn column_f64(&self, name: &str) -> Vec<f64> {
        let Some(ci) = self.col(name) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r.get(ci).and_then(|c| c.parse().ok()))
            .collect()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(c.len());
                } else {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                line.push_str(&format!("{c:>w$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.max(4)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render as a JSON object `{"id", "columns", "rows"}` — the
    /// machine-readable form the `--json` report flag emits so perf
    /// trajectories can be tracked across runs without scraping stdout.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":{},", json_str(&self.title)));
        out.push_str("\"columns\":[");
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| json_str(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("],\"rows\":[");
        out.push_str(
            &self
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "[{}]",
                        r.iter().map(|c| json_str(c)).collect::<Vec<_>>().join(",")
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("]}");
        out
    }
}

/// JSON string literal with the escapes the table contents can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(&["a", "1"]);
        t.push(&["long-name", "22"]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        assert_eq!(r.lines().count(), 5);
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new("demo", &["k", "v"]);
        t.push(&["x", "10"]);
        t.push(&["y", "20"]);
        assert_eq!(t.cell("v", |r| r[0] == "y"), Some("20"));
        assert_eq!(t.cell("v", |r| r[0] == "z"), None);
        assert_eq!(t.column_f64("v"), vec![10.0, 20.0]);
    }
}
