//! # htvm-bench — the experiment harness
//!
//! One module per experiment of the reproduction (see DESIGN.md §5 for the
//! index and EXPERIMENTS.md for recorded results). Every experiment is a
//! library function returning a [`table::Table`], so that
//!
//! * the `src/bin/eNN_*.rs` binaries print the full-scale table the paper
//!   reproduction reports,
//! * integration tests re-run the same code at reduced scale and assert
//!   the *shape* of the result (who wins, where the crossover falls),
//! * criterion benches time the hot kernels.
//!
//! Run everything with `cargo run -p htvm-bench --release --bin all`.

pub mod experiments;
pub mod table;

pub use table::Table;
