//! # htvm-bench — the experiment harness
//!
//! One module per experiment of the reproduction (see DESIGN.md §5 for the
//! index and EXPERIMENTS.md for recorded results). Every experiment is a
//! library function returning a [`table::Table`], so that
//!
//! * the `src/bin/eNN_*.rs` binaries print the full-scale table the paper
//!   reproduction reports,
//! * integration tests re-run the same code at reduced scale and assert
//!   the *shape* of the result (who wins, where the crossover falls),
//! * criterion benches time the hot kernels.
//!
//! Run everything with `cargo run -p htvm-bench --release --bin all`.
//!
//! # Example
//!
//! Experiments return [`Table`]s, so tests (and downstream tooling) can
//! assert on cells instead of scraping stdout:
//!
//! ```
//! use htvm_bench::Table;
//!
//! let mut t = Table::new("demo: steal traffic", &["topology", "remote_ratio"]);
//! t.push(&["flat", "1.000"]);
//! t.push(&["2-dom", "0.412"]);
//! assert_eq!(t.cell("remote_ratio", |r| r[0] == "2-dom"), Some("0.412"));
//! assert_eq!(t.column_f64("remote_ratio"), vec![1.0, 0.412]);
//! println!("{}", t.render());
//! ```

pub mod experiments;
pub mod report;
pub mod table;
pub mod trajectory;

pub use table::Table;
