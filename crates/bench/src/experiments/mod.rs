//! Experiment implementations (DESIGN.md §5; results in EXPERIMENTS.md).
//!
//! Each `eNN_*` function builds the workload, runs every configuration of
//! its sweep, and returns a [`crate::Table`]. `Scale::Quick` shrinks the
//! sweep for integration tests; `Scale::Full` is what the report binaries
//! print.

pub mod ablations;
pub mod apps;
pub mod chaos;
pub mod domains;
pub mod elastic;
pub mod machine;
pub mod sched;
pub mod serving;
pub mod ssp_native;

pub use ablations::{
    a1_switch_cost, a2_chunk_size, a3_percolation_grid, a4_grain_crossover, run_all_ablations,
};
pub use apps::{e14_neocortex, e15_md, e16_litlx};
pub use chaos::e21_chaos;
pub use domains::e17_domains;
pub use elastic::e20_elastic;
pub use machine::{
    e1_latency_tolerance, e2_parcels, e3_futures, e4_percolation, e5_spawn_costs, e5b_native_spawn,
    e5c_queue_ops,
};
pub use sched::{
    e10_locality, e11_latency_adapt, e12_hints, e13_monitor, e6_loop_sched, e7_ssp, e8_ssp_mt,
    e9_load_balance,
};
pub use serving::e19_serving;
pub use ssp_native::e18_ssp_native;

/// Sweep size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweep for tests (seconds).
    Quick,
    /// Full sweep for the report binaries.
    Full,
}

impl Scale {
    /// Pick `q` under Quick, `f` under Full.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// All experiments in order, for the `all` binary.
pub fn run_all(scale: Scale) -> Vec<crate::Table> {
    vec![
        e1_latency_tolerance(scale),
        e2_parcels(scale),
        e3_futures(scale),
        e4_percolation(scale),
        e5_spawn_costs(scale),
        e5b_native_spawn(scale),
        e5c_queue_ops(scale),
        e6_loop_sched(scale),
        e7_ssp(scale),
        e8_ssp_mt(scale),
        e9_load_balance(scale),
        e10_locality(scale),
        e11_latency_adapt(scale),
        e12_hints(scale),
        e13_monitor(scale),
        e14_neocortex(scale),
        e15_md(scale),
        e16_litlx(scale),
        e17_domains(scale),
        e18_ssp_native(scale),
        e19_serving(scale),
        e20_elastic(scale),
        e21_chaos(scale),
    ]
}
