//! E20: elastic topology — adaptive bubbles vs static placement.
//!
//! The serving front-end runs the same skewed multi-tenant load three
//! ways on a 2-domain pool:
//!
//! * **static-mismatch** — every tenant's bubble is pinned to domain 0
//!   and never moves: the worst-case placement the paper's §2 dynamic
//!   load adaptation exists to escape. Domain 1's workers only ever see
//!   work by stealing it across the boundary, so the remote-steal ratio
//!   is pinned high.
//! * **static-spread** — tenants are round-robined over the domains at
//!   registration and frozen there: the best *static* answer when the
//!   offered load is known in advance.
//! * **adaptive** — the same mismatched starting pins as
//!   `static-mismatch`, but the BubbleSched-style autopilot
//!   (`htvm_serve::Autopilot`) closes the loop: it reads the pool's
//!   steal/queue/occupancy signals each tick, migrates or bursts the
//!   tenant bubbles, and grows/retires workers against the pool's
//!   headroom slots. On a multicore host the adaptive run recovers most
//!   of the spread configuration's remote-ratio advantage without being
//!   told the answer; after the drain it hands the grown workers back
//!   (the `grows`/`retires` columns).
//!
//! Wall-clock is reported for all three, but the structural columns
//! (remote ratio, per-domain executed counters, decision counts) are
//! the experiment's real output — on a single-CPU host the wall times
//! collapse together while the placement story stays visible.

use std::sync::Arc;
use std::time::{Duration, Instant};

use htvm_adapt::BubblePolicyCfg;
use htvm_core::{DomainId, Pool, Topology};
use htvm_serve::{AutopilotConfig, NativeParcel, Outcome, Server, ServerConfig, TenantConfig};

use super::Scale;
use crate::table::{f2, f3, Table};

/// Join a per-domain counter vector into a compact `a/b/c` cell.
fn by_domain(v: &[u64]) -> String {
    v.iter().map(u64::to_string).collect::<Vec<_>>().join("/")
}

struct RunOutcome {
    wall: Duration,
    completed: u64,
}

/// Drive the skewed load: `tenants` each submit `reqs` spin-work
/// requests in interleaved rounds, then the server drains.
fn drive(
    server: &Server,
    tenants: &[htvm_serve::TenantHandle],
    reqs: usize,
    spin: u64,
) -> RunOutcome {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(reqs * tenants.len());
    for _ in 0..reqs {
        for t in tenants {
            handles.push(
                t.submit(NativeParcel::new(move |_| {
                    let mut acc = 0u64;
                    for i in 0..spin {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    std::hint::black_box(acc);
                }))
                .expect("admission queue sized for the offered load"),
            );
        }
    }
    let mut completed = 0u64;
    for h in handles {
        if h.wait() == Outcome::Completed {
            completed += 1;
        }
    }
    assert!(
        server.wait_idle(Duration::from_secs(60)),
        "elastic load never drained"
    );
    RunOutcome {
        wall: started.elapsed(),
        completed,
    }
}

/// E20 — adaptive bubble placement + elastic workers vs the two static
/// placements, on one skewed multi-tenant load.
pub fn e20_elastic(scale: Scale) -> Table {
    let mut t = Table::new(
        "E20 elastic topology: adaptive bubbles vs static placement",
        &[
            "config",
            "wall_ms",
            "completed",
            "exec_by_dom",
            "remote_ratio",
            "dom_imbalance",
            "grows",
            "retires",
            "moves m/b/g",
            "active_end",
        ],
    );
    let workers = scale.pick(4usize, 8);
    let topology = Topology::domains(2, workers / 2);
    let reqs = scale.pick(150usize, 1_200);
    let spin = scale.pick(2_000u64, 8_000);
    let num_tenants = 3usize;
    let server_cfg = ServerConfig {
        max_in_flight: workers * 8,
        default_queue_capacity: reqs.max(64),
        max_queued_total: reqs * num_tenants + 64,
        ..ServerConfig::default()
    };

    // The two static placements: every bubble frozen where it started.
    for (name, mismatch) in [("static-mismatch", true), ("static-spread", false)] {
        let pool = Arc::new(Pool::with_topology(topology.clone()));
        let server = Server::on_pool(pool.clone(), server_cfg.clone());
        let tenants: Vec<_> = (0..num_tenants)
            .map(|k| {
                server.register_tenant(TenantConfig {
                    weight: 1,
                    queue_capacity: None,
                    home: Some(DomainId(if mismatch { 0 } else { (k % 2) as u64 })),
                    retry: None,
                })
            })
            .collect();
        let run = drive(&server, &tenants, reqs, spin);
        let stats = pool.stats();
        t.row(&[
            name.to_string(),
            f2(run.wall.as_secs_f64() * 1e3),
            run.completed.to_string(),
            by_domain(&stats.executed_by_domain()),
            f3(stats.remote_steal_ratio()),
            f3(stats.imbalance_by_domain()),
            stats.grows.to_string(),
            stats.retires.to_string(),
            "-".to_string(),
            pool.active_workers().to_string(),
        ]);
        server.shutdown();
    }

    // Adaptive: the same mismatched start, plus the autopilot and one
    // vacant headroom slot per domain for it to grow into.
    {
        let pool = Arc::new(Pool::with_elastic(topology.clone(), 1));
        let server = Server::on_pool(pool.clone(), server_cfg.clone());
        let tenants: Vec<_> = (0..num_tenants)
            .map(|_| {
                server.register_tenant(TenantConfig {
                    weight: 1,
                    queue_capacity: None,
                    home: Some(DomainId(0)),
                    retry: None,
                })
            })
            .collect();
        let pilot = server.autopilot(AutopilotConfig {
            interval: Duration::from_millis(1),
            policy: BubblePolicyCfg {
                min_steals: 8,
                cooldown_steps: 4,
                ..BubblePolicyCfg::default()
            },
        });
        let run = drive(&server, &tenants, reqs, spin);
        // Idle phase: give the controller a bounded window to hand the
        // grown workers back before reading the final counters.
        let grown = pool.stats().grows;
        let idle_deadline = Instant::now() + Duration::from_secs(10);
        while grown > 0 && pool.stats().retires == 0 && Instant::now() < idle_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        pilot.stop();
        let stats = pool.stats();
        let p = pilot.stats();
        t.row(&[
            "adaptive".to_string(),
            f2(run.wall.as_secs_f64() * 1e3),
            run.completed.to_string(),
            by_domain(&stats.executed_by_domain()),
            f3(stats.remote_steal_ratio()),
            f3(stats.imbalance_by_domain()),
            stats.grows.to_string(),
            stats.retires.to_string(),
            format!("{}/{}/{}", p.migrates, p.bursts, p.gangs),
            pool.active_workers().to_string(),
        ]);
        server.shutdown();
    }
    t
}
