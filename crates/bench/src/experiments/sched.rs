//! E6–E13: scheduling, adaptation, hints and monitoring experiments.

use htvm_adapt::continuous::{ContinuousCompiler, PartialSchedule};
use htvm_adapt::hints::{HintCategory, HintTarget, StructuredHint};
use htvm_adapt::latency::{AdaptiveConcurrency, ContentionModel, HillClimber};
use htvm_adapt::load::{simulate_load, LoadPolicy, LoadSimConfig};
use htvm_adapt::locality::{
    producer_consumer_trace, read_mostly_trace, replay, LocalityCosts, LocalityPolicy,
};
use htvm_adapt::loop_sched::{evaluate_schedule, CostModel, IterationCosts, ScheduleKind};
use htvm_adapt::monitor::{Monitor, MonitorConfig};
use htvm_ssp::ir::LoopNest;
use htvm_ssp::partition::ThreadedSspModel;
use htvm_ssp::ssp::{
    schedule_all_levels, schedule_level, select_level, sequential_cycles, SspConfig,
};

use super::Scale;
use crate::table::{f2, f3, Table};

/// E6 — static vs dynamic loop scheduling across cost distributions
/// (paper §3.3).
pub fn e6_loop_sched(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6 loop scheduling: makespan / imbalance / chunks by policy × distribution",
        &["distribution", "policy", "makespan", "imbalance", "chunks"],
    );
    let n = scale.pick(400, 2_000);
    let workers = 16;
    let model = CostModel::default();
    for dist in IterationCosts::ALL {
        let costs = dist.generate(n, 100, 42);
        for kind in ScheduleKind::PORTFOLIO {
            let out = evaluate_schedule(kind, &costs, workers, &model);
            t.row(&[
                dist.name().to_string(),
                kind.name(),
                out.makespan.to_string(),
                f3(out.imbalance),
                out.chunks.to_string(),
            ]);
        }
    }
    t
}

/// E7 — SSP level choice vs innermost-only modulo scheduling (paper §3.3).
pub fn e7_ssp(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7 SSP: per-level schedules (II / stages / modelled cycles)",
        &[
            "nest", "level", "II", "stages", "slice", "cycles", "vs_seq", "best",
        ],
    );
    let d = scale.pick(8, 32) as u64;
    let nests = vec![
        LoopNest::matmul_like(d, d, d),
        LoopNest::stencil_like(d, 4 * d),
        LoopNest::elementwise(d, d),
    ];
    let cfg = SspConfig {
        reuse_window: 4,
        ..Default::default()
    };
    for nest in &nests {
        let seq = sequential_cycles(nest);
        let best = select_level(nest, &cfg).map(|p| p.level);
        for plan in schedule_all_levels(nest, &cfg) {
            t.row(&[
                nest.name.clone(),
                plan.level.to_string(),
                plan.schedule.ii.to_string(),
                plan.schedule.stages.to_string(),
                plan.slice_len.to_string(),
                plan.total_cycles.to_string(),
                f2(seq as f64 / plan.total_cycles as f64),
                if Some(plan.level) == best { "*" } else { "" }.to_string(),
            ]);
        }
    }
    t
}

/// E8 — SSP partitioned into threads: speedup vs thread count (paper §3.3's
/// proposed ILP+TLP combination).
pub fn e8_ssp_mt(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8 SSP→threads: modelled speedup vs thread count",
        &[
            "nest",
            "threads",
            "per_thread_cycles",
            "total_cycles",
            "speedup",
        ],
    );
    let d = scale.pick(32u64, 128);
    let nest = LoopNest::matmul_like(d, 16, 16);
    let cfg = SspConfig::default();
    let plan = schedule_level(&nest, 0, &cfg).expect("outermost level pipelinable");
    let inner: u64 = nest.trip_counts[1..].iter().product();
    let threads: Vec<u64> = scale.pick(vec![1, 2, 4, 8], vec![1, 2, 4, 8, 16, 32, 64]);
    for &th in &threads {
        let m = ThreadedSspModel::evaluate(&plan, 1, d, inner, 2, th, 120);
        t.row(&[
            nest.name.clone(),
            th.to_string(),
            m.per_thread_cycles.to_string(),
            m.total_cycles.to_string(),
            f2(m.speedup),
        ]);
    }
    // Wavefront-limited contrast: stencil time level.
    let snest = LoopNest::stencil_like(d, 64);
    let splan = schedule_level(&snest, 0, &cfg).expect("time level pipelinable");
    for &th in &threads {
        let m = ThreadedSspModel::evaluate(&splan, 1, d, 64, 2, th, 120);
        t.row(&[
            format!("{} (wavefront)", snest.name),
            th.to_string(),
            m.per_thread_cycles.to_string(),
            m.total_cycles.to_string(),
            f2(m.speedup),
        ]);
    }
    t
}

/// E9 — dynamic load adaptation: migration policies under skew and phase
/// change (paper §2).
pub fn e9_load_balance(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9 load adaptation: makespan / migrations by policy",
        &["workload", "policy", "makespan", "migrations", "imbalance"],
    );
    let threads = scale.pick(256, 1024);
    for (label, phase_change) in [("skewed", false), ("skew+phase-shift", true)] {
        let cfg = LoadSimConfig {
            threads,
            phase_change,
            ..Default::default()
        };
        for policy in LoadPolicy::PORTFOLIO {
            let r = simulate_load(policy, &cfg);
            t.row(&[
                label.to_string(),
                policy.name().to_string(),
                r.makespan.to_string(),
                r.migrations.to_string(),
                f3(r.imbalance),
            ]);
        }
    }
    t
}

/// E10 — locality adaptation: migration/replication vs fixed placement
/// (paper §2).
pub fn e10_locality(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10 locality adaptation: cycles / remote fraction by policy × trace",
        &[
            "trace",
            "policy",
            "cycles",
            "remote_frac",
            "migrations",
            "replications",
            "invalidations",
        ],
    );
    let blocks = scale.pick(32u64, 128);
    let run_len = scale.pick(30usize, 80);
    let traces = vec![
        (
            "producer-consumer",
            producer_consumer_trace(8, blocks, run_len, 0.3, 5),
        ),
        ("read-mostly", read_mostly_trace(8, blocks / 2, 8, 5)),
    ];
    for (label, trace) in &traces {
        for policy in LocalityPolicy::PORTFOLIO {
            let d = replay(policy, LocalityCosts::default(), trace);
            let total = (d.local_hits + d.remote_accesses).max(1);
            t.row(&[
                label.to_string(),
                policy.name().to_string(),
                d.cycles.to_string(),
                f3(d.remote_accesses as f64 / total as f64),
                d.migrations.to_string(),
                d.replications.to_string(),
                d.invalidations.to_string(),
            ]);
        }
    }
    t
}

/// E11 — latency adaptation: adaptive concurrency vs fixed settings while
/// DRAM latency drifts (paper §2).
///
/// Utilization comes from the cache-pressure contention model
/// ([`ContentionModel`]): more resident threads hide more latency but also
/// miss more (shared on-chip SRAM) and saturate DRAM bandwidth, so the
/// optimum concurrency is interior and moves with the latency — the thing
/// a fixed setting cannot track. Strategies compared: fixed settings, the
/// Little's-law target controller (latency-only — over-subscribes under
/// contention), and measurement-driven hill climbing; "adaptive" (the hill
/// climber) is the last row by contract with the shape tests.
pub fn e11_latency_adapt(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11 latency adaptation: mean utilization under latency drift",
        &["strategy", "mean_utilization", "final_concurrency"],
    );
    let model = ContentionModel::default();
    let max_c = 16;
    // Latency drift schedule: calm → congested → calm.
    let epochs: Vec<f64> = match scale {
        Scale::Quick => {
            let mut v = Vec::new();
            for (l, reps) in [(100.0, 6), (800.0, 8), (200.0, 6)] {
                v.extend(std::iter::repeat_n(l, reps));
            }
            v
        }
        Scale::Full => {
            let mut v = Vec::new();
            for &l in &[100.0, 200.0, 400.0, 800.0, 1200.0, 800.0, 400.0, 100.0] {
                for _ in 0..12 {
                    v.push(l);
                }
            }
            v
        }
    };
    // Fixed strategies.
    for fixed in [1u32, 4, 8, 16] {
        let mean: f64 = epochs
            .iter()
            .map(|&l| model.utilization(fixed, l))
            .sum::<f64>()
            / epochs.len() as f64;
        t.row(&[format!("fixed({fixed})"), f3(mean), fixed.to_string()]);
    }
    // Little's-law controller: targets c = latency/service, blind to the
    // bandwidth wall — the natural-but-wrong adaptation baseline.
    let mut ll = AdaptiveConcurrency::new(2, max_c, model.service, 0.5);
    let mut ll_sum = 0.0;
    for &l in &epochs {
        ll_sum += model.utilization(ll.concurrency, l);
        ll.epoch(l);
    }
    t.row(&[
        "littles-law".to_string(),
        f3(ll_sum / epochs.len() as f64),
        ll.concurrency.to_string(),
    ]);
    // Measurement-driven hill climbing (the paper's runtime adaptation).
    let mut hc = HillClimber::new(2, max_c);
    let mut hc_sum = 0.0;
    for &l in &epochs {
        let u = model.utilization(hc.concurrency, l);
        hc_sum += u;
        hc.epoch(u);
    }
    t.row(&[
        "adaptive".to_string(),
        f3(hc_sum / epochs.len() as f64),
        hc.concurrency.to_string(),
    ]);
    t
}

/// E12 — structured hints prune the optimization search (paper §4.1).
pub fn e12_hints(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12 structured hints: search cost vs outcome quality",
        &[
            "workload",
            "strategy",
            "trials",
            "search_cost",
            "final_makespan",
        ],
    );
    let n = scale.pick(400, 2_000);
    let cases = [
        (
            "decreasing",
            IterationCosts::Decreasing,
            "cost_trend",
            "monotonic",
        ),
        ("bimodal", IterationCosts::Bimodal, "cost_variance", "high"),
    ];
    for (label, dist, key, value) in cases {
        let costs = dist.generate(n, 100, 21);
        // Blind exhaustive.
        let mut blind = ContinuousCompiler::new();
        let b = blind.complete(
            &PartialSchedule::full(label),
            &costs,
            16,
            &CostModel::default(),
        );
        t.row(&[
            label.to_string(),
            "exhaustive".to_string(),
            b.trials.to_string(),
            b.search_cost.to_string(),
            b.makespan.to_string(),
        ]);
        // Hinted.
        let mut hinted = ContinuousCompiler::new();
        hinted.kb.add_hint(
            label,
            StructuredHint::new(
                HintCategory::ComputationPattern,
                HintTarget::AdaptiveCompiler,
                10,
                [(key.to_string(), value.to_string())],
            ),
        );
        let h = hinted.complete(
            &PartialSchedule::full(label),
            &costs,
            16,
            &CostModel::default(),
        );
        t.row(&[
            label.to_string(),
            "hinted".to_string(),
            h.trials.to_string(),
            h.search_cost.to_string(),
            h.makespan.to_string(),
        ]);
        // Default (no search): static block.
        let d = evaluate_schedule(ScheduleKind::StaticBlock, &costs, 16, &CostModel::default());
        t.row(&[
            label.to_string(),
            "default(static)".to_string(),
            "0".to_string(),
            "0".to_string(),
            d.makespan.to_string(),
        ]);
    }
    t
}

/// E13 — monitoring overhead vs sampling period (paper §4.2).
pub fn e13_monitor(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13 monitoring: overhead fraction vs sampling period",
        &["period", "samples", "overhead_cycles", "overhead_frac"],
    );
    let run_cycles = scale.pick(200_000u64, 2_000_000);
    let periods: Vec<u64> = scale.pick(
        vec![1_000, 10_000],
        vec![500, 1_000, 5_000, 10_000, 50_000, 100_000],
    );
    for &period in &periods {
        let m = Monitor::new(MonitorConfig {
            period,
            sample_cost: 200,
        });
        let c = m.metric("ops");
        let mut taken = 0u64;
        for now in (0..run_cycles).step_by(100) {
            c.add(7);
            if m.tick(now).is_some() {
                taken += 1;
            }
        }
        t.row(&[
            period.to_string(),
            taken.to_string(),
            m.overhead().to_string(),
            f3(m.overhead_fraction(run_cycles)),
        ]);
    }
    t
}
