//! E21: serving under chaos — the price of supervision.
//!
//! The same closed-loop request storm runs twice on the serving stack:
//! once clean, once with the fault plane armed at roughly a 1%
//! aggregate rate (body panics, worker kills, dispatcher kills — the
//! PR-10 supervision surface). Per config the table reports the
//! submit-to-execution latency distribution (p50/p99 µs), the wall
//! time of the whole storm, the failure/heal counters
//! (failed/retried/deaths/respawns/restarts), and the conservation
//! check: every request settles exactly once and every worker death is
//! healed by a respawn.
//!
//! The interesting read is the *ratio* between the two rows: fault
//! containment (catch_unwind per attempt, the settle gate, the
//! watchdogs) is always on, so the clean row prices the machinery and
//! the fault row prices actual recovery — retries, deque drains,
//! thread respawns, dispatcher restarts.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use htvm_core::{FaultKind, FaultPlan, FaultRule, Pool, Topology};
use htvm_serve::{NativeParcel, RetryPolicy, Server, ServerConfig, TenantConfig};

use super::Scale;
use crate::table::Table;

/// Percentile over a sorted slice (nearest-rank, closed index range).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The ~1% aggregate fault plan: mostly contained body panics, a
/// sprinkle of worker kills and dispatcher kills so supervision (not
/// just containment) is on the clock. Uncapped — the storm is the
/// steady state being priced, not a transient to ride out.
fn storm_plan() -> FaultPlan {
    FaultPlan::new()
        .rule(
            FaultRule::new("worker.body", FaultKind::Panic)
                .p(0.008)
                .seed(0x21C1),
        )
        .rule(
            FaultRule::new("worker.body", FaultKind::Kill)
                .p(0.005)
                .seed(0x21C2),
        )
        .rule(
            FaultRule::new("serve.dispatch", FaultKind::Kill)
                .p(0.002)
                .seed(0x21C3),
        )
}

/// E21 — chaos serving: clean vs ~1%-fault latency, wall time, and the
/// supervision ledger.
pub fn e21_chaos(scale: Scale) -> Table {
    let mut t = Table::new(
        "E21 chaos serving: clean vs 1%-fault",
        &[
            "config",
            "reqs",
            "completed",
            "failed",
            "retried",
            "deaths",
            "respawns",
            "restarts",
            "p50_us",
            "p99_us",
            "wall_ms",
            "check",
        ],
    );
    let reqs = scale.pick(400usize, 10_000);
    let workers = scale.pick(2usize, 4);

    for (name, plan) in [("clean", FaultPlan::new()), ("faults-1pct", storm_plan())] {
        let pool = Arc::new(Pool::with_fault_plan(
            Topology::domains(workers, 1),
            0,
            plan,
        ));
        let server = Server::on_pool(
            pool.clone(),
            ServerConfig {
                max_in_flight: 32,
                default_queue_capacity: 1024,
                max_queued_total: reqs + 1024,
                ..ServerConfig::default()
            },
        );
        // The same retry policy in both configs: the clean row prices
        // the machinery, not a different contract.
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_micros(100),
                ..RetryPolicy::attempts(3)
            }),
            ..TenantConfig::default()
        });
        let lat = Arc::new(Mutex::new(Vec::with_capacity(reqs)));
        let started = Instant::now();
        let handles: Vec<_> = (0..reqs)
            .map(|_| loop {
                let lat = lat.clone();
                let submitted_at = Instant::now();
                let parcel = NativeParcel::replayable(move |_| {
                    lat.lock()
                        .unwrap()
                        .push(submitted_at.elapsed().as_micros() as u64);
                    for i in 0..64u64 {
                        std::hint::black_box(i);
                    }
                });
                match tenant.submit(parcel) {
                    Ok(h) => break h,
                    Err(_) => std::thread::sleep(Duration::from_micros(200)),
                }
            })
            .collect();
        let mut hung = 0usize;
        for h in &handles {
            if h.wait_timeout(Duration::from_secs(60)).is_none() {
                hung += 1;
            }
        }
        let wall = started.elapsed();

        // Census heal: a death still respawning when the last request
        // settled gets a bounded grace period.
        let deadline = Instant::now() + Duration::from_secs(10);
        let stats = loop {
            let s = pool.stats();
            if s.worker_deaths == s.respawns || Instant::now() > deadline {
                break s;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let s = tenant.stats();
        let mut lats = lat.lock().unwrap().clone();
        lats.sort_unstable();
        let balanced =
            hung == 0 && s.settled() == s.submitted && stats.worker_deaths == stats.respawns;
        t.row(&[
            name.to_string(),
            reqs.to_string(),
            s.completed.to_string(),
            s.failed.to_string(),
            s.retried.to_string(),
            stats.worker_deaths.to_string(),
            stats.respawns.to_string(),
            server.dispatcher_restarts().to_string(),
            percentile_us(&lats, 0.50).to_string(),
            percentile_us(&lats, 0.99).to_string(),
            format!("{:.2}", wall.as_secs_f64() * 1e3),
            if balanced {
                "ok".to_string()
            } else {
                "LEAK".to_string()
            },
        ]);
        server.shutdown();
    }
    t
}
