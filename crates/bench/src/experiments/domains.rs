//! E17: locality-domain topology sweep on the native pool.
//!
//! The same two driver workloads as E14/E15 (neocortex step chain, MD
//! force pass) run on pools whose workers are grouped into 1-per-domain
//! (flat — the uniform work-stealing baseline, every steal remote), 2
//! domains, and 4 domains. The table reports wall-clock plus the
//! per-domain executed/steal counters the proximity-ordered protocol
//! exposes; on a multicore host the grouped topologies satisfy most
//! steals inside a domain, so their remote-steal ratio drops below the
//! flat baseline's (which is 1 by construction whenever anything was
//! stolen).
//!
//! The last column closes the adaptation loop of §4.1: the run's traffic
//! is fed to [`htvm_adapt::locality::affinity_hints`], and the table
//! shows the `home_domain` hint the knowledge base would carry into the
//! next run (applied via `Htvm::lgt_in`).

use htvm_adapt::locality::{affinity_hints, AffinityThresholds, DomainTraffic};
use htvm_adapt::{HintCategory, KnowledgeBase};
use htvm_apps::md::integrate::Thermostat;
use htvm_apps::md::parallel::{run_md_parallel_topo, MdGrain};
use htvm_apps::md::system::{MdSystem, SystemSpec};
use htvm_apps::md::ForceParams;
use htvm_apps::neuro::htvm_map::{run_parallel_topo, Mapping};
use htvm_apps::neuro::network::{Network, NetworkSpec};
use htvm_core::{PoolStats, Topology};

use super::Scale;
use crate::table::{f2, f3, Table};

/// Join a per-domain counter vector into a compact `a/b/c` cell.
fn by_domain(v: &[u64]) -> String {
    v.iter().map(u64::to_string).collect::<Vec<_>>().join("/")
}

/// One row's worth of pool observations plus the hint the traffic earns.
fn observe(stats: &PoolStats) -> (DomainTraffic, String) {
    let traffic = DomainTraffic::new(
        stats.executed_by_domain(),
        stats.local_steals_by_domain(),
        stats.remote_steals_by_domain(),
    );
    // Replay the §4.1 loop for this run: traffic → hints → knowledge base
    // → placement answer for the next run.
    let mut kb = KnowledgeBase::new();
    for h in affinity_hints(&traffic, &AffinityThresholds::default()) {
        kb.add_hint("e17", h);
    }
    let hint = match kb.home_domain("e17", traffic.num_domains()) {
        Some(d) => format!("home_domain={d}"),
        None => {
            if kb
                .hints_at("e17")
                .iter()
                .any(|h| h.category == HintCategory::MonitoringPriority)
            {
                "watch".to_string()
            } else {
                "-".to_string()
            }
        }
    };
    (traffic, hint)
}

/// E17 — flat vs grouped topologies on the two driver applications:
/// wall-clock, per-domain steal counters, remote-steal ratio, and the
/// affinity hint the observed traffic emits.
pub fn e17_domains(scale: Scale) -> Table {
    let mut t = Table::new(
        "E17 locality domains: steal traffic by topology × workload",
        &[
            "workload",
            "topology",
            "wall_ms",
            "sgts",
            "exec_by_dom",
            "local_by_dom",
            "remote_by_dom",
            "remote_ratio",
            "dom_imbalance",
            "hint",
            "parks",
            "wakes t/e",
        ],
    );
    let workers = scale.pick(4usize, 8);
    let mut topologies = vec![
        ("flat".to_string(), Topology::flat(workers)),
        ("2-dom".to_string(), Topology::domains(2, workers / 2)),
    ];
    if scale == Scale::Full {
        topologies.push(("4-dom".to_string(), Topology::domains(4, workers / 4)));
    }

    // Workload 1: the neocortex step chain (hierarchical mapping — the
    // dataflow chaining keeps each step's chunks on one worker's deque,
    // so every other worker's share arrives by stealing).
    let net_spec = match scale {
        Scale::Quick => NetworkSpec {
            regions: 8,
            neurons_per_region: 64,
            compartments: 8,
            ..Default::default()
        },
        Scale::Full => NetworkSpec {
            regions: 8,
            neurons_per_region: 256,
            compartments: 8,
            fanout: 24,
            ..Default::default()
        },
    };
    let net_steps = scale.pick(30u64, 120);
    for (name, topo) in &topologies {
        let r = run_parallel_topo(
            Network::build(net_spec.clone()),
            net_steps,
            topo.clone(),
            Mapping::Hierarchical,
        );
        let (traffic, hint) = observe(&r.pool);
        t.row(&[
            "neocortex".to_string(),
            name.clone(),
            f2(r.elapsed.as_secs_f64() * 1e3),
            r.sgt_count.to_string(),
            by_domain(&traffic.executed),
            by_domain(&traffic.local_steals),
            by_domain(&traffic.remote_steals),
            f3(r.pool.remote_steal_ratio()),
            f3(r.pool.imbalance_by_domain()),
            hint,
            r.pool.parks.to_string(),
            format!("{}/{}", r.pool.wakes_targeted, r.pool.wakes_escalated),
        ]);
    }

    // Workload 2: the MD force pass, one SGT per occupied cell (the
    // skewed protein cluster makes central cells denser — classic
    // imbalance that stealing has to fix).
    let md_spec = match scale {
        Scale::Quick => SystemSpec {
            box_len: 10.0,
            waters: 220,
            ion_pairs: 6,
            protein_beads: 20,
            ..Default::default()
        },
        Scale::Full => SystemSpec {
            box_len: 18.0,
            waters: 1_400,
            ion_pairs: 24,
            protein_beads: 60,
            ..Default::default()
        },
    };
    let md_steps = scale.pick(5usize, 30);
    let params = ForceParams::default();
    for (name, topo) in &topologies {
        let r = run_md_parallel_topo(
            MdSystem::build(&md_spec),
            &params,
            0.001,
            md_steps,
            topo.clone(),
            MdGrain::PerCell,
            Thermostat::None,
        );
        let (traffic, hint) = observe(&r.pool);
        t.row(&[
            "md".to_string(),
            name.clone(),
            f2(r.elapsed.as_secs_f64() * 1e3),
            r.sgt_count.to_string(),
            by_domain(&traffic.executed),
            by_domain(&traffic.local_steals),
            by_domain(&traffic.remote_steals),
            f3(r.pool.remote_steal_ratio()),
            f3(r.pool.imbalance_by_domain()),
            hint,
            r.pool.parks.to_string(),
            format!("{}/{}", r.pool.wakes_targeted, r.pool.wakes_escalated),
        ]);
    }
    t
}
