//! E18: naive vs SSP-partitioned execution on the native pool.
//!
//! The compile→schedule→execute pipeline of §3.3 end to end, measured on
//! wall clock: a LITL-X matmul-like `forall` nest runs through the naive
//! flat fan-out and through the SSP path (lower → level select →
//! partition → domain-placed groups) — the latter both point-at-a-time on
//! the tape interpreter (`ssp-interp`) and run-at-a-time on the compiled
//! kernel (`ssp-comp`, see `litlx::lang::compile`) — on a flat and on a
//! grouped topology. The MD force loop runs the same comparison at the `exec`
//! layer directly: a `[steps × cells]` nest whose step level carries the
//! position dependence, partitioned at the cell level, vs a per-cell
//! spawn-and-join per step.
//!
//! A third workload, `litlx-scan` (`a[i+1] = a[i] + i`), carries a true
//! dependence at the only `forall` level: the SSP path must execute it as
//! a `SyncSlot` wavefront (the `wavefronts` column) and reproduce the
//! sequential result, where the naive fan-out is a data race.
//!
//! Columns: wall time, SGT-grain spawns, `pipelined` (LITL-X rows: loops
//! that took the SSP path; MD rows: groups per wave), remote-steal ratio
//! and per-domain placement counters from [`PoolStats`], the modelled
//! cycle count of the path's schedule, and a `check` column proving both
//! paths computed the same thing (the acceptance bar for a scheduling
//! layer is correctness first).

use std::sync::Arc;

use htvm_apps::md::cell_list::CellList;
use htvm_apps::md::forces::{force_on_particle, ForceParams};
use htvm_apps::md::system::{MdSystem, SystemSpec};
use htvm_core::{Pool, PoolStats, SharedRegion, Topology};
use htvm_ssp::exec::{run_partitioned, PointBody};
use htvm_ssp::ir::{Dep, LoopNest, Op, OpKind};
use htvm_ssp::partition::PartitionPlan;
use htvm_ssp::ssp::{schedule_all_levels, select_level, sequential_cycles, SspConfig};
use litlx::lang::{parse, Interp, KernelMode, LoopStrategy};

use super::Scale;
use crate::table::{f2, f3, Table};

fn by_domain(v: &[u64]) -> String {
    v.iter().map(u64::to_string).collect::<Vec<_>>().join("/")
}

fn litlx_matmul_src(n: usize) -> String {
    format!(
        "fn main() {{
            let n = {n};
            let a = array(n * n); let b = array(n * n); let c = array(n * n);
            forall i in 0..n * n {{ a[i] = i % 7 + 1; }}
            forall i in 0..n * n {{ b[i] = i % 5 - 1; }}
            forall i in 0..n {{
              forall j in 0..n {{
                for k in 0..n {{
                  c[i * n + j] += a[i * n + k] * b[k * n + j];
                }}
              }}
            }}
            print(sum(c)); }}"
    )
}

struct LitlxRun {
    wall_ms: f64,
    sgts: u64,
    ssp_foralls: u64,
    wavefronts: u64,
    stats: PoolStats,
    check: String,
}

/// Run a LITL-X program and report the minimum wall time of five timed
/// runs after one discarded warm-up run on the same interpreter. A single
/// cold run times pool startup (worker wake-from-park, first-touch
/// allocation) instead of the execution path, and the path comparison is
/// what this table is for; the warm-up also absorbs the first-run
/// knowledge-base recording so every path is timed steady-state, and the
/// minimum (not the mean) rejects scheduler noise on shared CI hosts.
fn run_litlx(src: &str, topo: Topology, strategy: LoopStrategy, mode: KernelMode) -> LitlxRun {
    let p = parse(src).expect("kernel parses");
    let interp = Interp::with_topology(topo)
        .with_strategy(strategy)
        .with_kernel_mode(mode);
    interp.run(&p).expect("kernel warms up");
    let mut wall_ms = f64::MAX;
    let mut out = None;
    for _ in 0..5 {
        let start = std::time::Instant::now();
        let o = interp.run(&p).expect("kernel runs");
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(o);
    }
    let out = out.expect("three timed runs");
    LitlxRun {
        wall_ms,
        sgts: out.sgt_spawns,
        ssp_foralls: out.ssp_foralls,
        wavefronts: out.ssp_wavefronts,
        stats: interp.pool_stats(),
        check: out.printed.join(";"),
    }
}

/// The `[steps × cells]` force-loop nest: the step level carries the
/// position dependence (distance 1), cells are independent within a step.
fn md_nest(steps: u64, cells: u64) -> LoopNest {
    LoopNest {
        name: "md-force".to_string(),
        trip_counts: vec![steps, cells],
        ops: vec![
            Op::new("load positions", 4, OpKind::Mem),
            Op::new("pair forces", 12, OpKind::Fpu),
            Op::new("store forces", 1, OpKind::Mem),
        ],
        deps: vec![
            Dep::independent(0, 1, 2),
            Dep::independent(1, 2, 2),
            // Forces of step t feed positions of step t+1.
            Dep {
                from: 2,
                to: 0,
                distance: vec![1, 0],
            },
        ],
    }
}

/// Per-cell force body shared by both MD paths: computes forces of every
/// particle in `cell` into the force buffer (3 slots per particle) and
/// accumulates the cell's potential into the last slot.
fn md_cell_body(
    sys: &Arc<MdSystem>,
    cl: &Arc<CellList>,
    params: &Arc<ForceParams>,
    buf: &SharedRegion,
    cell: usize,
) {
    let mut pot = 0.0;
    for &i in &cl.cells[cell] {
        let i = i as usize;
        let (f, e) = force_on_particle(sys, cl, params, i);
        for (k, fk) in f.iter().enumerate() {
            buf.write_f64(i * 3 + k, *fk);
        }
        pot += e;
    }
    buf.fetch_add_f64(sys.len() * 3, pot);
}

/// E18 — naive vs SSP-partitioned execution of a LITL-X matmul nest and
/// the MD force loop, across locality topologies.
pub fn e18_ssp_native(scale: Scale) -> Table {
    let mut t = Table::new(
        "E18 SSP native execution: naive vs pipelined × topology",
        &[
            "workload",
            "path",
            "topology",
            "wall_ms",
            "spawned",
            "pipelined",
            "wavefronts",
            "model_cycles",
            "remote_ratio",
            "dom_spawns",
            "check",
        ],
    );
    let workers = scale.pick(4usize, 8);
    let topologies = vec![
        ("flat".to_string(), Topology::flat(workers)),
        ("2-dom".to_string(), Topology::domains(2, workers / 2)),
    ];

    // Workload 1: LITL-X matmul-like nest through the interpreter.
    let n = scale.pick(12usize, 40);
    let src = litlx_matmul_src(n);
    let model_nest = LoopNest::matmul_like(n as u64, n as u64, n as u64);
    let cfg = SspConfig::default();
    let seq_cycles = sequential_cycles(&model_nest);
    let best_cycles = select_level(&model_nest, &cfg).map_or(seq_cycles, |p| p.total_cycles);
    for (name, topo) in &topologies {
        for (path, strategy, mode, cycles) in [
            (
                "naive",
                LoopStrategy::Naive,
                KernelMode::Interpreted,
                seq_cycles,
            ),
            (
                "ssp-interp",
                LoopStrategy::Ssp,
                KernelMode::Interpreted,
                best_cycles,
            ),
            (
                "ssp-comp",
                LoopStrategy::Ssp,
                KernelMode::Compiled,
                best_cycles,
            ),
        ] {
            let r = run_litlx(&src, topo.clone(), strategy, mode);
            t.row(&[
                "litlx-matmul".to_string(),
                path.to_string(),
                name.clone(),
                f2(r.wall_ms),
                r.sgts.to_string(),
                r.ssp_foralls.to_string(),
                r.wavefronts.to_string(),
                cycles.to_string(),
                f3(r.stats.remote_steal_ratio()),
                by_domain(&r.stats.domain_spawns),
                r.check,
            ]);
        }
    }

    // Workload 2: a flat recurrence — the wavefront path. The naive row
    // is a data race (its check cell may disagree); the SSP row must match
    // the sequential result exactly.
    let sn = scale.pick(48usize, 512);
    let scan_src = format!(
        "fn main() {{
            let n = {sn};
            let a = array(n + 1);
            a[0] = 3;
            forall i in 0..n {{ a[i + 1] = a[i] + i; }}
            print(a[n]); }}"
    );
    for (name, topo) in &topologies {
        for (path, strategy, mode) in [
            ("naive", LoopStrategy::Naive, KernelMode::Interpreted),
            ("ssp-interp", LoopStrategy::Ssp, KernelMode::Interpreted),
            ("ssp-comp", LoopStrategy::Ssp, KernelMode::Compiled),
        ] {
            let r = run_litlx(&scan_src, topo.clone(), strategy, mode);
            t.row(&[
                "litlx-scan".to_string(),
                path.to_string(),
                name.clone(),
                f2(r.wall_ms),
                r.sgts.to_string(),
                r.ssp_foralls.to_string(),
                r.wavefronts.to_string(),
                "-".to_string(),
                f3(r.stats.remote_steal_ratio()),
                by_domain(&r.stats.domain_spawns),
                r.check,
            ]);
        }
    }

    // Workload 3: the MD force loop at the exec layer.
    let spec = match scale {
        Scale::Quick => SystemSpec {
            box_len: 10.0,
            waters: 220,
            ion_pairs: 6,
            protein_beads: 20,
            ..Default::default()
        },
        Scale::Full => SystemSpec {
            box_len: 16.0,
            waters: 1_000,
            ion_pairs: 20,
            protein_beads: 50,
            ..Default::default()
        },
    };
    let steps = scale.pick(4u64, 20);
    let params = Arc::new(ForceParams::default());
    let sys = Arc::new(MdSystem::build(&spec));
    let cl = Arc::new(CellList::build(&sys, params.cutoff));
    let occupied: Vec<usize> = (0..cl.cells.len())
        .filter(|&c| !cl.cells[c].is_empty())
        .collect();
    let cells = occupied.len() as u64;
    let nest = md_nest(steps, cells);
    let plans = schedule_all_levels(&nest, &cfg);
    let cell_plan = plans
        .iter()
        .find(|p| p.level == 1)
        .expect("cell level schedulable");
    let md_model = cell_plan.total_cycles;
    for (name, topo) in &topologies {
        // Naive: one pool job per occupied cell, joined per step.
        {
            let pool = Arc::new(Pool::with_topology(topo.clone()));
            let buf = SharedRegion::new(sys.len() * 3 + 1);
            let start = std::time::Instant::now();
            for _ in 0..steps {
                for &c in &occupied {
                    let (sys, cl, params, buf) =
                        (sys.clone(), cl.clone(), params.clone(), buf.clone());
                    pool.spawn(move |_| md_cell_body(&sys, &cl, &params, &buf, c));
                }
                pool.wait_quiescent();
            }
            let wall = start.elapsed().as_secs_f64() * 1e3;
            let stats = pool.stats();
            t.row(&[
                "md-force".to_string(),
                "naive".to_string(),
                name.clone(),
                f2(wall),
                stats.total_executed().to_string(),
                "0".to_string(),
                "0".to_string(),
                sequential_cycles(&nest).to_string(),
                f3(stats.remote_steal_ratio()),
                by_domain(&stats.domain_spawns),
                f2(buf.read_f64(sys.len() * 3) / steps as f64),
            ]);
        }
        // SSP: the [steps × cells] nest partitioned at the cell level —
        // the step-carried dependence drops there, so groups run in
        // parallel inside sequential step waves.
        {
            let pool = Arc::new(Pool::with_topology(topo.clone()));
            let part = PartitionPlan::new(cell_plan, cells, workers as u64);
            let buf = SharedRegion::new(sys.len() * 3 + 1);
            let body: Arc<PointBody> = {
                let (sys, cl, params, buf, occupied) = (
                    sys.clone(),
                    cl.clone(),
                    params.clone(),
                    buf.clone(),
                    occupied.clone(),
                );
                Arc::new(move |idx: &[i64]| {
                    md_cell_body(&sys, &cl, &params, &buf, occupied[idx[1] as usize]);
                    Ok(())
                })
            };
            let start = std::time::Instant::now();
            let rep =
                run_partitioned(&pool, &nest.trip_counts, 1, 0, &part, body).expect("md nest runs");
            let wall = start.elapsed().as_secs_f64() * 1e3;
            pool.wait_quiescent();
            let stats = pool.stats();
            t.row(&[
                "md-force".to_string(),
                "ssp".to_string(),
                name.clone(),
                f2(wall),
                rep.spawned.to_string(),
                rep.groups.to_string(),
                u64::from(rep.wavefront).to_string(),
                md_model.to_string(),
                f3(stats.remote_steal_ratio()),
                by_domain(&stats.domain_spawns),
                f2(buf.read_f64(sys.len() * 3) / steps as f64),
            ]);
        }
    }
    t
}
