//! E14–E16: application experiments (Fig. 2 case study, MD, LITL-X).

use htvm_apps::md::integrate::{run_md, Thermostat};
use htvm_apps::md::parallel::{run_md_parallel, MdGrain};
use htvm_apps::md::system::{MdSystem, SystemSpec};
use htvm_apps::md::ForceParams;
use htvm_apps::neuro::htvm_map::{run_parallel, Mapping};
use htvm_apps::neuro::network::{Network, NetworkSpec};
use htvm_apps::neuro::sim::NetworkSim;

use super::Scale;
use crate::table::{f2, f3, Table};

/// E14 — the Fig. 2 case study: neuron network on the thread hierarchy,
/// hierarchical vs flat mapping, scaling over workers.
pub fn e14_neocortex(scale: Scale) -> Table {
    let mut t = Table::new(
        "E14 neocortex (Fig. 2): steps/s by mapping × workers",
        &[
            "mapping",
            "workers",
            "steps/s",
            "speedup_vs_seq",
            "spikes",
            "sgts",
            "steals",
            "imbalance",
        ],
    );
    // Quick still needs enough per-step work for the parallel runtime's
    // per-step spawn/join to amortize (the same reality the paper's grain
    // hierarchy is about): ~4k compartment updates per step.
    let spec = match scale {
        Scale::Quick => NetworkSpec {
            regions: 8,
            neurons_per_region: 128,
            compartments: 8,
            ..Default::default()
        },
        Scale::Full => NetworkSpec {
            regions: 8,
            neurons_per_region: 256,
            compartments: 8,
            fanout: 24,
            ..Default::default()
        },
    };
    let steps = scale.pick(40u64, 150);
    // Sequential reference.
    let (seq_rate, seq_spikes) = {
        let mut sim = NetworkSim::new(Network::build(spec.clone()));
        let start = std::time::Instant::now();
        sim.run(steps);
        (
            steps as f64 / start.elapsed().as_secs_f64(),
            sim.total_spikes,
        )
    };
    t.row(&[
        "sequential".to_string(),
        "1".to_string(),
        f2(seq_rate),
        f2(1.0),
        seq_spikes.to_string(),
        "0".to_string(),
        "0".to_string(),
        "0.000".to_string(),
    ]);
    // Quick runs on whatever cores the host actually has; oversubscribed
    // workers on a small CI box only measure scheduler thrash.
    let avail = std::thread::available_parallelism().map_or(2, |n| n.get());
    let worker_sweep: Vec<usize> = scale.pick(vec![avail.clamp(2, 4)], vec![1, 2, 4, 8]);
    for mapping in [Mapping::Hierarchical, Mapping::Flat] {
        for &w in &worker_sweep {
            let r = run_parallel(Network::build(spec.clone()), steps, w, mapping);
            let rate = steps as f64 / r.elapsed.as_secs_f64();
            assert_eq!(
                r.total_spikes, seq_spikes,
                "parallel run must match the sequential spike count"
            );
            t.row(&[
                format!("{mapping:?}").to_lowercase(),
                w.to_string(),
                f2(rate),
                f2(rate / seq_rate),
                r.total_spikes.to_string(),
                r.sgt_count.to_string(),
                r.steals().to_string(),
                f3(r.imbalance()),
            ]);
        }
    }
    t
}

/// E15 — fine-grain molecular dynamics: SGT-per-cell vs coarse chunks.
pub fn e15_md(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15 molecular dynamics: steps/s by grain × workers",
        &[
            "grain",
            "workers",
            "steps/s",
            "speedup_vs_seq",
            "sgts",
            "potential",
        ],
    );
    // Like E14, Quick needs a force pass heavy enough (≈500 particles) for
    // parallelism to be visible over per-pass snapshot/spawn overhead.
    let spec = match scale {
        Scale::Quick => SystemSpec {
            box_len: 12.0,
            waters: 450,
            ion_pairs: 8,
            protein_beads: 30,
            ..Default::default()
        },
        Scale::Full => SystemSpec {
            box_len: 18.0,
            waters: 1_400,
            ion_pairs: 24,
            protein_beads: 60,
            ..Default::default()
        },
    };
    let steps = scale.pick(8usize, 40);
    let params = ForceParams::default();
    let (seq_rate, seq_pot) = {
        let mut sys = MdSystem::build(&spec);
        let start = std::time::Instant::now();
        let (pot, _) = run_md(&mut sys, &params, 0.001, steps, Thermostat::None);
        (steps as f64 / start.elapsed().as_secs_f64(), pot)
    };
    t.row(&[
        "sequential".to_string(),
        "1".to_string(),
        f2(seq_rate),
        f2(1.0),
        "0".to_string(),
        f2(seq_pot),
    ]);
    let avail = std::thread::available_parallelism().map_or(2, |n| n.get());
    let worker_sweep: Vec<usize> = scale.pick(vec![avail.clamp(2, 4)], vec![1, 2, 4, 8]);
    for (grain, label) in [
        (MdGrain::PerCell, "per-cell (fine)"),
        (MdGrain::Chunks(4), "chunks(4) (coarse)"),
    ] {
        for &w in &worker_sweep {
            let r = run_md_parallel(
                MdSystem::build(&spec),
                &params,
                0.001,
                steps,
                w,
                grain,
                Thermostat::None,
            );
            let rate = steps as f64 / r.elapsed.as_secs_f64();
            t.row(&[
                label.to_string(),
                w.to_string(),
                f2(rate),
                f2(rate / seq_rate),
                r.sgt_count.to_string(),
                f2(r.potential),
            ]);
        }
    }
    t
}

/// E16 — LITL-X end-to-end: interpreted kernels vs hand-coded equivalents
/// on the same runtime (the price of the prototype language).
pub fn e16_litlx(scale: Scale) -> Table {
    use htvm_core::{Htvm, HtvmConfig, Topology};
    use litlx::lang::{parse, Interp};

    let n = scale.pick(2_000usize, 20_000);
    let workers = 4;
    let mut t = Table::new(
        "E16 LITL-X: interpreted vs hand-coded kernels",
        &[
            "kernel",
            "litlx_us",
            "native_us",
            "interp_overhead",
            "results_match",
        ],
    );

    // Kernel 1: scaled vector sum (forall + reduction via accumulate).
    let src_dot = format!(
        "fn main() {{
            let n = {n};
            let a = array(n);
            let acc = array(1);
            forall i in 0..n {{ a[i] = i * 0.5; }}
            forall i in 0..n {{ acc[0] += a[i] * 2; }}
            print(acc[0]);
        }}"
    );
    // Kernel 2: 1-D stencil step.
    let src_stencil = format!(
        "fn main() {{
            let n = {n};
            let a = array(n);
            let b = array(n);
            forall i in 0..n {{ a[i] = i % 17; }}
            @hint(schedule = \"guided\")
            forall i in 0..n {{
                if i > 0 && i < n - 1 {{
                    b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3;
                }}
            }}
            print(sum(b));
        }}"
    );
    // (kernel name, LITL-X source, native oracle computing the same value)
    type NativeOracle = Box<dyn Fn() -> f64>;
    let cases: Vec<(&str, String, NativeOracle)> = vec![
        (
            "scaled-sum",
            src_dot,
            Box::new(move || {
                // Hand-coded: same algorithm on the raw runtime.
                let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(workers)));
                let h = htvm.lgt(move |lgt| {
                    let mem = lgt.memory().clone();
                    let chunk = n.div_ceil(workers);
                    for c in 0..workers {
                        let mem = mem.clone();
                        lgt.spawn_sgt(move |_| {
                            let lo = c * chunk;
                            let hi = ((c + 1) * chunk).min(n);
                            let mut local = 0.0;
                            for i in lo..hi {
                                local += (i as f64 * 0.5) * 2.0;
                            }
                            mem.fetch_add_f64(0, local);
                        });
                    }
                });
                h.join();
                h.memory().read_f64(0)
            }),
        ),
        (
            "stencil-3pt",
            src_stencil,
            Box::new(move || {
                let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(workers)));
                let h = htvm.lgt(move |lgt| {
                    let mem = lgt.memory().clone();
                    // a in [0..n), b in [n..2n)
                    let chunk = n.div_ceil(workers);
                    for c in 0..workers {
                        let mem = mem.clone();
                        lgt.spawn_sgt(move |_| {
                            let lo = c * chunk;
                            let hi = ((c + 1) * chunk).min(n);
                            for i in lo..hi {
                                mem.write_f64(i, (i % 17) as f64);
                            }
                        });
                    }
                });
                h.join();
                let mem = h.memory();
                let h2 = htvm.lgt({
                    let mem = mem.clone();
                    move |lgt| {
                        let chunk = n.div_ceil(workers);
                        for c in 0..workers {
                            let mem = mem.clone();
                            lgt.spawn_sgt(move |_| {
                                let lo = (c * chunk).max(1);
                                let hi = ((c + 1) * chunk).min(n - 1);
                                for i in lo..hi {
                                    let v = (mem.read_f64(i - 1)
                                        + mem.read_f64(i)
                                        + mem.read_f64(i + 1))
                                        / 3.0;
                                    mem.write_f64(n + i, v);
                                }
                            });
                        }
                    }
                });
                h2.join();
                (1..n - 1).map(|i| mem.read_f64(n + i)).sum()
            }),
        ),
    ];

    for (name, src, native) in cases {
        let prog = parse(&src).expect("kernel parses");
        let interp = Interp::new(workers);
        let start = std::time::Instant::now();
        let out = interp.run(&prog).expect("kernel runs");
        let litlx_us = start.elapsed().as_micros() as f64;
        let litlx_val: f64 = out.printed[0].parse().unwrap_or(f64::NAN);

        let start = std::time::Instant::now();
        let native_val = native();
        let native_us = (start.elapsed().as_micros() as f64).max(1.0);

        let matches = (litlx_val - native_val).abs() < 1e-6 * native_val.abs().max(1.0);
        t.row(&[
            name.to_string(),
            f2(litlx_us),
            f2(native_us),
            f2(litlx_us / native_us),
            matches.to_string(),
        ]);
    }
    t
}
