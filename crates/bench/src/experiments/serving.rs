//! E19: multi-tenant serving under open-loop load.
//!
//! The serving front-end (`htvm-serve`) converts the pool into a
//! long-lived server; this experiment drives it the way a latency SLO
//! would be measured: an **open-loop** generator submits requests at a
//! fixed arrival rate (pacing is wall-clock ticks, independent of
//! completions — so queueing delay is visible instead of being absorbed
//! by a closed loop), across three tenants with weights 1/2/4 offered
//! *equal* load, over at least three rates from under-load to past
//! saturation.
//!
//! Per tenant and rate the table reports the admission-to-execution
//! latency distribution (p50/p99/p999 in µs, measured from submit to
//! the moment the action starts running on a worker) and the full
//! conservation ledger: every offered request must end in exactly one
//! of refused (typed backpressure at admission), completed, cancelled
//! (a slice of requests carries a tight deadline), or shed (overload
//! triage) — the `check` column proves the ledger balances. At the
//! saturating rate the weighted dispatcher should hold the weight-4
//! tenant's tail latency below the weight-1 tenant's.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use htvm_core::{Pool, Topology};
use htvm_serve::{NativeParcel, Server, ServerConfig, TenantConfig};

use super::Scale;
use crate::table::Table;

/// Percentile over a sorted slice (nearest-rank on the closed index
/// range, so `p999` of a short vector is its max, never out of bounds).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// E19 — open-loop multi-tenant serving: latency distribution and
/// conservation ledger per tenant across arrival rates.
pub fn e19_serving(scale: Scale) -> Table {
    let mut t = Table::new(
        "E19 serving: open-loop load × weighted tenants",
        &[
            "rate_rps",
            "tenant",
            "weight",
            "offered",
            "refused",
            "completed",
            "cancelled",
            "shed",
            "p50_us",
            "p99_us",
            "p999_us",
            "check",
        ],
    );
    let weights = [1u64, 2, 4];
    // Aggregate offered load per 1 ms tick, split evenly across tenants:
    // the low rate idles the pool, the middle one loads it, the top one
    // saturates admission so shedding and backpressure become visible.
    let rates_per_tick = [3usize, 12, 48];
    let ticks = scale.pick(25u64, 200);
    let workers = scale.pick(2usize, 4);

    for per_tick in rates_per_tick {
        let pool = Arc::new(Pool::with_topology(Topology::domains(workers, 1)));
        let server = Server::on_pool(
            pool,
            ServerConfig {
                max_in_flight: 16,
                default_queue_capacity: 256,
                max_queued_total: 384,
                ..ServerConfig::default()
            },
        );
        let tenants: Vec<_> = weights
            .iter()
            .map(|&w| server.register_tenant(TenantConfig::weighted(w)))
            .collect();
        let lats: Vec<Arc<Mutex<Vec<u64>>>> = weights
            .iter()
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();

        let mut seq = 0usize;
        for _ in 0..ticks {
            let tick_deadline = Instant::now() + Duration::from_millis(1);
            for _ in 0..per_tick {
                let k = seq % tenants.len();
                seq += 1;
                let lat = lats[k].clone();
                let submitted_at = Instant::now();
                let parcel = NativeParcel::new(move |_| {
                    lat.lock()
                        .unwrap()
                        .push(submitted_at.elapsed().as_micros() as u64);
                    // A few hundred ns of "work" so service time is not
                    // pure bookkeeping.
                    for i in 0..64u64 {
                        std::hint::black_box(i);
                    }
                });
                // Every 32nd request carries a tight deadline: under
                // load some expire in the queue and exercise the
                // cancellation path end to end.
                let res = if seq.is_multiple_of(32) {
                    tenants[k]
                        .submit_with_deadline(parcel, submitted_at + Duration::from_micros(500))
                } else {
                    tenants[k].submit(parcel)
                };
                // Refusals are typed backpressure; the stats ledger
                // counts them, the handle (if any) needs no await.
                drop(res);
            }
            let now = Instant::now();
            if now < tick_deadline {
                std::thread::sleep(tick_deadline - now);
            }
        }

        assert!(
            server.wait_idle(Duration::from_secs(60)),
            "serving load never drained"
        );
        let rate_rps = per_tick * 1000;
        for (k, tenant) in tenants.iter().enumerate() {
            let s = tenant.stats();
            let mut lat = lats[k].lock().unwrap().clone();
            lat.sort_unstable();
            let balanced = s.settled() == s.submitted
                && s.completed == lat.len() as u64
                && s.closed_rejects == 0
                && s.shutdown_rejects == 0
                && s.failed == 0;
            t.row(&[
                rate_rps.to_string(),
                format!("t{k}"),
                weights[k].to_string(),
                s.submitted.to_string(),
                s.rejected_full.to_string(),
                s.completed.to_string(),
                s.cancelled.to_string(),
                s.shed.to_string(),
                percentile_us(&lat, 0.50).to_string(),
                percentile_us(&lat, 0.99).to_string(),
                percentile_us(&lat, 0.999).to_string(),
                if balanced {
                    "ok".to_string()
                } else {
                    "LEAK".to_string()
                },
            ]);
        }
        server.shutdown();
    }
    t
}
