//! E1–E5: machine-level experiments on the simulated HEC substrate.

use htvm_core::simrt::{SignalAlloc, SpawnPing};
use htvm_sim::{
    strided_kernel, Engine, GAddr, MachineConfig, Placement, SignalId, SimThread, SpawnClass,
};
use litlx::parcel::compare_strategies;
use litlx::percolate::{PercolateKernel, PercolationPlan};

use super::Scale;
use crate::table::{f2, Table};

/// E1 — latency tolerance via hardware multithreading (paper §1, §3.2).
///
/// Sweep hardware threads per unit × DRAM latency scale; the figure of
/// merit is throughput (accesses per kilocycle) of one unit running that
/// many memory-bound kernels. A second column group uses an OS-weight
/// context-switch cost to reproduce the paper's argument for in-stream
/// switching.
pub fn e1_latency_tolerance(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1 latency tolerance: throughput vs hw threads × DRAM latency",
        &[
            "hw_threads",
            "lat_scale",
            "accesses/kcyc (in-stream)",
            "accesses/kcyc (os-switch)",
            "utilization",
        ],
    );
    let hw_sweep: Vec<u16> = scale.pick(vec![1, 2, 4, 8], vec![1, 2, 4, 8, 12, 16]);
    let lat_sweep: Vec<f64> = scale.pick(vec![1.0, 8.0], vec![1.0, 4.0, 8.0, 16.0]);
    let iters = scale.pick(60, 400);
    for &lat in &lat_sweep {
        for &hw in &hw_sweep {
            let run = |switch_cost: u64| {
                let mut cfg = MachineConfig::small();
                cfg.units_per_node = 1;
                cfg.hw_threads_per_unit = hw;
                cfg.switch_cost = switch_cost;
                let mut e = Engine::new(cfg);
                e.memory_mut().set_dram_latency_scale(lat);
                for k in 0..hw as u64 {
                    let kern = strided_kernel(iters, 10, GAddr::dram(0, k * (1 << 20)), 64, 8);
                    e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(kern));
                }
                let s = e.run();
                (
                    s.total_accesses() as f64 / (s.now.max(1) as f64 / 1000.0),
                    s.utilization(1),
                )
            };
            let (instream, util) = run(4);
            let (os, _) = run(2_000);
            t.row(&[
                hw.to_string(),
                format!("{lat:.0}x"),
                f2(instream),
                f2(os),
                f2(util),
            ]);
        }
    }
    t
}

/// E2 — parcels vs remote loads vs bulk fetch (paper §3.2): cycles as the
/// reduced block grows; the crossover shows when moving work to data wins.
pub fn e2_parcels(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2 parcels: remote reduce, cycles by strategy vs block size",
        &["elems", "remote_loads", "bulk_fetch", "parcel", "winner"],
    );
    let sizes: Vec<u64> = scale.pick(vec![4, 64, 1024], vec![4, 16, 64, 256, 1024, 4096, 8192]);
    for &elems in &sizes {
        let (loads, bulk, parcel) = compare_strategies(
            || {
                let mut cfg = MachineConfig::small();
                cfg.nodes = 2;
                Engine::new(cfg)
            },
            elems,
            2,
        );
        let winner = if parcel <= loads && parcel <= bulk {
            "parcel"
        } else if bulk <= loads {
            "bulk"
        } else {
            "loads"
        };
        t.row(&[
            elems.to_string(),
            loads.to_string(),
            bulk.to_string(),
            parcel.to_string(),
            winner.to_string(),
        ]);
    }
    t
}

/// E3 — futures with localized buffering vs global barriers (paper §3.2).
///
/// A `stages × items` pipeline with skewed item costs, on the native
/// runtime: the barrier version synchronizes all items between stages; the
/// future version lets each item flow ahead through `and_then` chains.
pub fn e3_futures(scale: Scale) -> Table {
    use htvm_apps::workloads::spin_work;
    use htvm_core::{Htvm, HtvmConfig, Topology};
    use litlx::future::LitlFuture;

    let items = scale.pick(6usize, 12);
    let stages = scale.pick(6usize, 12);
    let workers = 4usize;
    let unit = scale.pick(30_000u64, 150_000);
    // Pseudo-random per-(item, stage) cost: the stage maximum moves around,
    // which is exactly what makes global barriers pay and futures win.
    let cost = move |i: usize, s: usize| -> u64 { unit * (1 + ((i * 7 + s * 13) % 16) as u64) };

    let mut t = Table::new(
        "E3 futures vs barrier pipeline (native runtime)",
        &["variant", "wall_us", "speedup_vs_barrier"],
    );

    // Barrier variant: one SGT per item per stage; a full join (the global
    // synchronization point the paper complains about) between stages.
    let barrier_us = {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(workers)));
        let start = std::time::Instant::now();
        for s in 0..stages {
            let h = htvm.lgt(move |lgt| {
                for i in 0..items {
                    lgt.spawn_sgt(move |_| {
                        std::hint::black_box(spin_work(cost(i, s) / 8));
                    });
                }
            });
            h.join();
        }
        start.elapsed().as_micros() as f64
    };

    // Future variant: each item's stages form an independent dataflow
    // chain resolved into a future; no cross-item synchronization.
    let future_us = {
        let htvm = Htvm::new(HtvmConfig::with_topology(Topology::flat(workers)));
        let start = std::time::Instant::now();
        let done: Vec<LitlFuture<u64>> = (0..items).map(|_| LitlFuture::unresolved()).collect();
        let h = htvm.lgt({
            let done = done.clone();
            move |lgt| {
                for (i, fut) in done.iter().enumerate() {
                    let fut = fut.clone();
                    lgt.spawn_sgt(move |_| {
                        let mut acc = 0u64;
                        for s in 0..stages {
                            acc += std::hint::black_box(spin_work(cost(i, s) / 8)) as u64 + 1;
                        }
                        fut.resolve(acc);
                    });
                }
            }
        });
        h.join();
        for f in &done {
            f.force();
        }
        start.elapsed().as_micros() as f64
    };

    t.row(&["barrier".to_string(), f2(barrier_us), f2(1.0)]);
    t.row(&[
        "futures".to_string(),
        f2(future_us),
        f2(barrier_us / future_us.max(1.0)),
    ]);
    t
}

/// E4 — percolation: stall reduction vs prestage depth (paper §3.2).
pub fn e4_percolation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4 percolation: makespan vs prestage depth",
        &["depth", "cycles", "speedup_vs_demand", "accesses"],
    );
    let tiles = scale.pick(16u64, 64);
    let depths: Vec<u64> = scale.pick(vec![0, 1, 2, 4], vec![0, 1, 2, 3, 4, 6, 8]);
    let mut demand = 0u64;
    for &depth in &depths {
        let mut cfg = MachineConfig::small();
        cfg.hw_threads_per_unit = 16;
        let mut e = Engine::new(cfg);
        let plan = PercolationPlan {
            src_base: GAddr::dram(0, 0),
            tile_bytes: 4096,
            tiles,
            compute_per_tile: 120,
            depth,
        };
        let k = PercolateKernel::new(plan, SignalId(500));
        e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(k));
        let s = e.run();
        if depth == 0 {
            demand = s.now;
        }
        t.row(&[
            depth.to_string(),
            s.now.to_string(),
            f2(demand as f64 / s.now.max(1) as f64),
            s.total_accesses().to_string(),
        ]);
    }
    t
}

/// E5 — invocation/management cost of the three thread grains (paper
/// §3.1.1's cost ordering), on the simulated machine.
pub fn e5_spawn_costs(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5 thread-grain costs: spawn+join round trip by class",
        &["class", "cycles/spawn", "vs_tgt"],
    );
    let reps = scale.pick(20u64, 200);
    let mut tgt_cost = 1f64;
    for (class, name) in [
        (SpawnClass::Tgt, "TGT (fiber)"),
        (SpawnClass::Sgt, "SGT (threaded call)"),
        (SpawnClass::Lgt, "LGT (coarse thread)"),
    ] {
        let mut e = Engine::new(MachineConfig::small());
        let mut sigs = SignalAlloc::new();
        let sig = sigs.fresh();
        e.spawn(
            Placement::Unit(0, 0),
            SpawnClass::Lgt,
            Box::new(SpawnPing::new(class, reps as usize, sig)),
        );
        let s = e.run();
        let per = s.now as f64 / reps as f64;
        if class == SpawnClass::Tgt {
            tgt_cost = per;
        }
        t.row(&[name.to_string(), f2(per), f2(per / tgt_cost)]);
    }
    t
}

/// E5b — native-pool park/wake costs, the other half of the spawn story:
/// E5 prices the *grain* of a spawn on the simulated substrate; this
/// prices the *wakeup* on the real pool. Workers park indefinitely in the
/// per-domain sleeper registry, so the interesting numbers are the
/// spawn-to-first-execution latency against a fully parked pool (one
/// targeted futex wake on the critical path) and the idle cost once
/// everything has parked — which must be zero: no periodic self-wakes
/// (`idle_reparks/s`), no spurious wakes (`idle_wakes`).
pub fn e5b_native_spawn(scale: Scale) -> Table {
    use htvm_core::{Pool, Topology};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut t = Table::new(
        "E5b native pool: spawn→exec wake latency and idle cost",
        &[
            "topology",
            "spawn_exec_us_p50",
            "parks",
            "wakes_targeted",
            "wakes_escalated",
            "idle_reparks_per_s",
            "idle_wakes",
        ],
    );
    // A timed-out park wait would silently corrupt both measurements
    // (cold spawns against a warm pool, an idle baseline snapshotted
    // mid-settle); fail loudly so the report can't mis-blame the
    // protocol.
    let wait_parked = |pool: &Pool| {
        assert!(
            pool.wait_fully_parked(Duration::from_secs(10)),
            "pool never fully parked; host too loaded to measure idle cost"
        );
    };
    let reps = scale.pick(30u64, 200);
    for (name, topo) in [
        ("flat-4".to_string(), Topology::flat(4)),
        ("2x2".to_string(), Topology::domains(2, 2)),
    ] {
        let pool = Pool::with_topology(topo);
        let mut lat_us: Vec<f64> = Vec::with_capacity(reps as usize);
        for _ in 0..reps {
            // Cold spawn: measure against a fully parked pool so the wake
            // is on the critical path.
            wait_parked(&pool);
            let nanos = Arc::new(AtomicU64::new(0));
            let n2 = nanos.clone();
            let t0 = Instant::now();
            pool.spawn(move |_| {
                n2.store(t0.elapsed().as_nanos() as u64 + 1, Ordering::SeqCst);
            });
            // Yield, don't spin: a hard spin on a single-CPU host starves
            // the woken worker of the core and measures the scheduler
            // quantum instead of the wake.
            while nanos.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            lat_us.push((nanos.load(Ordering::SeqCst) - 1) as f64 / 1e3);
            pool.wait_quiescent();
        }
        lat_us.sort_by(|a, b| a.total_cmp(b));
        let p50 = lat_us[lat_us.len() / 2];
        // Idle watch: once parked, the pool must stay silent.
        wait_parked(&pool);
        let before = pool.stats();
        let window = Duration::from_millis(scale.pick(40, 150));
        std::thread::sleep(window);
        let after = pool.stats();
        let reparks_per_s = (after.parks - before.parks) as f64 / window.as_secs_f64();
        t.row(&[
            name,
            f2(p50),
            after.parks.to_string(),
            after.wakes_targeted.to_string(),
            after.wakes_escalated.to_string(),
            f2(reparks_per_s),
            (after.total_wakes() - before.total_wakes()).to_string(),
        ]);
    }
    t
}

/// E5c — the price of one queue operation on the scheduling spine:
/// owner push/pop, thief steal, injector publish and batch-steal, for
/// the lock-free spine (`htvm_core::deque`) against the mutex-shim
/// baseline (`crossbeam::deque`, the `Mutex<VecDeque>` vendor shim the
/// pool ran on before the spine landed).
///
/// The `stealers` column is the number of concurrent thieves raiding the
/// queue — 1/2/4, standing in for the workers of a 1/2/4-domain
/// topology all converging on one victim. Owner ops and injector pushes
/// are single-threaded by construction (the deque has one owner; a
/// spawner publishes alone), so those rows show `-`.
///
/// This table is the microbenchmark twin of the `deque` criterion bench
/// and the queue-level decomposition of `pool_spawn_to_exec` in the
/// `spawn_costs` bench: all three measure the same code the pool runs in
/// `native::find_work` / `Pool::spawn_batch_in`.
pub fn e5c_queue_ops(scale: Scale) -> Table {
    use htvm_core::deque as lf;
    use std::sync::Arc;
    use std::time::Instant;

    let mut t = Table::new(
        "E5c queue ops: ns/op, mutex shim vs lock-free spine",
        &["op", "stealers", "mutex_ns", "lockfree_ns", "speedup"],
    );
    let n = scale.pick(40_000u64, 400_000);

    // Owner push+pop round trips on a warmed deque (the spawn-side hot
    // path: a worker pushing then LIFO-popping its own children).
    let push_pop_mutex = {
        let w = crossbeam::deque::Worker::new_lifo();
        let t0 = Instant::now();
        for i in 0..n {
            w.push(i);
            if i % 8 == 7 {
                for _ in 0..8 {
                    std::hint::black_box(w.pop());
                }
            }
        }
        while w.pop().is_some() {}
        t0.elapsed().as_nanos() as f64 / (2 * n) as f64
    };
    let push_pop_lf = {
        let w = lf::Worker::new_lifo();
        let t0 = Instant::now();
        for i in 0..n {
            w.push(i);
            if i % 8 == 7 {
                for _ in 0..8 {
                    std::hint::black_box(w.pop());
                }
            }
        }
        while w.pop().is_some() {}
        t0.elapsed().as_nanos() as f64 / (2 * n) as f64
    };
    t.row(&[
        "deque push+pop".to_string(),
        "-".to_string(),
        f2(push_pop_mutex),
        f2(push_pop_lf),
        f2(push_pop_mutex / push_pop_lf.max(1e-9)),
    ]);

    // Thief steals draining a pre-filled deque, 1/2/4 concurrent thieves
    // (ns per successfully stolen job, wall-clock over the full drain).
    // Thieves are spawned *before* the clock starts and released by a
    // start flag, so 1–4 thread-creation costs never dilute the per-op
    // numbers toward parity.
    for thieves in [1usize, 2, 4] {
        let items = scale.pick(8_000u64, 60_000);
        let drain_mutex = {
            let w = crossbeam::deque::Worker::new_lifo();
            for i in 0..items {
                w.push(i);
            }
            let taken = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let start = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let s = w.stealer();
                    let taken = taken.clone();
                    let start = start.clone();
                    std::thread::spawn(move || {
                        // Yield, don't spin: on a single-CPU host a hard
                        // spin here would burn a scheduler quantum inside
                        // the timed window.
                        while start.load(std::sync::atomic::Ordering::Acquire) == 0 {
                            std::thread::yield_now();
                        }
                        loop {
                            match s.steal() {
                                crossbeam::deque::Steal::Success(v) => {
                                    std::hint::black_box(v);
                                    taken.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                                _ => return,
                            }
                        }
                    })
                })
                .collect();
            let t0 = Instant::now();
            start.store(1, std::sync::atomic::Ordering::Release);
            for h in handles {
                let _ = h.join();
            }
            let ns = t0.elapsed().as_nanos() as f64 / items as f64;
            assert_eq!(
                taken.load(std::sync::atomic::Ordering::Relaxed),
                items,
                "mutex drain lost jobs"
            );
            ns
        };
        let drain_lf = {
            let w = lf::Worker::new_lifo();
            for i in 0..items {
                w.push(i);
            }
            let taken = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let start = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let s = w.stealer();
                    let taken = taken.clone();
                    let start = start.clone();
                    std::thread::spawn(move || {
                        // Yield, don't spin: on a single-CPU host a hard
                        // spin here would burn a scheduler quantum inside
                        // the timed window.
                        while start.load(std::sync::atomic::Ordering::Acquire) == 0 {
                            std::thread::yield_now();
                        }
                        // Pin once around the drain, exactly as the
                        // pool's `find_work` pins once around its steal
                        // sweep: each steal inside skips the epoch
                        // publication fence.
                        let _pin = lf::pin();
                        loop {
                            match s.steal() {
                                lf::Steal::Success(v) => {
                                    std::hint::black_box(v);
                                    taken.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                                lf::Steal::Retry => continue,
                                lf::Steal::Empty => return,
                            }
                        }
                    })
                })
                .collect();
            let t0 = Instant::now();
            start.store(1, std::sync::atomic::Ordering::Release);
            for h in handles {
                let _ = h.join();
            }
            let ns = t0.elapsed().as_nanos() as f64 / items as f64;
            assert_eq!(
                taken.load(std::sync::atomic::Ordering::Relaxed),
                items,
                "lock-free drain lost jobs"
            );
            ns
        };
        t.row(&[
            "deque steal".to_string(),
            thieves.to_string(),
            f2(drain_mutex),
            f2(drain_lf),
            f2(drain_mutex / drain_lf.max(1e-9)),
        ]);
    }

    // Injector batch publish, per job — the `spawn_batch_in` path. The
    // shim has no batch API, so its side pays one lock round-trip per
    // job (exactly what the pool paid before the spine landed); the
    // lock-free side claims each segment's share of the run with a
    // single `fetch_add`.
    let batch64 = 64u64;
    let rounds = n / batch64;
    let inj_pub_mutex = {
        let inj = crossbeam::deque::Injector::new();
        let t0 = Instant::now();
        for r in 0..rounds {
            for i in 0..batch64 {
                inj.push(r * batch64 + i);
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / (rounds * batch64) as f64;
        while inj.steal().success().is_some() {}
        ns
    };
    let inj_pub_lf = {
        let inj = lf::Injector::new();
        let t0 = Instant::now();
        for r in 0..rounds {
            inj.push_batch((r * batch64..(r + 1) * batch64).collect());
        }
        let ns = t0.elapsed().as_nanos() as f64 / (rounds * batch64) as f64;
        while inj.steal().success().is_some() {}
        ns
    };
    t.row(&[
        "injector batch-publish x64".to_string(),
        "-".to_string(),
        f2(inj_pub_mutex),
        f2(inj_pub_lf),
        f2(inj_pub_mutex / inj_pub_lf.max(1e-9)),
    ]);

    // Batched injector drain into a thief's deque (the `find_work`
    // domain-injector pickup): one steal_batch_and_pop claims a run.
    let batch_items = scale.pick(8_000u64, 60_000);
    let batch_mutex = {
        let inj = crossbeam::deque::Injector::new();
        for i in 0..batch_items {
            inj.push(i);
        }
        let dest = crossbeam::deque::Worker::new_lifo();
        let t0 = Instant::now();
        let mut got = 0u64;
        while inj.steal_batch_and_pop(&dest).success().is_some() {
            got += 1;
            while dest.pop().is_some() {
                got += 1;
            }
        }
        assert_eq!(got, batch_items);
        t0.elapsed().as_nanos() as f64 / batch_items as f64
    };
    let batch_lf = {
        let inj = lf::Injector::new();
        inj.push_batch((0..batch_items).collect());
        let dest = lf::Worker::new_lifo();
        let t0 = Instant::now();
        let mut got = 0u64;
        while inj.steal_batch_and_pop(&dest).success().is_some() {
            got += 1;
            while dest.pop().is_some() {
                got += 1;
            }
        }
        assert_eq!(got, batch_items);
        t0.elapsed().as_nanos() as f64 / batch_items as f64
    };
    t.row(&[
        "injector batch-steal".to_string(),
        "1".to_string(),
        f2(batch_mutex),
        f2(batch_lf),
        f2(batch_mutex / batch_lf.max(1e-9)),
    ]);
    t
}

/// Helper: a boxed strided kernel (shared by benches).
pub fn mem_kernel(iters: u64, compute: u64, offset: u64) -> Box<dyn SimThread> {
    Box::new(strided_kernel(
        iters,
        compute,
        GAddr::dram(0, offset),
        64,
        8,
    ))
}
