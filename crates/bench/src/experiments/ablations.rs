//! A1–A4: ablations of the design choices DESIGN.md §6 calls out.
//!
//! Where the E-series experiments reproduce the paper's claims, these
//! sweeps isolate single mechanisms: each varies exactly one knob of a
//! design decision and reports where the decision stops/starts paying.

use htvm_sim::{strided_kernel, Engine, GAddr, MachineConfig, Placement, SignalId, SpawnClass};
use litlx::percolate::{PercolateKernel, PercolationPlan};

use htvm_adapt::loop_sched::{evaluate_schedule, CostModel, IterationCosts, ScheduleKind};

use super::Scale;
use crate::table::{f2, f3, Table};

/// A1 — context-switch cost sweep: at what switch cost does hardware
/// multithreading stop hiding memory latency? (Ablates E1's in-stream vs
/// OS-weight dichotomy into a full curve; paper §3.2 bullet 1.)
pub fn a1_switch_cost(scale: Scale) -> Table {
    let mut t = Table::new(
        "A1 switch-cost ablation: throughput vs per-switch cycles (8 hw threads, 8x DRAM)",
        &["switch_cost", "accesses/kcyc", "vs_free_switch"],
    );
    let iters = scale.pick(60, 400);
    let sweep: Vec<u64> = scale.pick(
        vec![1, 16, 256, 4096],
        vec![1, 4, 16, 64, 256, 1024, 4096, 16384],
    );
    let mut base = 0.0f64;
    for &sc in &sweep {
        let mut cfg = MachineConfig::small();
        cfg.units_per_node = 1;
        cfg.hw_threads_per_unit = 8;
        cfg.switch_cost = sc;
        let mut e = Engine::new(cfg);
        e.memory_mut().set_dram_latency_scale(8.0);
        for k in 0..8u64 {
            let kern = strided_kernel(iters, 10, GAddr::dram(0, k * (1 << 20)), 64, 8);
            e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(kern));
        }
        let s = e.run();
        let thr = s.total_accesses() as f64 / (s.now.max(1) as f64 / 1000.0);
        if sc == sweep[0] {
            base = thr;
        }
        t.row(&[sc.to_string(), f2(thr), f2(thr / base.max(1e-9))]);
    }
    t
}

/// A2 — chunk-size ablation for self-scheduling: the overhead/imbalance
/// trade-off that motivates guided/trapezoid/factoring chunk laws
/// (paper §3.3).
pub fn a2_chunk_size(scale: Scale) -> Table {
    let mut t = Table::new(
        "A2 chunk-size ablation: self-sched(k), makespan vs k",
        &["distribution", "k", "makespan", "chunks", "imbalance"],
    );
    let n = scale.pick(400, 2_000);
    let workers = 16;
    let model = CostModel::default();
    let ks: Vec<u64> = scale.pick(vec![1, 8, 64], vec![1, 2, 4, 8, 16, 32, 64, 128]);
    for dist in [IterationCosts::Random, IterationCosts::Bimodal] {
        let costs = dist.generate(n, 100, 13);
        for &k in &ks {
            let out = evaluate_schedule(ScheduleKind::SelfSched(k), &costs, workers, &model);
            t.row(&[
                dist.name().to_string(),
                k.to_string(),
                out.makespan.to_string(),
                out.chunks.to_string(),
                f3(out.imbalance),
            ]);
        }
    }
    t
}

/// A3 — percolation depth × DRAM latency grid: prestaging depth needed to
/// hide a given latency (paper §3.2's percolation, beyond E4's single
/// latency point).
pub fn a3_percolation_grid(scale: Scale) -> Table {
    let mut t = Table::new(
        "A3 percolation grid: makespan by prestage depth × DRAM latency",
        &["lat_scale", "depth", "cycles", "speedup_vs_demand"],
    );
    let tiles = scale.pick(16u64, 64);
    let depths: Vec<u64> = scale.pick(vec![0, 1, 2, 4], vec![0, 1, 2, 3, 4, 8]);
    let lats: Vec<f64> = scale.pick(vec![1.0, 8.0], vec![1.0, 2.0, 4.0, 8.0, 16.0]);
    for &lat in &lats {
        let mut demand = 0u64;
        for &depth in &depths {
            let mut cfg = MachineConfig::small();
            cfg.hw_threads_per_unit = 16;
            let mut e = Engine::new(cfg);
            e.memory_mut().set_dram_latency_scale(lat);
            let plan = PercolationPlan {
                src_base: GAddr::dram(0, 0),
                tile_bytes: 4096,
                tiles,
                compute_per_tile: 120,
                depth,
            };
            let k = PercolateKernel::new(plan, SignalId(500));
            e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(k));
            let s = e.run();
            if depth == depths[0] {
                demand = s.now;
            }
            t.row(&[
                format!("{lat:.0}x"),
                depth.to_string(),
                s.now.to_string(),
                f2(demand as f64 / s.now.max(1) as f64),
            ]);
        }
    }
    t
}

/// A4 — grain-size crossover: overhead fraction of running N independent
/// tasks at each thread class, by task size. Quantifies §3.1.1's rule of
/// thumb that grain class must match task weight.
pub fn a4_grain_crossover(scale: Scale) -> Table {
    let mut t = Table::new(
        "A4 grain crossover: overhead of thread class vs task size",
        &["task_cycles", "class", "makespan", "overhead_frac"],
    );
    let tasks = scale.pick(32u64, 128);
    let sizes: Vec<u64> = scale.pick(
        vec![50, 1_000, 20_000],
        vec![50, 200, 1_000, 5_000, 20_000, 100_000],
    );
    for &size in &sizes {
        for (class, name) in [
            (SpawnClass::Tgt, "TGT"),
            (SpawnClass::Sgt, "SGT"),
            (SpawnClass::Lgt, "LGT"),
        ] {
            let mut cfg = MachineConfig::small();
            cfg.units_per_node = 4;
            cfg.hw_threads_per_unit = 2;
            let mut e = Engine::new(cfg);
            // One spawner thread issues all tasks (spawn cost charged to
            // it, per class), tasks spread across units.
            let mut i = 0u64;
            e.spawn_closure(Placement::Unit(0, 0), move |_| {
                if i < tasks {
                    i += 1;
                    htvm_sim::Effect::Spawn {
                        task: Box::new(compute_task(size)),
                        place: Placement::AnyWhere,
                        class,
                    }
                } else {
                    htvm_sim::Effect::Done
                }
            });
            let s = e.run();
            // Ideal: compute spread over the 4 units (hardware threads
            // overlap latency, not compute), no spawn/reap costs.
            let ideal = (tasks * size) as f64 / 4.0;
            t.row(&[
                size.to_string(),
                name.to_string(),
                s.now.to_string(),
                f3((s.now as f64 - ideal).max(0.0) / ideal),
            ]);
        }
    }
    t
}

/// A single-burst compute task of `size` cycles (A4's unit of work).
fn compute_task(size: u64) -> impl FnMut(&mut htvm_sim::TaskCtx) -> htvm_sim::Effect + Send {
    let mut phase = 0u8;
    move |_| {
        if phase == 0 {
            phase = 1;
            htvm_sim::Effect::Compute(size)
        } else {
            htvm_sim::Effect::Done
        }
    }
}

/// All ablations, in order.
pub fn run_all_ablations(scale: Scale) -> Vec<Table> {
    vec![
        a1_switch_cost(scale),
        a2_chunk_size(scale),
        a3_percolation_grid(scale),
        a4_grain_crossover(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_high_switch_cost_kills_throughput() {
        let t = a1_switch_cost(Scale::Quick);
        let thr = t.column_f64("accesses/kcyc");
        assert!(
            thr.last().unwrap() * 4.0 < thr[0],
            "OS-weight switching must collapse throughput: {thr:?}"
        );
    }

    #[test]
    fn a2_extreme_chunks_lose_to_moderate() {
        let t = a2_chunk_size(Scale::Quick);
        let get = |dist: &str, k: &str| -> f64 {
            t.cell("makespan", |r| r[0] == dist && r[1] == k)
                .unwrap()
                .parse()
                .unwrap()
        };
        // k=1 pays maximal dispatch overhead; k=8 is cheaper on random.
        assert!(get("random", "8") < get("random", "1"));
    }

    #[test]
    fn a3_deeper_prestage_never_slower() {
        let t = a3_percolation_grid(Scale::Quick);
        let speedups = t.column_f64("speedup_vs_demand");
        assert!(speedups.iter().all(|&s| s >= 0.99), "{speedups:?}");
    }

    #[test]
    fn a4_lgt_overhead_shrinks_with_task_size() {
        let t = a4_grain_crossover(Scale::Quick);
        let lgt: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[1] == "LGT")
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(
            lgt.last().unwrap() < &lgt[0],
            "LGT overhead fraction must fall as tasks grow: {lgt:?}"
        );
    }
}
