//! Perf-trajectory guard: compare a fresh quick-scale run against the
//! committed `BENCH_pool.json` baseline and flag regressions.
//!
//! The baseline is self-emitted JSON ([`crate::report::write_pool_baseline`]),
//! so the parser here is a deliberately minimal recursive-descent reader
//! of that dialect (objects, arrays, strings with the escapes
//! [`crate::table::Table::to_json`] produces) — no external JSON
//! dependency, and a parse failure on a hand-edited baseline is a loud
//! error rather than a silently skipped check.
//!
//! Guarded rows:
//!
//! * **E18** (`litlx-matmul` / `litlx-scan` / `md-force` × path ×
//!   topology): the `wall_ms` column — the end-to-end cost of the
//!   compile→schedule→execute pipeline, including the kernel-compile
//!   rows this guard exists for.
//! * **E5c** (queue ops): the `mutex_ns` and `lockfree_ns` columns — the
//!   scheduling spine's per-op costs.
//! * **E20** (elastic topology, `config` keyed): the `wall_ms` column —
//!   the autopilot's control loop must never make the adaptive run
//!   multiplicatively slower than its committed self.
//! * **E21** (chaos serving, `config` keyed, committed in
//!   `BENCH_serving.json`): the `wall_ms` column — the always-on fault
//!   containment machinery (`clean` row) and supervised recovery
//!   (`faults-1pct` row) must not drift multiplicatively. The p50/p99
//!   columns stay informational: µs-scale quick percentiles are too
//!   noisy for a shared-CI gate.
//!
//! A fresh value more than `factor` × its committed value is a
//! regression; a committed row or column the fresh run no longer
//! produces is also an issue (rows must be renamed by regenerating the
//! baseline, never silently dropped from the guard). The factor defaults
//! to 2.0 — quick-scale numbers on shared CI hosts are noisy, and the
//! guard is after multiplicative drifts, not percent-level tuning — and
//! can be overridden with the `HTVM_TRAJECTORY_FACTOR` environment
//! variable.

use crate::table::Table;

/// A parsed baseline document: scale label + the guarded tables.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// `"quick"` or `"full"` — fresh runs are only comparable to a
    /// baseline of the same scale.
    pub scale: String,
    /// The tables, in committed order.
    pub tables: Vec<Table>,
}

/// One divergence between the fresh run and the committed baseline.
#[derive(Debug, Clone)]
pub enum Issue {
    /// A fresh metric exceeded `factor` × the committed value.
    Regression {
        /// Baseline table id.
        table: String,
        /// Key cells joined with `/` (e.g. `litlx-matmul/ssp-comp/flat`).
        key: String,
        /// Metric column name.
        column: String,
        /// Committed value.
        committed: f64,
        /// Freshly measured value.
        fresh: f64,
    },
    /// A committed row has no counterpart in the fresh run.
    MissingRow {
        /// Baseline table id.
        table: String,
        /// Key cells joined with `/`.
        key: String,
    },
    /// A whole committed table has no counterpart in the fresh run.
    MissingTable {
        /// Baseline table id.
        table: String,
    },
}

impl std::fmt::Display for Issue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Issue::Regression {
                table,
                key,
                column,
                committed,
                fresh,
            } => write!(
                f,
                "REGRESSION [{table}] {key} {column}: {committed} -> {fresh} ({:.2}x)",
                fresh / committed
            ),
            Issue::MissingRow { table, key } => {
                write!(f, "MISSING ROW [{table}] {key}: not produced by fresh run")
            }
            Issue::MissingTable { table } => {
                write!(f, "MISSING TABLE [{table}]: not produced by fresh run")
            }
        }
    }
}

/// The regression factor: `HTVM_TRAJECTORY_FACTOR` or 2.0.
pub fn factor_from_env() -> f64 {
    std::env::var("HTVM_TRAJECTORY_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|f: &f64| *f > 1.0)
        .unwrap_or(2.0)
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the self-emitted baseline dialect.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "baseline JSON: expected `{}` at byte {}, found {:?}",
                c as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => self.string().map(Json::Str),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(_) => {
                // Number / true / false / null: capture the raw token as a
                // string — the comparator parses metric cells itself.
                let start = self.pos;
                while self
                    .b
                    .get(self.pos)
                    .is_some_and(|c| !b",]}\t\r\n ".contains(c))
                {
                    self.pos += 1;
                }
                Ok(Json::Str(
                    String::from_utf8_lossy(&self.b[start..self.pos]).into_owned(),
                ))
            }
            None => Err("baseline JSON: unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos).copied() {
                None => return Err("baseline JSON: unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .b
                        .get(self.pos)
                        .copied()
                        .ok_or("baseline JSON: dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or("baseline JSON: truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "baseline JSON: non-ascii \\u escape")?,
                                16,
                            )
                            .map_err(|_| "baseline JSON: bad \\u escape")?;
                            // Surrogate pairs don't occur in our emitter;
                            // map unpaired surrogates to the replacement
                            // char rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "baseline JSON: unsupported escape `\\{}`",
                                other as char
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let s = std::str::from_utf8(&self.b[self.pos..])
                        .map_err(|_| "baseline JSON: invalid UTF-8")?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("baseline JSON: bad array delimiter {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("baseline JSON: bad object delimiter {other:?}")),
            }
        }
    }
}

/// Parse a committed `BENCH_pool.json` document.
pub fn parse_baseline(doc: &str) -> Result<Baseline, String> {
    let mut r = Reader {
        b: doc.as_bytes(),
        pos: 0,
    };
    let root = r.object()?;
    let scale = root
        .get("scale")
        .and_then(Json::as_str)
        .ok_or("baseline JSON: missing `scale`")?
        .to_string();
    let mut tables = Vec::new();
    for jt in root
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or("baseline JSON: missing `tables`")?
    {
        let title = jt
            .get("id")
            .and_then(Json::as_str)
            .ok_or("baseline JSON: table missing `id`")?;
        let cols: Vec<&str> = jt
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or("baseline JSON: table missing `columns`")?
            .iter()
            .filter_map(Json::as_str)
            .collect();
        let mut t = Table::new(title, &cols);
        for jr in jt
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("baseline JSON: table missing `rows`")?
        {
            let cells: Vec<String> = jr
                .as_arr()
                .ok_or("baseline JSON: row is not an array")?
                .iter()
                .filter_map(|c| c.as_str().map(str::to_string))
                .collect();
            t.row(&cells);
        }
        tables.push(t);
    }
    Ok(Baseline { scale, tables })
}

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

/// What to guard: tables by title prefix, rows keyed by `key_cols`,
/// compared on `metric_cols`.
struct Guard {
    prefix: &'static str,
    key_cols: &'static [&'static str],
    metric_cols: &'static [&'static str],
}

const GUARDS: &[Guard] = &[
    Guard {
        prefix: "E18",
        key_cols: &["workload", "path", "topology"],
        metric_cols: &["wall_ms"],
    },
    Guard {
        prefix: "E5c",
        key_cols: &["op", "stealers"],
        metric_cols: &["mutex_ns", "lockfree_ns"],
    },
    Guard {
        prefix: "E20",
        key_cols: &["config"],
        metric_cols: &["wall_ms"],
    },
    Guard {
        prefix: "E21",
        key_cols: &["config"],
        metric_cols: &["wall_ms"],
    },
];

fn row_key(t: &Table, row: &[String], key_cols: &[&str]) -> Option<String> {
    let mut parts = Vec::new();
    for k in key_cols {
        parts.push(row.get(t.col(k)?)?.clone());
    }
    Some(parts.join("/"))
}

/// Compare a fresh run's tables against the committed baseline. Every
/// guarded committed row must be reproduced and stay within `factor` ×
/// its committed metrics.
pub fn compare(baseline: &Baseline, fresh: &[&Table], factor: f64) -> Vec<Issue> {
    let mut issues = Vec::new();
    for g in GUARDS {
        let committed: Vec<&Table> = baseline
            .tables
            .iter()
            .filter(|t| t.title.starts_with(g.prefix))
            .collect();
        for ct in committed {
            let Some(ft) = fresh.iter().find(|t| t.title == ct.title) else {
                issues.push(Issue::MissingTable {
                    table: ct.title.clone(),
                });
                continue;
            };
            for crow in &ct.rows {
                let Some(key) = row_key(ct, crow, g.key_cols) else {
                    continue; // committed table predates these columns
                };
                let frow = ft
                    .rows
                    .iter()
                    .find(|r| row_key(ft, r, g.key_cols).as_deref() == Some(key.as_str()));
                let Some(frow) = frow else {
                    issues.push(Issue::MissingRow {
                        table: ct.title.clone(),
                        key,
                    });
                    continue;
                };
                for m in g.metric_cols {
                    let cv = ct
                        .col(m)
                        .and_then(|i| crow.get(i))
                        .and_then(|c| c.parse::<f64>().ok());
                    let fv = ft
                        .col(m)
                        .and_then(|i| frow.get(i))
                        .and_then(|c| c.parse::<f64>().ok());
                    // Unparsable committed cells ("-") are unguarded.
                    if let (Some(cv), Some(fv)) = (cv, fv) {
                        // Sub-resolution committed values (0.00 after
                        // rounding) cannot anchor a ratio.
                        if cv > 0.0 && fv > cv * factor {
                            issues.push(Issue::Regression {
                                table: ct.title.clone(),
                                key: key.clone(),
                                column: m.to_string(),
                                committed: cv,
                                fresh: fv,
                            });
                        }
                    }
                }
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::summary_json;

    fn e18_table(wall: &str) -> Table {
        let mut t = Table::new(
            "E18 SSP native execution: naive vs pipelined \u{d7} topology",
            &["workload", "path", "topology", "wall_ms", "check"],
        );
        t.push(&["litlx-matmul", "ssp-comp", "flat", wall, "6714"]);
        t
    }

    #[test]
    fn baseline_round_trips_through_the_emitted_json() {
        let t = e18_table("0.10");
        let doc = summary_json("x", &[&t]).replace(
            "{\"experiment\":\"x\"",
            "{\"experiment\":\"x\",\"scale\":\"quick\"",
        );
        let b = parse_baseline(&doc).expect("parses");
        assert_eq!(b.scale, "quick");
        assert_eq!(b.tables.len(), 1);
        assert_eq!(b.tables[0].title, t.title);
        assert_eq!(b.tables[0].rows, t.rows);
    }

    #[test]
    fn unicode_escapes_decode() {
        let b = parse_baseline(
            "{\"scale\":\"quick\",\"tables\":[{\"id\":\"E18 a\\u2192b\",\"columns\":[\"c\"],\"rows\":[[\"1\"]]}]}",
        )
        .expect("parses");
        assert_eq!(b.tables[0].title, "E18 a\u{2192}b");
    }

    #[test]
    fn within_factor_passes_and_beyond_factor_fails() {
        let base = Baseline {
            scale: "quick".to_string(),
            tables: vec![e18_table("0.10")],
        };
        assert!(compare(&base, &[&e18_table("0.19")], 2.0).is_empty());
        let issues = compare(&base, &[&e18_table("0.25")], 2.0);
        assert_eq!(issues.len(), 1);
        match &issues[0] {
            Issue::Regression {
                key,
                column,
                committed,
                fresh,
                ..
            } => {
                assert_eq!(key, "litlx-matmul/ssp-comp/flat");
                assert_eq!(column, "wall_ms");
                assert_eq!((*committed, *fresh), (0.10, 0.25));
            }
            other => panic!("expected a regression, got {other:?}"),
        }
        // A looser factor lets the same pair pass.
        assert!(compare(&base, &[&e18_table("0.25")], 3.0).is_empty());
    }

    #[test]
    fn committed_rows_cannot_silently_vanish() {
        let base = Baseline {
            scale: "quick".to_string(),
            tables: vec![e18_table("0.10")],
        };
        let mut renamed = e18_table("0.10");
        renamed.rows[0][1] = "ssp".to_string();
        let issues = compare(&base, &[&renamed], 2.0);
        assert!(
            matches!(&issues[0], Issue::MissingRow { key, .. } if key == "litlx-matmul/ssp-comp/flat"),
            "{issues:?}"
        );
        let issues = compare(&base, &[], 2.0);
        assert!(
            matches!(&issues[0], Issue::MissingTable { .. }),
            "{issues:?}"
        );
    }

    #[test]
    fn unparsable_cells_are_unguarded() {
        let mut ct = e18_table("0.10");
        ct.rows[0][3] = "-".to_string();
        let base = Baseline {
            scale: "quick".to_string(),
            tables: vec![ct],
        };
        assert!(compare(&base, &[&e18_table("99.0")], 2.0).is_empty());
    }
}
