//! CI perf-trajectory guard: re-run the guarded experiments at quick
//! scale and fail (exit 1) if any committed `BENCH_pool.json` row
//! regressed by more than the factor (default 2.0,
//! `HTVM_TRAJECTORY_FACTOR` to override) — see `htvm_bench::trajectory`.

use htvm_bench::experiments::{e18_ssp_native, e20_elastic, e5c_queue_ops, Scale};
use htvm_bench::report::pool_baseline_path;
use htvm_bench::trajectory::{compare, factor_from_env, parse_baseline};

fn main() {
    let path = pool_baseline_path();
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trajectory check: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let baseline = match parse_baseline(&doc) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trajectory check: {e}");
            std::process::exit(1);
        }
    };
    if baseline.scale != "quick" {
        eprintln!(
            "trajectory check: committed baseline is `{}` scale; regenerate it with \
             `cargo run -p htvm-bench --release --bin all -- --quick`",
            baseline.scale
        );
        std::process::exit(1);
    }
    let factor = factor_from_env();
    println!(
        "trajectory check: factor {factor}x against {}",
        path.display()
    );
    let fresh = [
        e5c_queue_ops(Scale::Quick),
        e18_ssp_native(Scale::Quick),
        e20_elastic(Scale::Quick),
    ];
    let refs: Vec<&htvm_bench::Table> = fresh.iter().collect();
    let issues = compare(&baseline, &refs, factor);
    for t in &refs {
        t.print();
    }
    if issues.is_empty() {
        println!("trajectory check: all guarded rows within {factor}x of baseline");
        return;
    }
    for i in &issues {
        eprintln!("{i}");
    }
    eprintln!("trajectory check: {} issue(s)", issues.len());
    std::process::exit(1);
}
