//! CI perf-trajectory guard: re-run the guarded experiments at quick
//! scale and fail (exit 1) if any committed `BENCH_pool.json` or
//! `BENCH_serving.json` row regressed by more than the factor (default
//! 2.0, `HTVM_TRAJECTORY_FACTOR` to override) — see
//! `htvm_bench::trajectory`.

use htvm_bench::experiments::{e18_ssp_native, e20_elastic, e21_chaos, e5c_queue_ops, Scale};
use htvm_bench::report::{pool_baseline_path, serving_baseline_path};
use htvm_bench::trajectory::{compare, factor_from_env, parse_baseline, Baseline};

fn load_quick_baseline(path: &std::path::Path, regen_hint: &str) -> Baseline {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trajectory check: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let baseline = match parse_baseline(&doc) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trajectory check: {e}");
            std::process::exit(1);
        }
    };
    if baseline.scale != "quick" {
        eprintln!(
            "trajectory check: committed baseline {} is `{}` scale; regenerate it with \
             `{regen_hint}`",
            path.display(),
            baseline.scale
        );
        std::process::exit(1);
    }
    baseline
}

fn main() {
    let factor = factor_from_env();
    let mut issues = Vec::new();

    let pool_path = pool_baseline_path();
    let pool = load_quick_baseline(
        &pool_path,
        "cargo run -p htvm-bench --release --bin all -- --quick",
    );
    println!(
        "trajectory check: factor {factor}x against {}",
        pool_path.display()
    );
    let fresh_pool = [
        e5c_queue_ops(Scale::Quick),
        e18_ssp_native(Scale::Quick),
        e20_elastic(Scale::Quick),
    ];
    let refs: Vec<&htvm_bench::Table> = fresh_pool.iter().collect();
    issues.extend(compare(&pool, &refs, factor));
    for t in &refs {
        t.print();
    }

    let serving_path = serving_baseline_path();
    let serving = load_quick_baseline(
        &serving_path,
        "cargo run -p htvm-bench --release --bin e21_chaos -- --quick",
    );
    println!(
        "trajectory check: factor {factor}x against {}",
        serving_path.display()
    );
    // Only E21 is guarded in the serving baseline (E19's percentile rows
    // are informational), so only E21 is re-run here.
    let fresh_serving = [e21_chaos(Scale::Quick)];
    let refs: Vec<&htvm_bench::Table> = fresh_serving.iter().collect();
    issues.extend(compare(&serving, &refs, factor));
    for t in &refs {
        t.print();
    }

    if issues.is_empty() {
        println!("trajectory check: all guarded rows within {factor}x of baseline");
        return;
    }
    for i in &issues {
        eprintln!("{i}");
    }
    eprintln!("trajectory check: {} issue(s)", issues.len());
    std::process::exit(1);
}
