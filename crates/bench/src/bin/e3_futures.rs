//! Report binary for e3_futures: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e3_futures(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e3_futures", &[&t]);
}
