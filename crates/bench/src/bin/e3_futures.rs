//! Report binary for e3_futures: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e3_futures(htvm_bench::experiments::Scale::Full).print();
}
