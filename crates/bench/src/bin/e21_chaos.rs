//! Report binary for e21_chaos: the clean-vs-faulted serving experiment
//! (PR-10 supervision surface). Prints the chaos table, honours
//! `--json <path>` / `HTVM_BENCH_JSON`, and refreshes the E21 rows of
//! `BENCH_serving.json` (E19 rows of the same scale are carried over).
//! `--quick` runs the reduced sweep (what CI's trajectory guard uses).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        htvm_bench::experiments::Scale::Quick
    } else {
        htvm_bench::experiments::Scale::Full
    };
    let t = htvm_bench::experiments::e21_chaos(scale);
    htvm_bench::report::emit("e21_chaos", &[&t]);
    htvm_bench::report::write_serving_baseline(if quick { "quick" } else { "full" }, &[&t]);
}
