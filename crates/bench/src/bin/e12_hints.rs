//! Report binary for e12_hints: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e12_hints(htvm_bench::experiments::Scale::Full).print();
}
