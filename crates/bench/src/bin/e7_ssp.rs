//! Report binary for e7_ssp: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e7_ssp(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e7_ssp", &[&t]);
}
