//! Report binary for e7_ssp: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e7_ssp(htvm_bench::experiments::Scale::Full).print();
}
