//! Report binary for e5_spawn_costs: prints the full-scale experiment tables
//! (simulated grain costs + native-pool park/wake costs + scheduling-spine
//! queue-op costs) and honours `--json <path>` / `HTVM_BENCH_JSON` for a
//! machine-readable summary (see `htvm_bench::report`).
fn main() {
    let grains = htvm_bench::experiments::e5_spawn_costs(htvm_bench::experiments::Scale::Full);
    let native = htvm_bench::experiments::e5b_native_spawn(htvm_bench::experiments::Scale::Full);
    let queues = htvm_bench::experiments::e5c_queue_ops(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e5_spawn_costs", &[&grains, &native, &queues]);
}
