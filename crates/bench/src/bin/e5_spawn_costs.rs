//! Report binary for e5_spawn_costs: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e5_spawn_costs(htvm_bench::experiments::Scale::Full).print();
}
