//! Report binary for e5_spawn_costs: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e5_spawn_costs(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e5_spawn_costs", &[&t]);
}
