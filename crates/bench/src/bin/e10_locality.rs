//! Report binary for e10_locality: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e10_locality(htvm_bench::experiments::Scale::Full).print();
}
