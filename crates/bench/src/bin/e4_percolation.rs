//! Report binary for e4_percolation: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e4_percolation(htvm_bench::experiments::Scale::Full).print();
}
