//! Report binary for e14_neocortex: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e14_neocortex(htvm_bench::experiments::Scale::Full).print();
}
