//! Report binary for e16_litlx: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e16_litlx(htvm_bench::experiments::Scale::Full).print();
}
