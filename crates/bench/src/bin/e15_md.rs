//! Report binary for e15_md: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e15_md(htvm_bench::experiments::Scale::Full).print();
}
