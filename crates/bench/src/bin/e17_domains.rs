//! Report binary for e17_domains: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e17_domains(htvm_bench::experiments::Scale::Full).print();
}
