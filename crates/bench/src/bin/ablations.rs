//! Run the A1–A4 ablation sweeps, print all tables, and honour
//! `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable summary.
fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        htvm_bench::experiments::Scale::Quick
    } else {
        htvm_bench::experiments::Scale::Full
    };
    let tables = htvm_bench::experiments::run_all_ablations(scale);
    htvm_bench::report::emit("ablations", &tables.iter().collect::<Vec<_>>());
}
