//! Run the A1–A4 ablation sweeps and print all tables.
fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        htvm_bench::experiments::Scale::Quick
    } else {
        htvm_bench::experiments::Scale::Full
    };
    for table in htvm_bench::experiments::run_all_ablations(scale) {
        table.print();
    }
}
