//! Report binary for e19_serving: the open-loop multi-tenant serving
//! experiment. Prints the latency/conservation table, honours
//! `--json <path>` / `HTVM_BENCH_JSON`, and always refreshes
//! `BENCH_serving.json` — the serving baseline future PRs diff against.
//! `--quick` runs the reduced sweep (what CI's shape check uses).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        htvm_bench::experiments::Scale::Quick
    } else {
        htvm_bench::experiments::Scale::Full
    };
    let t = htvm_bench::experiments::e19_serving(scale);
    htvm_bench::report::emit("e19_serving", &[&t]);
    htvm_bench::report::write_serving_baseline(if quick { "quick" } else { "full" }, &[&t]);
}
