//! Report binary for e8_ssp_mt: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e8_ssp_mt(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e8_ssp_mt", &[&t]);
}
