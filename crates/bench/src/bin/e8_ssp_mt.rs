//! Report binary for e8_ssp_mt: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e8_ssp_mt(htvm_bench::experiments::Scale::Full).print();
}
