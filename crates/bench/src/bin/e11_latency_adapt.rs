//! Report binary for e11_latency_adapt: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e11_latency_adapt(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e11_latency_adapt", &[&t]);
}
