//! Report binary for e11_latency_adapt: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e11_latency_adapt(htvm_bench::experiments::Scale::Full).print();
}
