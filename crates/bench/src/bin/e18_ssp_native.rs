//! Report binary for e18_ssp_native: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e18_ssp_native(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e18_ssp_native", &[&t]);
}
