//! Report binary for e9_load_balance: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e9_load_balance(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e9_load_balance", &[&t]);
}
