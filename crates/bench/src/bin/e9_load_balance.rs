//! Report binary for e9_load_balance: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e9_load_balance(htvm_bench::experiments::Scale::Full).print();
}
