//! Report binary for e2_parcels: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e2_parcels(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e2_parcels", &[&t]);
}
