//! Report binary for e2_parcels: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e2_parcels(htvm_bench::experiments::Scale::Full).print();
}
