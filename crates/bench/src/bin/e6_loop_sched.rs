//! Report binary for e6_loop_sched: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e6_loop_sched(htvm_bench::experiments::Scale::Full).print();
}
