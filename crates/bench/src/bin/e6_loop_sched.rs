//! Report binary for e6_loop_sched: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e6_loop_sched(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e6_loop_sched", &[&t]);
}
