//! Run every experiment of the reproduction, print all tables, honour
//! `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable summary,
//! and always refresh `BENCH_pool.json` — the pool-perf baseline
//! (e5/e5b/e5c spawn+queue costs, e17 topology traffic, e18 SSP-native)
//! and `BENCH_serving.json` (e19 serving latency/conservation, e21 chaos
//! serving) — the baselines future PRs compare their numbers against.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        htvm_bench::experiments::Scale::Quick
    } else {
        htvm_bench::experiments::Scale::Full
    };
    let tables = htvm_bench::experiments::run_all(scale);
    let refs = tables.iter().collect::<Vec<_>>();
    htvm_bench::report::emit("all", &refs);
    let scale_label = if quick { "quick" } else { "full" };
    htvm_bench::report::write_pool_baseline(scale_label, &refs);
    htvm_bench::report::write_serving_baseline(scale_label, &refs);
}
