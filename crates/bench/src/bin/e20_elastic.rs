//! Report binary for e20_elastic: adaptive bubble placement + elastic
//! workers vs static placement on a skewed multi-tenant load. Prints
//! the comparison table and honours `--json <path>` /
//! `HTVM_BENCH_JSON`. `--quick` runs the reduced sweep (what CI's
//! shape check uses).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        htvm_bench::experiments::Scale::Quick
    } else {
        htvm_bench::experiments::Scale::Full
    };
    let t = htvm_bench::experiments::e20_elastic(scale);
    htvm_bench::report::emit("e20_elastic", &[&t]);
}
