//! Report binary for e13_monitor: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e13_monitor(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e13_monitor", &[&t]);
}
