//! Report binary for e13_monitor: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e13_monitor(htvm_bench::experiments::Scale::Full).print();
}
