//! Report binary for e1_latency_tolerance: prints the full-scale experiment table and
//! honours `--json <path>` / `HTVM_BENCH_JSON` for a machine-readable
//! summary (see `htvm_bench::report`).
fn main() {
    let t = htvm_bench::experiments::e1_latency_tolerance(htvm_bench::experiments::Scale::Full);
    htvm_bench::report::emit("e1_latency_tolerance", &[&t]);
}
