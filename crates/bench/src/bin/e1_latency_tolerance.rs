//! Report binary for e1_latency_tolerance: prints the full-scale experiment table.
fn main() {
    htvm_bench::experiments::e1_latency_tolerance(htvm_bench::experiments::Scale::Full).print();
}
