//! Property tests for the weighted deficit-round-robin dispatcher.
//!
//! These drive the pure [`Wdrr`] scheduler (no threads, no clocks, so
//! the properties are exact and deterministic on 1-CPU CI): over
//! randomized weight vectors, per-request costs and arrival bursts, the
//! completed-work share of every backlogged tenant converges to its
//! weight share within a bounded deficit — and no admitted backlogged
//! tenant starves.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use htvm_serve::Wdrr;
use proptest::prelude::*;

/// Run `rounds` rounds over the given queues of per-request costs;
/// returns the total *cost* dispatched per tenant.
fn run_rounds(w: &mut Wdrr, queues: &mut [VecDeque<u64>], rounds: usize, budget: u64) -> Vec<u64> {
    let served: Vec<Cell<u64>> = queues.iter().map(|_| Cell::new(0)).collect();
    let q = RefCell::new(queues.to_vec());
    for _ in 0..rounds {
        w.round(
            budget,
            |k| q.borrow()[k].front().copied(),
            |k| {
                let cost = q.borrow_mut()[k]
                    .pop_front()
                    .expect("dispatch of empty head");
                served[k].set(served[k].get() + cost.max(1));
            },
        );
    }
    queues.clone_from_slice(&q.into_inner());
    served.into_iter().map(Cell::into_inner).collect()
}

proptest! {
    /// **Bounded-deficit fairness.** While every tenant stays
    /// backlogged and the round budget never binds, the cost tenant
    /// `t` dispatches over `R` rounds lies within one maximum request
    /// cost of `R × quantum × weight(t)` — so work share converges to
    /// weight share as `R` grows. Starvation (zero service for a
    /// backlogged tenant over a full window) is a hard failure of the
    /// lower bound.
    #[test]
    fn backlogged_share_converges_to_weight_share(
        weights in proptest::collection::vec(1u64..=8, 2..=6),
        costs in proptest::collection::vec(1u64..=5, 2..=6),
        quantum in 1u64..=8,
        rounds in 8usize..=48,
    ) {
        let n = weights.len().min(costs.len());
        let weights = &weights[..n];
        let costs = &costs[..n];
        let max_cost = *costs.iter().max().unwrap();

        let mut w = Wdrr::new(quantum);
        for (k, &wt) in weights.iter().enumerate() {
            w.ensure(k, wt);
        }
        // Deep enough backlogs that nobody drains inside the window.
        let mut queues: Vec<VecDeque<u64>> = costs
            .iter()
            .map(|&c| {
                let per_round = quantum * 8 / c + 2;
                std::iter::repeat_n(c, per_round as usize * (rounds + 1)).collect()
            })
            .collect();

        let served = run_rounds(&mut w, &mut queues, rounds, u64::MAX);

        for (k, &got) in served.iter().enumerate() {
            let ideal = rounds as u64 * quantum * weights[k];
            prop_assert!(
                got <= ideal,
                "tenant {k} overdrew its credit: served {got} > ideal {ideal}"
            );
            prop_assert!(
                ideal - got < max_cost,
                "tenant {k} starved beyond the deficit bound: served {got}, \
                 ideal {ideal}, max request cost {max_cost}"
            );
            prop_assert!(!queues[k].is_empty(), "test bug: backlog drained");
        }
    }

    /// **No starvation under bursty arrivals.** Requests arrive in
    /// random bursts; with a non-binding budget, enough extra rounds
    /// always drain *every* queue — i.e. no request is deferred
    /// forever, whatever the weights.
    #[test]
    fn bursty_arrivals_always_drain(
        weights in proptest::collection::vec(1u64..=8, 2..=5),
        bursts in proptest::collection::vec(
            proptest::collection::vec((0usize..5, 1u64..=4, 0usize..=6), 0..4),
            4..=16,
        ),
    ) {
        let n = weights.len();
        let mut w = Wdrr::new(1);
        for (k, &wt) in weights.iter().enumerate() {
            w.ensure(k, wt);
        }
        let queues: Vec<RefCell<VecDeque<u64>>> =
            (0..n).map(|_| RefCell::new(VecDeque::new())).collect();
        let mut submitted = 0u64;
        let mut submitted_cost = 0u64;
        let served = Cell::new(0u64);
        let one_round = |w: &mut Wdrr| {
            w.round(
                u64::MAX,
                |k| queues[k].borrow().front().copied(),
                |k| {
                    queues[k].borrow_mut().pop_front();
                    served.set(served.get() + 1);
                },
            );
        };
        // Arrival phase: each entry is one round preceded by a burst.
        for round in &bursts {
            for &(tenant, cost, count) in round {
                let tenant = tenant % n;
                for _ in 0..count {
                    queues[tenant].borrow_mut().push_back(cost);
                    submitted += 1;
                    submitted_cost += cost;
                }
            }
            one_round(&mut w);
        }
        // Drain phase: every pending request must eventually dispatch.
        // A head of cost `c` needs at most `c` rounds of accrual
        // (weight ≥ 1, quantum 1) before it is covered, so the total
        // submitted cost bounds the rounds needed to drain everything.
        for _ in 0..submitted_cost {
            if queues.iter().all(|q| q.borrow().is_empty()) {
                break;
            }
            one_round(&mut w);
        }
        prop_assert!(
            queues.iter().all(|q| q.borrow().is_empty()),
            "starvation: {} of {} requests never dispatched",
            submitted - served.get(),
            submitted
        );
        prop_assert_eq!(served.get(), submitted);
    }

    /// **A binding budget cannot starve anyone structurally.** Even
    /// when the per-round budget is far below aggregate demand, cursor
    /// rotation guarantees every backlogged tenant makes progress over
    /// a long enough window.
    #[test]
    fn binding_budget_still_serves_everyone(
        weights in proptest::collection::vec(1u64..=8, 2..=5),
        budget in 1u64..=3,
    ) {
        let n = weights.len();
        let mut w = Wdrr::new(2);
        for (k, &wt) in weights.iter().enumerate() {
            w.ensure(k, wt);
        }
        let mut queues: Vec<VecDeque<u64>> = (0..n)
            .map(|_| std::iter::repeat_n(1u64, 4096).collect())
            .collect();
        let rounds = 64 * n;
        let served = run_rounds(&mut w, &mut queues, rounds, budget);
        for (k, &got) in served.iter().enumerate() {
            prop_assert!(
                got > 0,
                "tenant {k} (weight {}) starved under budget {budget}: {served:?}",
                weights[k]
            );
        }
    }
}
