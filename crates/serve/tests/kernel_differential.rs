//! Differential test: the same faulting LITL-X kernel, run under both
//! kernel modes, surfaces through the serving layer as the same typed
//! [`Outcome::Failed`] — never a panic and never a hang.
//!
//! The kernel's nested `forall` stores past the end of a 10-element
//! array (max index 31). Under [`KernelMode::Compiled`] the checked
//! run-at-a-time body traps it as a `KernelFault`; under
//! [`KernelMode::Interpreted`] the point-at-a-time tape reports the
//! same condition. Both are carried out of the request body by
//! [`NativeParcel::fallible`] and recovered by the server as a
//! `RequestFault` at site `"kernel"` with identical text.

use htvm_core::{Htvm, HtvmConfig};
use htvm_serve::{NativeParcel, Outcome, RequestFault, Server, ServerConfig, TenantConfig};
use litlx::lang::{parse, Interp, KernelMode, LoopStrategy};

const FAULTY_SRC: &str = "fn main() {
    let a = array(10);
    forall i in 0..8 {
      forall j in 0..4 { a[i * 4 + j] = 1; }
    } }";

/// Submit the faulting kernel through a fresh server and return the
/// typed fault the request resolved to.
fn fault_through_server(mode: KernelMode) -> RequestFault {
    let htvm = Htvm::new(HtvmConfig::default());
    let server = Server::new(&htvm, ServerConfig::default());
    let tenant = server.register_tenant(TenantConfig::weighted(1));
    let resp = tenant
        .submit(NativeParcel::fallible(move |_ctx| {
            let prog = parse(FAULTY_SRC).expect("kernel parses");
            Interp::new(2)
                .with_strategy(LoopStrategy::Ssp)
                .with_kernel_mode(mode)
                .run(&prog)
                .map(|_| ())
        }))
        .expect("request admitted");
    let outcome = resp.wait();
    let stats = tenant.stats();
    assert_eq!(stats.failed, 1, "the kernel fault must be accounted");
    assert_eq!(stats.completed, 0);
    server.shutdown();
    match outcome {
        Outcome::Failed(fault) => fault,
        other => panic!("expected Outcome::Failed, got {other:?}"),
    }
}

#[test]
fn kernel_fault_is_typed_and_identical_under_both_kernel_modes() {
    let compiled = fault_through_server(KernelMode::Compiled);
    let interpreted = fault_through_server(KernelMode::Interpreted);

    // Never a panic: both resolved to a typed fault at the kernel site.
    assert_eq!(compiled.site, "kernel");
    assert_eq!(interpreted.site, "kernel");

    // Differential: the compiled checked path formats its `KernelFault`
    // with the interpreter's exact wording, so the two modes report the
    // same failure, verbatim.
    assert_eq!(compiled, interpreted);
    assert!(
        compiled
            .message
            .contains("out of bounds for array of length 10"),
        "got: {}",
        compiled.message
    );
}

#[test]
fn kernel_fault_text_matches_a_direct_run() {
    // The fault the server reports is exactly the error a direct
    // `Interp::run` returns — serving adds typing, not translation.
    let prog = parse(FAULTY_SRC).expect("kernel parses");
    let direct = Interp::new(2)
        .with_strategy(LoopStrategy::Ssp)
        .run(&prog)
        .expect_err("the kernel faults");
    let served = fault_through_server(KernelMode::Compiled);
    assert_eq!(served.message, direct);
}
