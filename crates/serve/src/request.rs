//! Request-side types: the typed outcome of a submission and the
//! handle a client holds while its parcel is in flight.
//!
//! Every admitted request resolves to **exactly one** [`Outcome`],
//! delivered through a dataflow [`IVar`] — the same write-once cell
//! the runtime uses for LGT results. Exactly-once is enforced by a
//! per-request **settle gate** (`ReqState::settle`): a single CAS
//! that elects the one resolver among every party that might race to
//! deliver an outcome — the finish guard on a worker, the cancel hook
//! on the client's token, a shed on the dispatcher, a supervision
//! drop during a dispatcher restart. The [`CancelToken`] state
//! machine still arbitrates *claim vs cancel* per attempt, but with
//! retries a request can span several attempt tokens, so the token
//! CAS alone is no longer the request-level authority.
//!
//! Failures are **typed, never silent**: a panicking body, an
//! injected fault, a kernel trap — all settle as
//! [`Outcome::Failed`] with a [`RequestFault`] naming the failure
//! site. No client ever hangs on a `wait()` because an attempt died;
//! the finish guard's drop path settles the request even when the
//! executing thread is killed mid-flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use htvm_core::{CancelToken, IVar};

/// Why the serving layer refused to run an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Shed under overload: total queued work crossed the server's
    /// watermark and this tenant's weight lost the triage.
    Overload,
    /// The tenant was closed while the request was still queued.
    TenantClosed,
    /// The server shut down while the request was still queued.
    ServerShutdown,
}

/// A typed execution failure: *where* an attempt died and *why*.
///
/// Carried by [`Outcome::Failed`]. The `site` is a stable,
/// dot-separated label in the same namespace as the fault plane's
/// injection sites (`htvm_core::faults`) — an injected fault surfaces
/// with the site it was injected at (e.g. `worker.body`), a kernel
/// trap as `kernel`, an ordinary panicking body as `request.body`,
/// and a request abandoned by a dying dispatcher as
/// `serve.abandoned`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFault {
    /// Stable failure-site label (see type docs).
    pub site: &'static str,
    /// Human-readable description recovered from the panic payload.
    pub message: String,
}

impl RequestFault {
    pub(crate) fn new(site: &'static str, message: impl Into<String>) -> Self {
        Self {
            site,
            message: message.into(),
        }
    }

    /// Classify a caught panic payload into a typed fault.
    pub(crate) fn from_payload(payload: &(dyn std::any::Any + Send)) -> Self {
        if let Some(f) = htvm_core::faults::injected_from_payload(payload) {
            return Self::new(f.site, f.to_string());
        }
        if let Some(k) = payload.downcast_ref::<litlx::ParcelFault>() {
            return Self::new("kernel", k.message.clone());
        }
        Self::new("request.body", htvm_core::faults::describe_payload(payload))
    }
}

impl std::fmt::Display for RequestFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request failed at {}: {}", self.site, self.message)
    }
}

/// The terminal state of a submitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The request's action ran to completion on the pool.
    Completed,
    /// The request's [`CancelToken`] resolved cancelled (explicit
    /// cancel or deadline expiry) before the action ran.
    Cancelled,
    /// The request failed — its action panicked, hit an injected
    /// fault, trapped in a kernel, or was abandoned by a dying
    /// dispatcher — and its retry policy (if any) is exhausted. The
    /// fault names the failure site; the pool and server survived.
    Failed(RequestFault),
    /// The serving layer refused to run the request (typed shed).
    Rejected(RejectReason),
}

/// Why a submission was refused at the admission boundary (the request
/// never entered the system; there is no handle and no outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's bounded admission queue is full — backpressure;
    /// retry later or shed client-side.
    QueueFull,
    /// The tenant has been closed (or the server shut down); do not
    /// retry.
    TenantClosed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "tenant admission queue is full"),
            SubmitError::TenantClosed => write!(f, "tenant is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Shared per-request state: the write-once outcome cell plus the
/// settle gate that elects its single writer.
pub(crate) struct ReqState {
    pub(crate) outcome: IVar<Outcome>,
    settled: AtomicBool,
}

impl ReqState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            outcome: IVar::new(),
            settled: AtomicBool::new(false),
        })
    }

    /// Deliver the request's one outcome. The first caller wins the
    /// gate, runs `count` (its accounting bump), writes the cell, and
    /// gets `true`; every later caller is a no-op returning `false`.
    /// Counting only on a win is what keeps the conservation ledger
    /// exact under races between finish, cancel, shed and supervision
    /// paths; counting *before* the cell is written means any thread
    /// that observes the outcome (the `put` releases, `wait`'s read
    /// acquires) also observes the bump — so a ledger read taken
    /// after `wait` returns never runs ahead of the stats.
    pub(crate) fn settle(&self, outcome: Outcome, count: impl FnOnce()) -> bool {
        if self
            .settled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            count();
            self.outcome.put(outcome);
            true
        } else {
            false
        }
    }
}

/// The client's handle to an admitted request.
pub struct ResponseHandle {
    pub(crate) state: Arc<ReqState>,
    pub(crate) token: CancelToken,
}

impl ResponseHandle {
    /// Block until the request resolves. Call from client threads, not
    /// from pool workers (it parks the calling thread).
    pub fn wait(&self) -> Outcome {
        self.state.outcome.get()
    }

    /// Block until the request resolves or `timeout` elapses.
    ///
    /// `None` means *still in flight* (e.g. parked in a retry
    /// backoff), not failed — the request will still settle exactly
    /// once, and a later `wait`/`wait_timeout` can pick it up.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        self.state.outcome.get_timeout(timeout)
    }

    /// The outcome if the request has already resolved.
    pub fn try_outcome(&self) -> Option<Outcome> {
        self.state.outcome.try_get()
    }

    /// Request cancellation. Returns `true` if this call resolved the
    /// request to [`Outcome::Cancelled`]; `false` if it had already
    /// settled or been claimed for execution (it will still resolve —
    /// e.g. to `Completed`/`Failed` — and a running body can observe
    /// the request via its token's `cancel_requested`).
    pub fn cancel(&self) -> bool {
        self.token.cancel() && matches!(self.try_outcome(), Some(Outcome::Cancelled))
    }

    /// The request's cancellation token (e.g. to derive `child` tokens
    /// for an SGT subtree, or to poll `cancel_requested` from the
    /// action).
    ///
    /// The token already guards *this* request, and a token guards at
    /// most one submission — do not pass it to another
    /// `submit_with_token` call (that would disarm this request's
    /// cancelled resolution); derive a `child()` instead.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

impl std::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("outcome", &self.try_outcome())
            .field("token", &self.token)
            .finish()
    }
}
