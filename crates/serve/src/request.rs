//! Request-side types: the typed outcome of a submission and the
//! handle a client holds while its parcel is in flight.
//!
//! Every admitted request resolves to **exactly one** [`Outcome`],
//! delivered through a dataflow [`IVar`] — the same write-once cell
//! the runtime uses for LGT results. Exactly-once is inherited from
//! the [`CancelToken`] state machine (`htvm_core::cancel`): whichever
//! side wins the token's single CAS out of `PENDING` owns the
//! resolution, so a completed/cancelled/rejected race can never
//! double-write the cell (which would panic) or leave it empty
//! (which would hang the client).

use std::sync::Arc;

use htvm_core::{CancelToken, IVar};

/// Why the serving layer refused to run an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Shed under overload: total queued work crossed the server's
    /// watermark and this tenant's weight lost the triage.
    Overload,
    /// The tenant was closed while the request was still queued.
    TenantClosed,
    /// The server shut down while the request was still queued.
    ServerShutdown,
}

/// The terminal state of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The request's action ran to completion on the pool.
    Completed,
    /// The request's [`CancelToken`] resolved cancelled (explicit
    /// cancel or deadline expiry) before the action ran.
    Cancelled,
    /// The action ran but panicked; the unwind was contained by the
    /// pool and the worker survived.
    Panicked,
    /// The serving layer refused to run the request (typed shed).
    Rejected(RejectReason),
}

/// Why a submission was refused at the admission boundary (the request
/// never entered the system; there is no handle and no outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's bounded admission queue is full — backpressure;
    /// retry later or shed client-side.
    QueueFull,
    /// The tenant has been closed (or the server shut down); do not
    /// retry.
    TenantClosed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "tenant admission queue is full"),
            SubmitError::TenantClosed => write!(f, "tenant is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Shared per-request state: the write-once outcome cell.
pub(crate) struct ReqState {
    pub(crate) outcome: IVar<Outcome>,
}

impl ReqState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            outcome: IVar::new(),
        })
    }
}

/// The client's handle to an admitted request.
pub struct ResponseHandle {
    pub(crate) state: Arc<ReqState>,
    pub(crate) token: CancelToken,
}

impl ResponseHandle {
    /// Block until the request resolves. Call from client threads, not
    /// from pool workers (it parks the calling thread).
    pub fn wait(&self) -> Outcome {
        self.state.outcome.get()
    }

    /// The outcome if the request has already resolved.
    pub fn try_outcome(&self) -> Option<Outcome> {
        self.state.outcome.try_get()
    }

    /// Request cancellation. Returns `true` if this call resolved the
    /// request to [`Outcome::Cancelled`]; `false` if it had already
    /// been claimed for execution (it will still resolve — to
    /// `Completed`/`Panicked` — and a running body can observe the
    /// request via its token's `cancel_requested`).
    pub fn cancel(&self) -> bool {
        self.token.cancel()
    }

    /// The request's cancellation token (e.g. to derive `child` tokens
    /// for an SGT subtree, or to poll `cancel_requested` from the
    /// action).
    ///
    /// The token already guards *this* request, and a token guards at
    /// most one submission — do not pass it to another
    /// `submit_with_token` call (that would disarm this request's
    /// cancelled resolution); derive a `child()` instead.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

impl std::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("outcome", &self.try_outcome())
            .field("token", &self.token)
            .finish()
    }
}
