//! Per-tenant retry policy: seeded exponential backoff with a budget.
//!
//! A failed attempt ([`crate::Outcome::Failed`] material: a panicking
//! body, an injected kill, a kernel fault) or an overload shed can be
//! **re-admitted** instead of settled, if the tenant opted in with a
//! [`RetryPolicy`]. The policy is deliberately conservative-by-default
//! and fully bounded:
//!
//! * **max attempts** — total tries including the first; when exhausted
//!   the request settles with its last fault.
//! * **exponential backoff with seeded jitter** — attempt *n* waits
//!   `base · 2ⁿ` (clamped to `max_backoff`), scaled by a deterministic
//!   ±50% jitter derived from `jitter_seed` so retry storms decorrelate
//!   yet replay identically under a fixed seed (the same discipline as
//!   the [`htvm_core::faults`] plane it is usually tested against).
//! * **retry budget** — retries are capped at
//!   `budget_floor + submitted · budget_pct / 100`; past it, failures
//!   settle immediately. This is the classic guard against retry
//!   amplification melting an already-degraded service.
//! * **deadline-aware** — a request whose token deadline would expire
//!   before the backoff completes settles immediately instead of
//!   burning a doomed attempt.
//!
//! Retries never touch the conservation ledger until they settle: a
//! retried request is still `pending` (its one [`crate::Outcome`] has
//! not been delivered), and [`crate::TenantStats::retried`] counts
//! re-admissions outside the settled buckets.

use std::time::Duration;

/// Per-tenant retry policy (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1; 1 means "never retry").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
    /// Retry budget as a percentage of submissions (see module docs).
    pub budget_pct: u32,
    /// Retry budget floor — retries always allowed below this count, so
    /// a low-traffic tenant is not starved of its own budget.
    pub budget_floor: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0,
            budget_pct: 20,
            budget_floor: 16,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and defaults
    /// otherwise.
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }

    /// Whether a request that has already run `attempt + 1` times (the
    /// 0-based `attempt` just failed) may try again.
    pub fn attempts_allow(&self, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts
    }

    /// Whether the tenant's budget admits one more retry, given its
    /// lifetime `retried` and `submitted` counters.
    pub fn budget_allows(&self, retried: u64, submitted: u64) -> bool {
        retried < self.budget_floor + submitted * u64::from(self.budget_pct) / 100
    }

    /// Backoff before re-admitting the retry of 0-based `attempt`,
    /// jittered to 50–150% of the exponential step by a pure function
    /// of `(jitter_seed, salt, attempt)` — replayable under a fixed
    /// seed and salt.
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> Duration {
        let step = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_backoff);
        let h = splitmix64(self.jitter_seed ^ splitmix64(salt ^ u64::from(attempt)));
        // 50%..150% of the step, in 1/1024ths.
        let scale = 512 + (h % 1025);
        Duration::from_nanos((step.as_nanos() as u64 / 1024).saturating_mul(scale))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_gate_counts_the_first_run() {
        let p = RetryPolicy::attempts(3);
        assert!(p.attempts_allow(0), "after the 1st failure, 2 tries left");
        assert!(p.attempts_allow(1));
        assert!(!p.attempts_allow(2), "3rd failure exhausts 3 attempts");
        assert!(!RetryPolicy::attempts(1).attempts_allow(0), "1 = no retry");
    }

    #[test]
    fn budget_floor_and_percentage() {
        let p = RetryPolicy {
            budget_pct: 10,
            budget_floor: 2,
            ..RetryPolicy::default()
        };
        assert!(p.budget_allows(1, 0), "floor admits early retries");
        assert!(!p.budget_allows(2, 0), "floor exhausted, no traffic");
        assert!(p.budget_allows(11, 100), "2 + 100·10% = 12");
        assert!(!p.budget_allows(12, 100));
    }

    #[test]
    fn backoff_doubles_clamps_and_jitters_deterministically() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(16),
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let b0 = p.backoff_for(0, 1);
        let b3 = p.backoff_for(3, 1);
        let b9 = p.backoff_for(9, 1);
        // Jitter keeps each within 50–150% of the exponential step.
        assert!(b0 >= Duration::from_millis(1) && b0 <= Duration::from_millis(3));
        assert!(b3 >= Duration::from_millis(8) && b3 <= Duration::from_millis(24));
        assert!(b9 <= Duration::from_millis(24), "clamped at max_backoff");
        assert_eq!(b3, p.backoff_for(3, 1), "replayable");
        assert_ne!(
            (p.backoff_for(0, 1), p.backoff_for(0, 2)),
            (p.backoff_for(0, 3), p.backoff_for(0, 4)),
            "salt decorrelates requests"
        );
    }
}
