//! # htvm-serve — the multi-tenant serving front-end
//!
//! Converts the HTVM pool from a batch executor into a **server**: the
//! ROADMAP's "millions of users" north star needs a continuous stream
//! of independent, prioritized tenant requests, not one owning call
//! that drives a computation to completion and drains the pool.
//!
//! Each tenant owns a long-lived subtree of the machine:
//!
//! * a **home bubble** ([`Bubble`]) its requests are homed to (the
//!   paper's thread-unit groups, via `SpawnOpts::domain`) — a movable
//!   pin resolved at dispatch time, steered at runtime by the
//!   BubbleSched-style [`Autopilot`] (migrate / burst / gang, plus
//!   elastic pool grow / retire),
//! * a **weight** feeding the [`Wdrr`] weighted deficit-round-robin
//!   dispatcher (completed-work share converges to weight share, with
//!   a deficit bounded by one maximum request cost),
//! * a bounded **admission queue** (`htvm_core::AdmissionQueue`) whose
//!   overflow is *typed backpressure* ([`SubmitError::QueueFull`]), and
//! * a [`htvm_core::PoolTag`] slicing the pool's global counters into
//!   per-tenant shares.
//!
//! Requests are [`litlx::NativeParcel`]s — the paper's §3.2
//! "intelligent message" reinterpreted as the request envelope: a
//! small self-describing unit (payload size + declared cost) carrying
//! its own computation. Overload sheds the newest work of the
//! lowest-weight tenant with a typed [`Outcome::Rejected`];
//! cancellation and deadlines ride `htvm_core::CancelToken`'s
//! single-CAS state machine, observed by the pool at grain boundaries,
//! so every admitted request resolves **exactly once**.
//!
//! ```
//! use htvm_serve::{NativeParcel, Outcome, Server, ServerConfig, TenantConfig};
//! use htvm_core::{Htvm, HtvmConfig};
//!
//! let htvm = Htvm::new(HtvmConfig::default());
//! let server = Server::new(&htvm, ServerConfig::default());
//! let tenant = server.register_tenant(TenantConfig::weighted(2));
//! let resp = tenant.submit(NativeParcel::new(|_ctx| { /* work */ })).unwrap();
//! assert_eq!(resp.wait(), Outcome::Completed);
//! ```

#![warn(missing_docs)]

pub mod autopilot;
pub mod drr;
pub mod request;
pub mod retry;
pub mod server;

pub use autopilot::{Autopilot, AutopilotConfig, AutopilotStats, Bubble};
pub use drr::Wdrr;
pub use litlx::NativeParcel;
pub use request::{Outcome, RejectReason, RequestFault, ResponseHandle, SubmitError};
pub use retry::RetryPolicy;
pub use server::{Server, ServerConfig, TenantConfig, TenantHandle, TenantStats};
