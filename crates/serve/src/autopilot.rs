//! The autopilot: a BubbleSched-style controller thread closing the
//! loop between the pool's runtime signals and tenant placement.
//!
//! # Bubbles
//!
//! A [`Bubble`] is a movable pin: the serving layer homes every request
//! of a tenant to the bubble's *current* domain, resolved at dispatch
//! time rather than frozen at registration. The autopilot owns the
//! writes — [`Bubble::set_domain`] migrates the whole subtree on the
//! next dispatch, [`Bubble::burst`] releases it to unaffine placement
//! (the work-stealing spine spreads it), and a later gang re-pins it.
//!
//! # The control loop
//!
//! Each tick the controller:
//!
//! 1. snapshots the pool ([`htvm_core::PoolStats::since`] deltas,
//!    [`htvm_core::Pool::queue_depths`], [`htvm_core::Pool::slot_census`],
//!    parked workers) into a [`BubbleSignals`];
//! 2. reads each live tenant's executed delta from its
//!    [`htvm_core::PoolTag`] into a [`BubbleLoad`];
//! 3. runs [`BubblePolicy::step`] and applies the decisions: bubble
//!    moves land on the tenants' [`Bubble`] handles, elastic decisions
//!    land on the pool ([`htvm_core::Pool::grow_anywhere`] /
//!    [`htvm_core::Pool::retire_in`]).
//!
//! Tenant churn resets the policy (placement state restarts from the
//! bubbles' current pins) — cheap, and it keeps the policy's bubble
//! indices honest without a registry protocol. The policy itself is
//! plain data in `htvm-adapt`; everything that touches the pool lives
//! here.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use htvm_adapt::DomainTraffic;
use htvm_adapt::{BubbleDecision, BubbleLoad, BubblePolicy, BubblePolicyCfg, BubbleSignals};
use htvm_core::{DomainId, Pool};
use parking_lot::Mutex;

/// Sentinel domain meaning "burst": no pin, requests dispatch unaffine.
const BURST: u64 = u64::MAX;

/// A movable home pin for a tenant's subtree. The dispatcher reads it
/// on every dispatch; the autopilot (or a manual controller) writes it.
#[derive(Debug)]
pub struct Bubble {
    domain: AtomicU64,
}

impl Bubble {
    /// A bubble pinned to `home`.
    pub fn pinned(home: DomainId) -> Arc<Self> {
        Arc::new(Self {
            domain: AtomicU64::new(home.0),
        })
    }

    /// The current pin, or `None` while burst.
    pub fn domain(&self) -> Option<DomainId> {
        match self.domain.load(Ordering::Relaxed) {
            BURST => None,
            d => Some(DomainId(d)),
        }
    }

    /// Re-pin the bubble; takes effect on the next dispatch.
    pub fn set_domain(&self, home: DomainId) {
        self.domain.store(home.0, Ordering::Relaxed);
    }

    /// Release the pin: subsequent dispatches go unaffine and the
    /// stealing spine spreads them over the whole machine.
    pub fn burst(&self) {
        self.domain.store(BURST, Ordering::Relaxed);
    }

    /// Whether the bubble is currently burst.
    pub fn is_burst(&self) -> bool {
        self.domain.load(Ordering::Relaxed) == BURST
    }
}

/// What one tenant looks like to the controller.
pub(crate) struct BubbleTenant {
    /// Stable identity across ticks (the tenant's slot id).
    pub id: usize,
    /// The movable pin the dispatcher reads.
    pub bubble: Arc<Bubble>,
    /// Cumulative executed jobs for the tenant (its pool-tag slice).
    pub executed: u64,
}

/// Controller knobs.
#[derive(Debug, Clone)]
pub struct AutopilotConfig {
    /// Sampling/decision period.
    pub interval: Duration,
    /// The placement/elasticity policy (see
    /// [`htvm_adapt::BubblePolicyCfg`]).
    pub policy: BubblePolicyCfg,
}

impl Default for AutopilotConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(5),
            policy: BubblePolicyCfg::default(),
        }
    }
}

/// Cumulative counts of applied decisions, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutopilotStats {
    /// Controller ticks evaluated.
    pub ticks: u64,
    /// Bubble migrations applied.
    pub migrates: u64,
    /// Bubbles burst.
    pub bursts: u64,
    /// Bubbles ganged back onto a domain.
    pub gangs: u64,
    /// Workers grown (requests that found a vacant slot).
    pub grows: u64,
    /// Workers retired (requests the pool accepted).
    pub retires: u64,
    /// Times the controller loop was restarted by its supervision
    /// harness after a contained panic (placement state resets; the
    /// bubbles keep their last applied pins). 0 in a healthy pilot.
    pub restarts: u64,
}

impl AutopilotStats {
    /// Total placement + elasticity decisions applied.
    pub fn decisions(&self) -> u64 {
        self.migrates + self.bursts + self.gangs + self.grows + self.retires
    }
}

#[derive(Default)]
struct Counters {
    ticks: AtomicU64,
    migrates: AtomicU64,
    bursts: AtomicU64,
    gangs: AtomicU64,
    grows: AtomicU64,
    retires: AtomicU64,
    restarts: AtomicU64,
}

/// The running controller. Dropping it stops and joins the thread; the
/// bubbles keep their last placement.
pub struct Autopilot {
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Autopilot {
    /// Start a controller over `pool`, steering the tenants yielded by
    /// `tenants` (sampled fresh every tick, so churn is picked up).
    pub(crate) fn start(
        pool: Arc<Pool>,
        cfg: AutopilotConfig,
        tenants: impl Fn() -> Vec<BubbleTenant> + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let handle = {
            let stop = stop.clone();
            let counters = counters.clone();
            std::thread::Builder::new()
                .name("htvm-autopilot".into())
                .spawn(move || supervised_controller(pool, cfg, tenants, stop, counters))
                .expect("spawn autopilot thread")
        };
        Self {
            stop,
            counters,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Cumulative decision counts.
    pub fn stats(&self) -> AutopilotStats {
        AutopilotStats {
            ticks: self.counters.ticks.load(Ordering::Relaxed),
            migrates: self.counters.migrates.load(Ordering::Relaxed),
            bursts: self.counters.bursts.load(Ordering::Relaxed),
            gangs: self.counters.gangs.load(Ordering::Relaxed),
            grows: self.counters.grows.load(Ordering::Relaxed),
            retires: self.counters.retires.load(Ordering::Relaxed),
            restarts: self.counters.restarts.load(Ordering::Relaxed),
        }
    }

    /// Stop the controller and join its thread (idempotent).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Autopilot {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Autopilot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Autopilot")
            .field("stats", &self.stats())
            .finish()
    }
}

/// The autopilot thread body: [`controller_loop`] under a restart
/// harness. A panicking tick (a policy bug, or an injected
/// `serve.autopilot` fault — kills included, since the controller has
/// no successor-thread machinery) is contained and the loop restarts
/// with fresh placement state; the bubbles keep their last applied
/// pins, so a controller crash degrades to "placement freezes" rather
/// than taking the server down.
fn supervised_controller(
    pool: Arc<Pool>,
    cfg: AutopilotConfig,
    tenants: impl Fn() -> Vec<BubbleTenant>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    while !stop.load(Ordering::SeqCst) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            controller_loop(&pool, &cfg, &tenants, &stop, &counters)
        }));
        match result {
            Ok(()) => break, // stop flag observed
            Err(_) => {
                counters.restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn controller_loop(
    pool: &Arc<Pool>,
    cfg: &AutopilotConfig,
    tenants: &impl Fn() -> Vec<BubbleTenant>,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let mut policy = BubblePolicy::new(cfg.policy.clone());
    // Maps policy bubble index → tenant id; a mismatch with the fresh
    // tenant snapshot means churn happened and the policy resets.
    let mut roster: Vec<usize> = Vec::new();
    let mut bubbles: Vec<Arc<Bubble>> = Vec::new();
    let mut prev_pool = pool.stats();
    let mut prev_executed: Vec<u64> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(cfg.interval);
        // Fault-injection point for supervision tests: a panic/kill
        // here is contained by `supervised_controller`.
        htvm_core::fault_point!(pool.fault_plane(), "serve.autopilot");
        let snapshot = tenants();
        let ids: Vec<usize> = snapshot.iter().map(|t| t.id).collect();
        if ids != roster {
            policy = BubblePolicy::new(cfg.policy.clone());
            bubbles = snapshot.iter().map(|t| t.bubble.clone()).collect();
            for t in &snapshot {
                let home = t.bubble.domain().map_or(0, |d| d.0 as usize);
                policy.register_bubble(home);
            }
            roster = ids;
            prev_executed = snapshot.iter().map(|t| t.executed).collect();
            continue; // first tick after churn only establishes baselines
        }

        let now = pool.stats();
        let delta = now.since(&prev_pool);
        prev_pool = now;
        let depths = pool.queue_depths();
        let (active, vacant) = pool.slot_census();
        let signals = BubbleSignals {
            traffic: DomainTraffic::new(
                delta.executed_by_domain(),
                delta.local_steals_by_domain(),
                delta.remote_steals_by_domain(),
            ),
            queued_by_domain: depths.domain_injectors.iter().map(|&d| d as u64).collect(),
            queued_global: depths.global_injector as u64
                + depths.workers.iter().sum::<usize>() as u64,
            active_by_domain: active,
            vacant_by_domain: vacant,
            parked_workers: pool.parked_workers(),
        };
        let loads: Vec<BubbleLoad> = snapshot
            .iter()
            .enumerate()
            .map(|(i, t)| BubbleLoad {
                bubble: i,
                executed: t.executed.saturating_sub(prev_executed[i]),
            })
            .collect();
        prev_executed = snapshot.iter().map(|t| t.executed).collect();

        for decision in policy.step(&signals, &loads) {
            match decision {
                BubbleDecision::Migrate { bubble, to } => {
                    bubbles[bubble].set_domain(DomainId(to as u64));
                    counters.migrates.fetch_add(1, Ordering::Relaxed);
                }
                BubbleDecision::Burst { bubble } => {
                    bubbles[bubble].burst();
                    counters.bursts.fetch_add(1, Ordering::Relaxed);
                }
                BubbleDecision::Gang { bubble, domain } => {
                    bubbles[bubble].set_domain(DomainId(domain as u64));
                    counters.gangs.fetch_add(1, Ordering::Relaxed);
                }
                BubbleDecision::Grow { domain } => {
                    if pool.grow_anywhere(DomainId(domain as u64)).is_some() {
                        counters.grows.fetch_add(1, Ordering::Relaxed);
                    }
                }
                BubbleDecision::Retire { domain } => {
                    if pool.retire_in(DomainId(domain as u64)).is_some() {
                        counters.retires.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        counters.ticks.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_round_trips_between_pinned_and_burst() {
        let b = Bubble::pinned(DomainId(1));
        assert_eq!(b.domain(), Some(DomainId(1)));
        assert!(!b.is_burst());
        b.burst();
        assert_eq!(b.domain(), None);
        assert!(b.is_burst());
        b.set_domain(DomainId(0));
        assert_eq!(b.domain(), Some(DomainId(0)));
    }
}
