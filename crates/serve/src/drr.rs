//! Weighted deficit round robin — the fairness core of the dispatcher.
//!
//! Pure data structure, no threads, no clocks: each backlogged tenant
//! accrues `quantum × weight` deficit credit per round and dispatches
//! head-of-line requests while its deficit covers their declared cost.
//! An idle tenant's deficit resets (classic DRR — credit cannot be
//! hoarded across idle periods), so a newly-busy tenant starts from
//! zero rather than bursting.
//!
//! **Bounded-deficit fairness invariant** (what the property test in
//! `tests/fairness.rs` drives): over any window of `R` rounds in which
//! a tenant stays backlogged and the round budget never binds, the cost
//! it dispatches lies within one maximum request cost of
//! `R × quantum × weight` — so completed-work share converges to
//! weight share, and no admitted backlogged tenant can starve (its
//! deficit grows every round until it covers the head request).

/// Per-key deficit state.
#[derive(Debug, Clone, Copy)]
struct Slot {
    weight: u64,
    deficit: u64,
    /// The cycle this slot last accrued credit in — so a key visited
    /// again after a budget-exhausted `round` resumes its leftover
    /// deficit instead of accruing twice per cycle.
    stamp: u64,
}

/// A weighted deficit-round-robin scheduler over `usize` keys (see the
/// [module docs](self) for the invariant).
#[derive(Debug, Default)]
pub struct Wdrr {
    quantum: u64,
    slots: Vec<Option<Slot>>,
    /// The key the persistent cycle is currently at: a binding budget
    /// suspends the cycle mid-key and the next `round` call resumes it
    /// there, so weights keep shaping shares under budget pressure.
    cursor: usize,
    /// Monotone cycle counter (a cycle ends when the cursor wraps);
    /// compared against `Slot::stamp` to accrue once per cycle.
    cycle: u64,
}

impl Wdrr {
    /// A scheduler crediting `quantum` deficit units per unit of weight
    /// per round (clamped to ≥ 1).
    pub fn new(quantum: u64) -> Self {
        Self {
            quantum: quantum.max(1),
            slots: Vec::new(),
            cursor: 0,
            cycle: 1,
        }
    }

    /// The per-round credit per unit weight.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Register `key` (or update its weight, clamped to ≥ 1). A fresh
    /// key starts with zero deficit.
    pub fn ensure(&mut self, key: usize, weight: u64) {
        if self.slots.len() <= key {
            self.slots.resize(key + 1, None);
        }
        let weight = weight.max(1);
        match &mut self.slots[key] {
            Some(slot) => slot.weight = weight,
            none => {
                *none = Some(Slot {
                    weight,
                    deficit: 0,
                    stamp: 0,
                })
            }
        }
    }

    /// Deregister `key`; its deficit is forfeited.
    pub fn remove(&mut self, key: usize) {
        if let Some(slot) = self.slots.get_mut(key) {
            *slot = None;
        }
    }

    /// Whether `key` is registered.
    pub fn contains(&self, key: usize) -> bool {
        self.slots.get(key).is_some_and(Option::is_some)
    }

    /// The current deficit of `key`, if registered.
    pub fn deficit(&self, key: usize) -> Option<u64> {
        self.slots
            .get(key)
            .and_then(|s| s.as_ref())
            .map(|s| s.deficit)
    }

    /// Advance the persistent cycle by up to `budget` cost units: keys
    /// are visited in order from the cursor (at most one full pass per
    /// call); a backlogged key accrues its credit **once per cycle**
    /// and dispatches while the deficit covers the head cost. When the
    /// budget binds mid-key the cycle *suspends* — the next call
    /// resumes at the same key with its leftover deficit (no second
    /// accrual), so weights keep shaping shares under budget pressure
    /// instead of degenerating to unweighted round robin. `head_cost`
    /// returns the cost of `key`'s head request (`None` when its queue
    /// is empty — which resets the deficit); `dispatch` must dequeue
    /// and dispatch exactly that head. Returns total cost dispatched.
    pub fn round(
        &mut self,
        budget: u64,
        mut head_cost: impl FnMut(usize) -> Option<u64>,
        mut dispatch: impl FnMut(usize),
    ) -> u64 {
        let n = self.slots.len();
        if n == 0 || budget == 0 {
            return 0;
        }
        if self.cycle == 0 {
            // `Default`-constructed scheduler: fresh slot stamps are 0.
            self.cycle = 1;
        }
        self.cursor %= n;
        let mut spent = 0u64;
        for _ in 0..n {
            let key = self.cursor;
            if let Some(slot) = self.slots[key].as_mut() {
                match head_cost(key) {
                    None => {
                        // Idle queue: no credit accrues, none is hoarded.
                        slot.deficit = 0;
                    }
                    Some(head) => {
                        if slot.stamp != self.cycle {
                            slot.stamp = self.cycle;
                            // One cycle's credit, capped so a key starved
                            // by the *budget* (not by its weight) cannot
                            // hoard unbounded credit and burst later:
                            // deficit beyond head + credit buys nothing
                            // this cycle.
                            let credit = self.quantum.saturating_mul(slot.weight);
                            slot.deficit = slot
                                .deficit
                                .saturating_add(credit)
                                .min(head.max(1).saturating_add(credit));
                        }
                        loop {
                            match head_cost(key) {
                                Some(cost) => {
                                    let cost = cost.max(1);
                                    if cost > slot.deficit {
                                        break;
                                    }
                                    if spent >= budget {
                                        // Suspend mid-key: resume here
                                        // (already stamped) next call.
                                        return spent;
                                    }
                                    dispatch(key);
                                    slot.deficit -= cost;
                                    spent = spent.saturating_add(cost);
                                }
                                None => {
                                    slot.deficit = 0;
                                    break;
                                }
                            }
                        }
                        // Falling out of the loop means the key is done
                        // for this cycle (deficit short of the head, or
                        // queue drained) — the budget-bound case
                        // returned above without advancing.
                    }
                }
            }
            self.cursor = (self.cursor + 1) % n;
            if self.cursor == 0 {
                self.cycle = self.cycle.wrapping_add(1).max(1);
            }
            if spent >= budget {
                return spent;
            }
        }
        spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::collections::VecDeque;

    /// Drive `rounds` rounds over unit-cost queues with the given
    /// backlogs; returns dispatched counts. `head_cost` and `dispatch`
    /// are separate closures, so the shared queue state goes through a
    /// `RefCell`.
    fn run(w: &mut Wdrr, queues: &mut [VecDeque<u64>], rounds: usize, budget: u64) -> Vec<u64> {
        let served: Vec<Cell<u64>> = queues.iter().map(|_| Cell::new(0)).collect();
        let q = RefCell::new(queues.to_vec());
        for _ in 0..rounds {
            w.round(
                budget,
                |k| q.borrow()[k].front().copied(),
                |k| {
                    q.borrow_mut()[k].pop_front();
                    served[k].set(served[k].get() + 1);
                },
            );
        }
        queues.clone_from_slice(&q.into_inner());
        served.into_iter().map(Cell::into_inner).collect()
    }

    #[test]
    fn weights_split_throughput_proportionally() {
        let mut w = Wdrr::new(2);
        w.ensure(0, 1);
        w.ensure(1, 2);
        w.ensure(2, 4);
        let mut queues: Vec<VecDeque<u64>> = (0..3)
            .map(|_| std::iter::repeat_n(1u64, 1000).collect())
            .collect();
        let served = run(&mut w, &mut queues, 10, u64::MAX);
        // Unit costs drain the deficit exactly: 10 rounds × quantum 2 ×
        // weight.
        assert_eq!(served, vec![20, 40, 80]);
    }

    #[test]
    fn idle_queue_forfeits_credit() {
        let mut w = Wdrr::new(8);
        w.ensure(0, 1);
        // 5 idle rounds accrue nothing…
        for _ in 0..5 {
            w.round(u64::MAX, |_| None, |_| unreachable!());
        }
        assert_eq!(w.deficit(0), Some(0));
        // …then one busy round serves exactly one quantum's worth.
        let q: RefCell<VecDeque<u64>> = RefCell::new(std::iter::repeat_n(1u64, 100).collect());
        let served = Cell::new(0u64);
        w.round(
            u64::MAX,
            |_| q.borrow().front().copied(),
            |_| {
                q.borrow_mut().pop_front();
                served.set(served.get() + 1);
            },
        );
        assert_eq!(served.get(), 8, "no credit was hoarded while idle");
    }

    #[test]
    fn big_request_carries_deficit_until_covered() {
        let mut w = Wdrr::new(2);
        w.ensure(0, 1);
        // One request of cost 5: needs three rounds of quantum 2.
        let dispatched = Cell::new(0u64);
        let pending = Cell::new(true);
        for round in 1..=3 {
            w.round(
                u64::MAX,
                |_| pending.get().then_some(5),
                |_| {
                    pending.set(false);
                    dispatched.set(dispatched.get() + 1);
                },
            );
            if round < 3 {
                assert_eq!(dispatched.get(), 0, "deficit {} < 5", 2 * round);
            }
        }
        assert_eq!(dispatched.get(), 1);
        // The queue emptied in the same round, so the leftover credit
        // (6 accrued − 5 spent) resets rather than being hoarded.
        assert_eq!(w.deficit(0), Some(0));
    }

    #[test]
    fn budget_pressure_rotates_the_cursor() {
        let mut w = Wdrr::new(4);
        w.ensure(0, 1);
        w.ensure(1, 1);
        let mut queues: Vec<VecDeque<u64>> = (0..2)
            .map(|_| std::iter::repeat_n(1u64, 1000).collect())
            .collect();
        // Budget 1 per round: without cycle suspension key 0 would take
        // every slot.
        let served = run(&mut w, &mut queues, 10, 1);
        assert!(
            served[1] > 0,
            "the suspended cycle must prevent structural starvation: {served:?}"
        );
    }

    #[test]
    fn binding_budget_preserves_weighted_shares() {
        // The budget suspends the cycle mid-key instead of restarting
        // it, so a 4:1 weight ratio survives a budget far below the
        // per-cycle demand — exactly, for unit costs.
        let mut w = Wdrr::new(4);
        w.ensure(0, 1);
        w.ensure(1, 4);
        let mut queues: Vec<VecDeque<u64>> = (0..2)
            .map(|_| std::iter::repeat_n(1u64, 1000).collect())
            .collect();
        // One cycle = 4 + 16 = 20 cost units = 5 budget-4 calls.
        let served = run(&mut w, &mut queues, 25, 4);
        assert_eq!(served, vec![20, 80]);
    }

    #[test]
    fn remove_and_reensure_resets_state() {
        let mut w = Wdrr::new(2);
        w.ensure(0, 3);
        assert!(w.contains(0));
        w.remove(0);
        assert!(!w.contains(0));
        assert_eq!(w.deficit(0), None);
        w.ensure(0, 1);
        assert_eq!(w.deficit(0), Some(0));
    }

    #[test]
    fn zero_cost_heads_cannot_starve_the_round() {
        let mut w = Wdrr::new(1);
        w.ensure(0, 1);
        let remaining = Cell::new(100u64);
        w.round(
            u64::MAX,
            |_| (remaining.get() > 0).then_some(0),
            |_| remaining.set(remaining.get() - 1),
        );
        // Cost clamps to 1, so one quantum dispatches exactly one.
        assert_eq!(remaining.get(), 99);
    }
}
